//! E7 (Figure 2) integration: the TIP Browser over live query results —
//! window, slider, highlighting, timeline, and the NOW override.

use tip::browser::Browser;
use tip::client::Connection;
use tip::core::{Chronon, ResolvedPeriod, Span};
use tip::workload::{generate, populate_tip, MedicalConfig};

fn c(s: &str) -> Chronon {
    s.parse().unwrap()
}

fn demo_browser() -> (Connection, Browser) {
    let conn = Connection::open_tip_enabled();
    let now = c("1999-12-01");
    conn.set_now(Some(now));
    {
        let session = conn.database().session();
        populate_tip(
            &session,
            conn.tip_types(),
            &generate(&MedicalConfig::default()),
        )
        .unwrap();
    }
    let rows = conn
        .query(
            "SELECT patient, drug, valid FROM Prescription ORDER BY patient LIMIT 20",
            &[],
        )
        .unwrap();
    let result = rows.into_result();
    let db = conn.database().clone();
    let browser = Browser::new(
        &result,
        |v| db.with_catalog(|cat| cat.display_value(v)),
        "valid",
        now,
    )
    .unwrap();
    (conn, browser)
}

#[test]
fn browsing_over_live_results() {
    let (_conn, mut b) = demo_browser();
    assert_eq!(b.len(), 20);
    // The initial window covers everything, so everything is highlighted.
    assert_eq!(b.highlighted().len(), 20);
    // Narrowing the window reduces (or keeps) the highlight set.
    b.set_window(ResolvedPeriod::new(c("1998-01-01"), c("1998-06-30")).unwrap());
    assert!(b.highlighted().len() < 20);
}

#[test]
fn slider_walk_covers_everything_exactly_once_highlighted_somewhere() {
    let (_conn, mut b) = demo_browser();
    let extent = b.extent().unwrap();
    // Walk a quarter-year window across the extent; every tuple must be
    // highlighted in at least one position.
    let mut seen = std::collections::HashSet::new();
    b.set_window(
        ResolvedPeriod::new(extent.start(), extent.start() + Span::from_days(90)).unwrap(),
    );
    loop {
        for i in b.highlighted() {
            seen.insert(i);
        }
        if b.window().end() >= extent.end() {
            break;
        }
        b.slide(Span::from_days(90));
    }
    assert_eq!(
        seen.len(),
        b.len(),
        "every tuple is valid somewhere in the extent"
    );
}

#[test]
fn timeline_width_matches_and_marks_validity() {
    let (_conn, mut b) = demo_browser();
    b.set_timeline_width(64);
    for i in 0..b.len() {
        let t = b.timeline(i);
        assert_eq!(t.chars().count(), 64);
        assert!(t.chars().all(|ch| ch == '#' || ch == '.'));
    }
    // Highlighted rows must show at least one '#'.
    for i in b.highlighted() {
        assert!(b.timeline(i).contains('#'), "row {i}");
    }
}

#[test]
fn what_if_now_rewrites_the_view() {
    let (_conn, mut b) = demo_browser();
    b.set_window(ResolvedPeriod::new(c("1999-10-01"), c("1999-12-01")).unwrap());
    let with_now = b.highlighted().len();
    // Rewind NOW to before most open-ended prescriptions started; the
    // highlight count can only drop.
    b.set_now(c("1996-01-01"));
    let rewound = b.highlighted().len();
    assert!(rewound <= with_now, "{rewound} > {with_now}");
    let view = b.render();
    assert!(view.contains("NOW = 1996-01-01"));
}

#[test]
fn render_is_deterministic() {
    let (_conn, b) = demo_browser();
    assert_eq!(b.render(), b.render());
}
