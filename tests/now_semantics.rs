//! E6 integration: NOW semantics across the whole stack — per-statement
//! freezing, monotone growth of open-ended elements, what-if overrides,
//! and the optimizer's refusal to fold now-dependent expressions.

use tip::client::Connection;
use tip::core::{Chronon, Span};

fn conn_with_open_rx() -> Connection {
    let conn = Connection::open_tip_enabled();
    conn.execute("CREATE TABLE rx (patient CHAR(20), valid Element)", &[])
        .unwrap();
    conn.execute("INSERT INTO rx VALUES ('a', '{[1999-10-01, NOW]}')", &[])
        .unwrap();
    conn
}

fn c(s: &str) -> Chronon {
    s.parse().unwrap()
}

#[test]
fn open_elements_grow_monotonically_with_now() {
    let conn = conn_with_open_rx();
    let mut prev = -1i64;
    for when in ["1999-10-01", "1999-11-01", "2000-06-01", "2010-01-01"] {
        conn.set_now(Some(c(when)));
        let mut rows = conn
            .query("SELECT total_seconds(length(valid)) FROM rx", &[])
            .unwrap();
        rows.next();
        let len = rows.get_int(0).unwrap();
        assert!(
            len > prev,
            "length at NOW={when} should grow: {len} <= {prev}"
        );
        prev = len;
    }
}

#[test]
fn element_is_empty_before_its_start_under_what_if() {
    let conn = conn_with_open_rx();
    conn.set_now(Some(c("1999-01-01")));
    let mut rows = conn.query("SELECT is_empty(valid) FROM rx", &[]).unwrap();
    rows.next();
    assert!(
        rows.get_bool(0).unwrap(),
        "[1999-10-01, NOW] is empty in Jan 1999"
    );
}

#[test]
fn stored_value_remains_symbolic() {
    let conn = conn_with_open_rx();
    // However NOW moves, the *stored* element still reads "NOW".
    for when in ["1999-01-01", "2005-01-01"] {
        conn.set_now(Some(c(when)));
        let mut rows = conn.query("SELECT valid FROM rx", &[]).unwrap();
        rows.next();
        assert_eq!(
            rows.get_element(0).unwrap().to_string(),
            "{[1999-10-01, NOW]}"
        );
    }
}

#[test]
fn now_is_frozen_within_a_statement() {
    // now() must be the same chronon everywhere in one statement.
    let conn = Connection::open_tip_enabled();
    let mut rows = conn.query("SELECT now() - now()", &[]).unwrap();
    rows.next();
    assert_eq!(rows.get_span(0).unwrap(), Span::ZERO);
}

#[test]
fn now_dependent_predicates_are_not_folded_into_plans() {
    // A constant-looking WHERE clause containing NOW must be evaluated
    // per statement, not folded at plan time. We detect this by running
    // the same SQL under two different NOW overrides.
    let conn = conn_with_open_rx();
    let sql = "SELECT patient FROM rx WHERE contains(valid, to_chronon('NOW-1'::Instant))";
    conn.set_now(Some(c("1999-12-01")));
    assert_eq!(
        conn.query(sql, &[]).unwrap().len(),
        1,
        "valid yesterday in Dec 1999"
    );
    conn.set_now(Some(c("1999-09-01")));
    assert_eq!(
        conn.query(sql, &[]).unwrap().len(),
        0,
        "not valid yesterday in Sep 1999"
    );
}

#[test]
fn comparisons_against_now_relative_instants_flip_over_time() {
    let conn = Connection::open_tip_enabled();
    conn.execute("CREATE TABLE events (name CHAR(10), at Chronon)", &[])
        .unwrap();
    conn.execute("INSERT INTO events VALUES ('launch', '1999-09-23')", &[])
        .unwrap();
    let sql = "SELECT COUNT(*) FROM events WHERE at >= 'NOW-7'::Instant";
    // Within the last week…
    conn.set_now(Some(c("1999-09-25")));
    let mut rows = conn.query(sql, &[]).unwrap();
    rows.next();
    assert_eq!(rows.get_int(0).unwrap(), 1);
    // …but not three months later.
    conn.set_now(Some(c("1999-12-25")));
    let mut rows = conn.query(sql, &[]).unwrap();
    rows.next();
    assert_eq!(rows.get_int(0).unwrap(), 0);
}

#[test]
fn clearing_the_override_returns_to_wall_clock() {
    let conn = conn_with_open_rx();
    conn.set_now(Some(c("1999-12-01")));
    assert_eq!(conn.now_override(), Some(c("1999-12-01")));
    conn.set_now(None);
    assert_eq!(conn.now_override(), None);
    // Under the real clock (well after 1999) the element is non-empty.
    let mut rows = conn.query("SELECT is_empty(valid) FROM rx", &[]).unwrap();
    rows.next();
    assert!(!rows.get_bool(0).unwrap());
}
