//! Broad SQL-surface integration over TIP types: ordering, grouping,
//! DISTINCT, indexes, DML, casts, and error behaviour — everything a
//! client application would lean on beyond the four demo queries.

use tip::client::{Connection, HostValue};
use tip::core::{Chronon, Span};

fn c(s: &str) -> Chronon {
    s.parse().unwrap()
}

fn conn() -> Connection {
    let conn = Connection::open_tip_enabled();
    conn.set_now(Some(c("1999-12-01")));
    conn
}

#[test]
fn order_by_chronon_and_span_columns() {
    let conn = conn();
    conn.execute("CREATE TABLE t (name CHAR(5), at Chronon, dur Span)", &[])
        .unwrap();
    conn.execute(
        "INSERT INTO t VALUES ('b', '1999-06-01', '3'), ('a', '1999-01-01', '10'), \
         ('c', '1999-12-31', '1')",
        &[],
    )
    .unwrap();
    let mut rows = conn.query("SELECT name FROM t ORDER BY at", &[]).unwrap();
    let mut names = Vec::new();
    while rows.next() {
        names.push(rows.get_string(0).unwrap());
    }
    assert_eq!(names, ["a", "b", "c"]);
    let mut rows = conn
        .query("SELECT name FROM t ORDER BY dur DESC", &[])
        .unwrap();
    rows.next();
    assert_eq!(rows.get_string(0).unwrap(), "a");
}

#[test]
fn group_by_chronon_column() {
    let conn = conn();
    conn.execute("CREATE TABLE t (d Chronon, v INT)", &[])
        .unwrap();
    conn.execute(
        "INSERT INTO t VALUES ('1999-01-01', 1), ('1999-01-01', 2), ('1999-02-01', 3)",
        &[],
    )
    .unwrap();
    let mut rows = conn
        .query("SELECT d, SUM(v) FROM t GROUP BY d ORDER BY d", &[])
        .unwrap();
    rows.next();
    assert_eq!(rows.get_chronon(0).unwrap(), c("1999-01-01"));
    assert_eq!(rows.get_int(1).unwrap(), 3);
    rows.next();
    assert_eq!(rows.get_int(1).unwrap(), 3);
}

#[test]
fn distinct_on_udt_columns() {
    let conn = conn();
    conn.execute("CREATE TABLE t (e Element)", &[]).unwrap();
    conn.execute(
        "INSERT INTO t VALUES ('{[1999-01-01, 1999-02-01]}'), \
         ('{[1999-01-01, 1999-02-01]}'), ('{[1999-03-01, 1999-04-01]}')",
        &[],
    )
    .unwrap();
    let rows = conn.query("SELECT DISTINCT e FROM t", &[]).unwrap();
    assert_eq!(rows.len(), 2);
}

#[test]
fn update_with_tip_routines_and_delete() {
    let conn = conn();
    conn.execute("CREATE TABLE t (k INT, e Element)", &[])
        .unwrap();
    conn.execute(
        "INSERT INTO t VALUES (1, '{[1999-01-01, 1999-01-31 23:59:59]}')",
        &[],
    )
    .unwrap();
    // Extend the element through a routine in SET; the new period abuts
    // the stored one exactly (Jan 31 23:59:59 + 1s = Feb 1 00:00:00).
    let n = conn
        .execute(
            "UPDATE t SET e = union(e, '{[1999-02-01, 1999-02-28 23:59:59]}'::Element)",
            &[],
        )
        .unwrap();
    assert_eq!(n, 1);
    let mut rows = conn
        .query("SELECT period_count(e), length(e) FROM t", &[])
        .unwrap();
    rows.next();
    assert_eq!(rows.get_int(0).unwrap(), 1, "adjacent periods merged");
    assert_eq!(rows.get_span(1).unwrap(), Span::from_days(59));
    // Delete guarded by a temporal predicate.
    let n = conn
        .execute(
            "DELETE FROM t WHERE overlaps(e, '{[1999-02-10, 1999-02-11]}'::Element)",
            &[],
        )
        .unwrap();
    assert_eq!(n, 1);
}

#[test]
fn min_max_over_chronon_with_index() {
    let conn = conn();
    conn.execute("CREATE TABLE t (at Chronon)", &[]).unwrap();
    for day in 1..=28 {
        conn.execute(
            "INSERT INTO t VALUES (:d)",
            &[(
                "d",
                HostValue::Chronon(Chronon::from_ymd(1999, 2, day).unwrap()),
            )],
        )
        .unwrap();
    }
    conn.execute("CREATE INDEX ix_at ON t(at)", &[]).unwrap();
    let mut rows = conn
        .query("SELECT MIN(at), MAX(at), COUNT(at) FROM t", &[])
        .unwrap();
    rows.next();
    assert_eq!(rows.get_chronon(0).unwrap(), c("1999-02-01"));
    assert_eq!(rows.get_chronon(1).unwrap(), c("1999-02-28"));
    assert_eq!(rows.get_int(2).unwrap(), 28);
    // Index-backed point lookup on a UDT column.
    let rows = conn
        .query("SELECT at FROM t WHERE at = '1999-02-14'::Chronon", &[])
        .unwrap();
    assert_eq!(rows.len(), 1);
}

#[test]
fn promotion_chain_in_anger() {
    let conn = conn();
    // A Chronon used where an Element is expected (implicit promotion).
    let mut rows = conn
        .query(
            "SELECT contains('{[1999-01-01, 1999-12-31]}'::Element, '1999-06-15'::Chronon), \
                    length('1999-06-15'::Chronon::Period), \
                    period_count('1999-06-15'::Chronon::Element)",
            &[],
        )
        .unwrap();
    rows.next();
    assert!(rows.get_bool(0).unwrap());
    assert_eq!(rows.get_span(1).unwrap(), Span::SECOND);
    assert_eq!(rows.get_int(2).unwrap(), 1);
}

#[test]
fn between_and_in_with_temporal_values() {
    let conn = conn();
    conn.execute("CREATE TABLE t (name CHAR(5), at Chronon)", &[])
        .unwrap();
    conn.execute(
        "INSERT INTO t VALUES ('a', '1999-03-01'), ('b', '1999-06-01'), ('c', '1999-09-01')",
        &[],
    )
    .unwrap();
    let rows = conn
        .query(
            "SELECT name FROM t WHERE at BETWEEN '1999-04-01'::Chronon AND '1999-10-01'::Chronon",
            &[],
        )
        .unwrap();
    assert_eq!(rows.len(), 2);
    let rows = conn
        .query("SELECT name FROM t WHERE name IN ('a', 'c')", &[])
        .unwrap();
    assert_eq!(rows.len(), 2);
}

#[test]
fn nulls_flow_through_temporal_routines() {
    let conn = conn();
    conn.execute("CREATE TABLE t (e Element)", &[]).unwrap();
    conn.execute("INSERT INTO t VALUES (NULL)", &[]).unwrap();
    let mut rows = conn
        .query("SELECT length(e), e IS NULL, union(e, e) FROM t", &[])
        .unwrap();
    rows.next();
    assert!(
        rows.is_null(0).unwrap(),
        "strict routine: NULL in, NULL out"
    );
    assert!(rows.get_bool(1).unwrap());
    assert!(rows.is_null(2).unwrap());
    // Aggregates skip NULLs entirely.
    conn.execute("INSERT INTO t VALUES ('{[1999-01-01, 1999-01-02]}')", &[])
        .unwrap();
    let mut rows = conn
        .query("SELECT period_count(group_union(e)) FROM t", &[])
        .unwrap();
    rows.next();
    assert_eq!(rows.get_int(0).unwrap(), 1);
}

#[test]
fn type_errors_match_paper_semantics() {
    let conn = conn();
    conn.execute("CREATE TABLE t (a Chronon, b Chronon)", &[])
        .unwrap();
    conn.execute("INSERT INTO t VALUES ('1999-01-01', '1999-02-01')", &[])
        .unwrap();
    // Chronon + Chronon: type error (paper §2).
    assert!(conn.query("SELECT a + b FROM t", &[]).is_err());
    // Chronon - Chronon: Span.
    let mut rows = conn.query("SELECT b - a FROM t", &[]).unwrap();
    rows.next();
    assert_eq!(rows.get_span(0).unwrap(), Span::from_days(31));
    // Span * Span: type error.
    assert!(conn.query("SELECT (b - a) * (b - a) FROM t", &[]).is_err());
    // Element < Element: no ordering registered.
    conn.execute("CREATE TABLE u (e Element)", &[]).unwrap();
    conn.execute("INSERT INTO u VALUES ('{}')", &[]).unwrap();
    assert!(conn.query("SELECT e < e FROM u", &[]).is_err());
}
