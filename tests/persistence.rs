//! Snapshot persistence across the full stack: a TIP-enabled database
//! with UDT columns survives a save/load cycle (including symbolic NOW
//! endpoints and indexes), mirroring reconnecting to a blade-enabled
//! Informix instance.

use minidb::{Database, TableSource};
use tip::blade::TipBlade;
use tip::client::Connection;
use tip::core::Chronon;
use tip::workload::{generate, populate_tip, MedicalConfig};

fn c(s: &str) -> Chronon {
    s.parse().unwrap()
}

fn loaded_connection() -> Connection {
    let conn = Connection::open_tip_enabled();
    conn.set_now(Some(c("1999-12-01")));
    let session = conn.database().session();
    populate_tip(
        &session,
        conn.tip_types(),
        &generate(&MedicalConfig {
            n_prescriptions: 60,
            ..MedicalConfig::default()
        }),
    )
    .unwrap();
    session
        .execute("CREATE INDEX ix_drug ON Prescription(drug)")
        .unwrap();
    conn
}

#[test]
fn snapshot_round_trip_preserves_answers() {
    let conn = loaded_connection();
    let q = "SELECT patient, total_seconds(length(group_union(valid))) \
             FROM Prescription GROUP BY patient ORDER BY patient";
    let before = conn.database().session();
    let mut before_s = before;
    before_s.set_now_unix(Some(tip::blade::chronon_to_unix(c("1999-12-01"))));
    let expected = before_s.query(q).unwrap();

    let snapshot = conn.database().save_snapshot().unwrap();

    // A brand-new process: new database, blade installed, snapshot loaded.
    let db2 = Database::new();
    db2.install_blade(&TipBlade).unwrap();
    db2.load_snapshot(&snapshot).unwrap();
    let mut s2 = db2.session();
    s2.set_now_unix(Some(tip::blade::chronon_to_unix(c("1999-12-01"))));
    let actual = s2.query(q).unwrap();

    assert_eq!(expected.rows.len(), actual.rows.len());
    for (a, b) in expected.rows.iter().zip(&actual.rows) {
        assert_eq!(a[0].as_str(), b[0].as_str());
        assert_eq!(a[1].as_int(), b[1].as_int());
    }
}

#[test]
fn snapshot_preserves_symbolic_now() {
    let conn = loaded_connection();
    let snapshot = conn.database().save_snapshot().unwrap();
    let db2 = Database::new();
    db2.install_blade(&TipBlade).unwrap();
    db2.load_snapshot(&snapshot).unwrap();
    let s2 = db2.session();
    // Open-ended elements were stored symbolically, so they still grow
    // with NOW in the restored database.
    let r = s2
        .query("SELECT COUNT(*) FROM Prescription WHERE is_now_relative(valid)")
        .unwrap();
    assert!(r.rows[0][0].as_int().unwrap() > 0);
}

#[test]
fn snapshot_preserves_indexes() {
    let conn = loaded_connection();
    let snapshot = conn.database().save_snapshot().unwrap();
    let db2 = Database::new();
    db2.install_blade(&TipBlade).unwrap();
    db2.load_snapshot(&snapshot).unwrap();
    db2.with_tables(|pinned| {
        let t = pinned.table("Prescription").unwrap();
        assert_eq!(t.indexes().len(), 1);
        assert_eq!(t.indexes()[0].name, "ix_drug");
    });
}

#[test]
fn loading_without_the_blade_fails_cleanly() {
    let conn = loaded_connection();
    let snapshot = conn.database().save_snapshot().unwrap();
    let bare = Database::new(); // no blade!
    let err = bare.load_snapshot(&snapshot).unwrap_err();
    assert!(err.to_string().contains("blade"), "{err}");
}

#[test]
fn snapshot_is_deterministic_for_identical_databases() {
    let a = loaded_connection().database().save_snapshot().unwrap();
    let b = loaded_connection().database().save_snapshot().unwrap();
    assert_eq!(a, b);
}
