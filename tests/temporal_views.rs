//! Temporal views — the application the paper's authors built TIP for
//! (§1: "our research in temporal data warehouses has led us to require a
//! relational database system with full SQL as well as rich temporal
//! support, in order to experiment with our temporal view-maintenance
//! techniques"). These tests define temporal views over the medical
//! database with plain `CREATE VIEW` + TIP routines.

use tip::client::Connection;
use tip::core::Chronon;
use tip::workload::{generate, populate_tip, MedicalConfig};

fn c(s: &str) -> Chronon {
    s.parse().unwrap()
}

fn demo() -> Connection {
    let conn = Connection::open_tip_enabled();
    conn.set_now(Some(c("1999-12-01")));
    let session = conn.database().session();
    populate_tip(
        &session,
        conn.tip_types(),
        &generate(&MedicalConfig::default()),
    )
    .unwrap();
    conn
}

#[test]
fn coalesced_medication_view() {
    let conn = demo();
    conn.execute(
        "CREATE VIEW Medication AS \
         SELECT patient, group_union(valid) AS on_medication FROM Prescription \
         GROUP BY patient",
        &[],
    )
    .unwrap();
    // The view exposes a coalesced Element per patient and composes with
    // further temporal routines.
    let mut rows = conn
        .query(
            "SELECT patient, total_seconds(length(on_medication)) FROM Medication \
             ORDER BY patient LIMIT 3",
            &[],
        )
        .unwrap();
    assert_eq!(rows.len(), 3);
    while rows.next() {
        assert!(rows.get_int(1).unwrap() > 0);
    }
    // Agreement with the direct aggregate.
    let direct = conn
        .query(
            "SELECT patient, total_seconds(length(group_union(valid))) FROM Prescription \
             GROUP BY patient ORDER BY patient",
            &[],
        )
        .unwrap();
    let via_view = conn
        .query(
            "SELECT patient, total_seconds(length(on_medication)) FROM Medication \
             ORDER BY patient",
            &[],
        )
        .unwrap();
    assert_eq!(direct.len(), via_view.len());
}

#[test]
fn current_prescriptions_view_is_now_sensitive() {
    let conn = demo();
    conn.execute(
        "CREATE VIEW CurrentRx AS \
         SELECT patient, drug FROM Prescription WHERE contains(valid, now())",
        &[],
    )
    .unwrap();
    let at_demo = conn.query("SELECT COUNT(*) FROM CurrentRx", &[]).unwrap();
    let mut r = at_demo;
    r.next();
    let n_demo = r.get_int(0).unwrap();
    // What-if: far in the past, fewer (or no) prescriptions are current.
    conn.set_now(Some(c("1994-01-01")));
    let mut r = conn.query("SELECT COUNT(*) FROM CurrentRx", &[]).unwrap();
    r.next();
    let n_past = r.get_int(0).unwrap();
    assert!(n_past < n_demo, "{n_past} >= {n_demo}");
}

#[test]
fn view_over_view_with_temporal_predicates() {
    let conn = demo();
    conn.execute(
        "CREATE VIEW Medication AS \
         SELECT patient, group_union(valid) AS on_medication FROM Prescription \
         GROUP BY patient",
        &[],
    )
    .unwrap();
    conn.execute(
        "CREATE VIEW LongTerm AS \
         SELECT patient FROM Medication \
         WHERE length(on_medication) > '365'::Span",
        &[],
    )
    .unwrap();
    let long_term = conn.query("SELECT COUNT(*) FROM LongTerm", &[]).unwrap();
    let mut r = long_term;
    r.next();
    let n = r.get_int(0).unwrap();
    assert!(n > 0 && n < 50, "{n} of 50 patients are long-term");
    // Join the view stack back against the base table.
    let rows = conn
        .query(
            "SELECT DISTINCT p.drug FROM Prescription p, LongTerm l \
             WHERE p.patient = l.patient ORDER BY p.drug",
            &[],
        )
        .unwrap();
    assert!(!rows.is_empty());
}

#[test]
fn views_survive_snapshots_with_the_blade() {
    let conn = demo();
    conn.execute(
        "CREATE VIEW CurrentRx AS \
         SELECT patient, drug FROM Prescription WHERE contains(valid, now())",
        &[],
    )
    .unwrap();
    let snap = conn.database().save_snapshot().unwrap();
    let db2 = minidb::Database::new();
    db2.install_blade(&tip::blade::TipBlade).unwrap();
    db2.load_snapshot(&snap).unwrap();
    let mut s2 = db2.session();
    s2.set_now_unix(Some(tip::blade::chronon_to_unix(c("1999-12-01"))));
    let r = s2.query("SELECT COUNT(*) FROM CurrentRx").unwrap();
    assert!(r.rows[0][0].as_int().unwrap() > 0);
}
