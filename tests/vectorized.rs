//! Vectorized-executor integration: EXPLAIN ANALYZE reports which
//! executor ran and its batch counters, kernel-less UDT routines fall
//! back to the row path (and the plan cache remembers that), and catalog
//! generation bumps (blade installs, DDL) re-resolve batch capability
//! instead of reusing a stale fast path.

use tip::blade::TipBlade;
use tip::db::{Database, Session};

fn lines(s: &Session, sql: &str) -> Vec<String> {
    let r = s.query(sql).unwrap();
    r.rows
        .iter()
        .map(|row| row[0].as_str().unwrap().to_owned())
        .collect()
}

fn plain_db_with_rows(n: usize) -> std::sync::Arc<Database> {
    let db = Database::new();
    let s = db.session();
    s.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    for i in 0..n {
        s.execute(&format!("INSERT INTO t VALUES ({}, {i})", i % 100))
            .unwrap();
    }
    db
}

fn tip_db() -> std::sync::Arc<Database> {
    let db = Database::new();
    db.install_blade(&TipBlade).unwrap();
    let s = db.session();
    s.execute("CREATE TABLE rx (id INT, valid Element)")
        .unwrap();
    s.execute(
        "INSERT INTO rx VALUES (1, '{[1995-01-01, 1995-06-30]}'), \
         (2, '{[1996-01-01, 1996-03-31]}'), (3, '{[1995-05-01, 1995-12-31]}')",
    )
    .unwrap();
    db
}

#[test]
fn explain_analyze_reports_batch_path_and_counters() {
    let db = plain_db_with_rows(300);
    let s = db.session();
    let out = lines(&s, "EXPLAIN ANALYZE SELECT COUNT(*) FROM t WHERE k < 50");
    let trailer = out.last().unwrap();
    assert!(trailer.contains("[exec: batch]"), "trailer: {trailer:?}");
    assert!(trailer.ends_with("[plan: fresh]"), "trailer: {trailer:?}");
    // Adapter wrappers are not plan nodes: exactly the one scanned table
    // is pinned, not one per bridge.
    assert!(
        trailer.contains("pinned 1 table(s)"),
        "trailer: {trailer:?}"
    );
    // Batch operators report batches and rows/batch next to the row
    // counters the row executor has always shown.
    let scan = out
        .iter()
        .find(|l| l.contains("scan(t)"))
        .expect("scan node in plan");
    assert!(scan.contains("batches="), "scan: {scan:?}");
    assert!(scan.contains("rows/batch="), "scan: {scan:?}");
    assert!(scan.contains("calls="), "scan: {scan:?}");
    assert!(scan.contains("rows="), "scan: {scan:?}");
}

#[test]
fn kernel_less_routine_falls_back_to_rows_and_cache_remembers() {
    let db = tip_db();
    let s = db.session();
    // `is_empty` has no batch kernel, so the whole plan runs on the row
    // executor — correctness over speed, proven by the answer.
    let q = "SELECT COUNT(*) FROM rx WHERE is_empty(valid) = FALSE";
    let sql = format!("EXPLAIN ANALYZE {q}");
    let first = lines(&s, &sql);
    let trailer = first.last().unwrap();
    assert!(trailer.contains("[exec: row]"), "trailer: {trailer:?}");
    assert!(trailer.ends_with("[plan: fresh]"), "trailer: {trailer:?}");
    // The row path still computes the right answer.
    assert_eq!(s.query(q).unwrap().rows[0][0].as_int(), Some(3));
    // The cached plan recorded that it compiled for the row path: the
    // replay stays on rows rather than resurrecting a stale fast path.
    let second = lines(&s, &sql);
    let trailer = second.last().unwrap();
    assert!(trailer.contains("[exec: row]"), "trailer: {trailer:?}");
    assert!(trailer.ends_with("[plan: cached]"), "trailer: {trailer:?}");
}

#[test]
fn batch_capable_plan_stays_batch_when_cached() {
    let db = tip_db();
    let s = db.session();
    // `overlaps(Element, Element)` has a hand-written kernel.
    let sql = "EXPLAIN ANALYZE SELECT COUNT(*) FROM rx \
               WHERE overlaps(valid, '{[1995-04-01, 1995-05-15]}'::Element)";
    let first = lines(&s, sql);
    assert!(
        first.last().unwrap().contains("[exec: batch]"),
        "trailer: {:?}",
        first.last()
    );
    let second = lines(&s, sql);
    let trailer = second.last().unwrap();
    assert!(trailer.contains("[exec: batch]"), "trailer: {trailer:?}");
    assert!(trailer.ends_with("[plan: cached]"), "trailer: {trailer:?}");
}

#[test]
fn set_vectorized_off_forces_row_path_with_identical_answers() {
    let db = plain_db_with_rows(200);
    let mut s = db.session();
    let q = "SELECT k, COUNT(*) FROM t WHERE v >= 40 GROUP BY k ORDER BY k";
    let batch = s.query(q).unwrap();
    s.set_vectorized(false);
    let row = s.query(q).unwrap();
    assert_eq!(s.format_result(&batch), s.format_result(&row));
    let out = lines(&s, &format!("EXPLAIN ANALYZE {q}"));
    assert!(
        out.last().unwrap().contains("[exec: row]"),
        "trailer: {:?}",
        out.last()
    );
}

#[test]
fn generation_bump_reresolves_batch_capability() {
    let db = plain_db_with_rows(50);
    let s = db.session();
    let sql = "EXPLAIN ANALYZE SELECT COUNT(*) FROM t WHERE k = 7";
    lines(&s, sql);
    let cached = lines(&s, sql);
    assert!(
        cached.last().unwrap().ends_with("[plan: cached]"),
        "trailer: {:?}",
        cached.last()
    );
    // A blade install bumps the catalog generation: the stale entry is
    // dropped and capability is re-resolved against the new catalog.
    db.install_blade(&TipBlade).unwrap();
    let replanned = lines(&s, sql);
    let trailer = replanned.last().unwrap();
    assert!(trailer.ends_with("[plan: fresh]"), "trailer: {trailer:?}");
    assert!(trailer.contains("[exec: batch]"), "trailer: {trailer:?}");
}

#[test]
fn plain_selects_feed_the_batch_metric() {
    let db = plain_db_with_rows(100);
    let s = db.session();
    let before = s.metrics().snapshot().vectorized_batches;
    s.query("SELECT COUNT(*) FROM t WHERE k < 10").unwrap();
    let after = s.metrics().snapshot().vectorized_batches;
    assert!(after > before, "exec.batches stayed at {after}");
}
