//! E4/E5 cross-validation: the integrated (TIP) system and the layered
//! (TimeDB-style) baseline must produce *identical logical answers* on
//! randomized workloads — only their architecture and cost differ.

use proptest::prelude::*;

// The bench crate isn't a dependency of the facade; re-derive the small
// harness locally instead.
mod harness {
    use minidb::Database;
    use std::sync::Arc;
    use tip::blade::{TipBlade, TipTypes};
    use tip::core::{Chronon, NowContext};
    use tip::layered::LayeredStratum;
    use tip::workload::{generate, populate_layered, populate_tip, MedicalConfig};

    pub fn experiment_now() -> Chronon {
        Chronon::from_ymd(1999, 12, 1).unwrap()
    }

    pub fn tip_db(cfg: &MedicalConfig) -> (Arc<Database>, minidb::Session) {
        let db = Database::new();
        db.install_blade(&TipBlade).unwrap();
        let mut session = db.session();
        session.set_now_unix(Some(tip::blade::chronon_to_unix(experiment_now())));
        let types = db.with_catalog(TipTypes::from_catalog).unwrap();
        populate_tip(&session, types, &generate(cfg)).unwrap();
        (db, session)
    }

    pub fn layered_db(cfg: &MedicalConfig) -> LayeredStratum {
        let mut s = LayeredStratum::new();
        populate_layered(&mut s, &generate(cfg), NowContext::fixed(experiment_now())).unwrap();
        s
    }
}

use harness::*;
use std::collections::HashMap;
use tip::workload::MedicalConfig;

fn coalesced_by_patient_tip(session: &minidb::Session) -> HashMap<String, i64> {
    let r = session
        .query(
            "SELECT patient, total_seconds(length(group_union(valid))) \
             FROM Prescription GROUP BY patient",
        )
        .unwrap();
    r.rows
        .iter()
        .map(|row| {
            (
                row[0].as_str().unwrap().to_owned(),
                row[1].as_int().unwrap(),
            )
        })
        .collect()
}

fn coalesced_by_patient_layered(s: &mut tip::layered::LayeredStratum) -> HashMap<String, i64> {
    s.coalesced_length("Prescription", "patient")
        .unwrap()
        .into_iter()
        .map(|(g, span)| (g.as_str().unwrap().to_owned(), span.seconds()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn coalescing_agrees_on_random_workloads(seed in 0u64..1000, n in 20usize..120) {
        let cfg = MedicalConfig { seed, n_prescriptions: n, ..MedicalConfig::default() };
        let (_db, session) = tip_db(&cfg);
        let mut layered = layered_db(&cfg);
        prop_assert_eq!(
            coalesced_by_patient_tip(&session),
            coalesced_by_patient_layered(&mut layered)
        );
    }

    #[test]
    fn self_join_total_overlap_agrees(seed in 0u64..1000, n in 20usize..120) {
        let cfg = MedicalConfig { seed, n_prescriptions: n, ..MedicalConfig::default() };
        let (_db, session) = tip_db(&cfg);
        let mut layered = layered_db(&cfg);
        let now = experiment_now();

        let tip_rows = session
            .query(
                "SELECT intersect(p1.valid, p2.valid) \
                 FROM Prescription p1, Prescription p2 \
                 WHERE p1.drug = 'Diabeta' AND p2.drug = 'Aspirin' \
                   AND p1.patient = p2.patient AND overlaps(p1.valid, p2.valid)",
            )
            .unwrap();
        let tip_total: i64 = tip_rows
            .rows
            .iter()
            .map(|row| {
                tip::blade::as_element(&row[0])
                    .unwrap()
                    .resolve(now)
                    .unwrap()
                    .length()
                    .seconds()
            })
            .sum();

        let lay_rows = layered
            .temporal_join(
                "Prescription",
                "Prescription",
                &[],
                "a.patient = b.patient AND a.drug = 'Diabeta' AND b.drug = 'Aspirin'",
            )
            .unwrap();
        let lay_total: i64 = lay_rows
            .rows
            .iter()
            .map(|row| row[1].as_int().unwrap() - row[0].as_int().unwrap() + 1)
            .sum();
        prop_assert_eq!(tip_total, lay_total);
    }
}
