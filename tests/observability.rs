//! Observability-layer integration: EXPLAIN / EXPLAIN ANALYZE output,
//! the SHOW STATS metrics registry, the slow-query log hook, and the
//! no-panic guarantees on malformed or overflowing temporal SQL.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use tip::client::Connection;
use tip::core::Chronon;

fn c(s: &str) -> Chronon {
    s.parse().unwrap()
}

fn conn() -> Connection {
    let conn = Connection::open_tip_enabled();
    conn.set_now(Some(c("1999-12-01")));
    conn
}

fn strings(conn: &Connection, sql: &str) -> Vec<String> {
    let mut rows = conn.query(sql, &[]).unwrap();
    let mut out = Vec::new();
    while rows.next() {
        out.push(rows.get_string(0).unwrap());
    }
    out
}

fn stat(conn: &Connection, metric: &str) -> i64 {
    let mut rows = conn.query("SHOW STATS", &[]).unwrap();
    while rows.next() {
        if rows.get_string(0).unwrap() == metric {
            return rows.get_int(1).unwrap();
        }
    }
    panic!("metric {metric:?} missing from SHOW STATS");
}

fn make_prescriptions(conn: &Connection, n: usize) {
    conn.execute(
        "CREATE TABLE Prescription (patient CHAR(20), drug CHAR(20), valid Period)",
        &[],
    )
    .unwrap();
    for i in 0..n {
        conn.execute(
            &format!(
                "INSERT INTO Prescription VALUES ('p{i}', 'd{}', \
                 '[1999-01-{:02}, 1999-01-{:02}]'::Period)",
                i % 3,
                1 + i % 20,
                5 + i % 20,
            ),
            &[],
        )
        .unwrap();
    }
}

#[test]
fn explain_names_the_interval_index_for_overlaps() {
    let conn = conn();
    make_prescriptions(&conn, 8);

    // Without an index the plan is a plain filtered scan.
    let plan = strings(
        &conn,
        "EXPLAIN SELECT patient FROM Prescription \
         WHERE overlaps(valid, '[1999-01-03, 1999-01-04]'::Period)",
    );
    assert_eq!(plan.len(), 1);
    assert!(plan[0].contains("scan(Prescription)"), "plan: {plan:?}");
    assert!(!plan[0].contains("ivscan"), "plan: {plan:?}");

    // A Period column gets a bucketed interval index; EXPLAIN must say so.
    conn.execute("CREATE INDEX ix_valid ON Prescription(valid)", &[])
        .unwrap();
    let plan = strings(
        &conn,
        "EXPLAIN SELECT patient FROM Prescription \
         WHERE overlaps(valid, '[1999-01-03, 1999-01-04]'::Period)",
    );
    assert!(plan[0].contains("ivscan(Prescription)"), "plan: {plan:?}");
}

#[test]
fn explain_analyze_reports_per_operator_rows_and_timings() {
    let conn = conn();
    make_prescriptions(&conn, 10);

    let lines = strings(
        &conn,
        "EXPLAIN ANALYZE SELECT patient FROM Prescription WHERE drug = 'd0' ORDER BY patient",
    );
    // One line per operator plus the summary trailer.
    assert!(lines.len() >= 3, "lines: {lines:?}");
    let trailer = lines.last().unwrap();
    assert!(
        trailer.starts_with("returned 4 row(s) in "),
        "trailer: {trailer:?}"
    );
    // Every operator line carries rows=, calls= and time= annotations.
    for line in &lines[..lines.len() - 1] {
        assert!(line.contains("rows="), "line: {line:?}");
        assert!(line.contains("calls="), "line: {line:?}");
        assert!(line.contains("time="), "line: {line:?}");
    }
    // The scan node reports what it scanned and which access path it took.
    let scan = lines
        .iter()
        .find(|l| l.contains("scan(Prescription)"))
        .expect("scan node in plan");
    assert!(scan.contains("scanned=10"), "scan: {scan:?}");
    assert!(scan.contains("path=full-scan"), "scan: {scan:?}");
    // The sort node sits above the filtered scan: 4 rows come out.
    let sort = lines.iter().find(|l| l.trim_start().starts_with("sort"));
    assert!(sort.is_some(), "lines: {lines:?}");
    assert!(sort.unwrap().contains("rows=4"), "sort: {sort:?}");
}

#[test]
fn show_stats_distinguishes_index_paths_from_full_scans() {
    let conn = conn();
    make_prescriptions(&conn, 12);
    conn.execute("CREATE INDEX ix_drug ON Prescription(drug)", &[])
        .unwrap();
    conn.execute("CREATE INDEX ix_valid ON Prescription(valid)", &[])
        .unwrap();

    assert_eq!(stat(&conn, "scans.full"), 0);

    // Equality on an indexed column -> index-eq.
    conn.query("SELECT patient FROM Prescription WHERE drug = 'd1'", &[])
        .unwrap();
    assert_eq!(stat(&conn, "scans.index_eq"), 1);

    // OVERLAPS on an interval-indexed column -> index-overlap.
    conn.query(
        "SELECT patient FROM Prescription \
         WHERE overlaps(valid, '[1999-01-03, 1999-01-04]'::Period)",
        &[],
    )
    .unwrap();
    assert_eq!(stat(&conn, "scans.index_overlap"), 1);

    // A predicate on an unindexed column -> full scan.
    conn.query("SELECT drug FROM Prescription WHERE patient = 'p3'", &[])
        .unwrap();
    assert_eq!(stat(&conn, "scans.full"), 1);

    // Statement-kind counters tick as well, and the metrics API agrees
    // with the SQL surface.
    assert!(stat(&conn, "statements.select") >= 3);
    let snap = conn.metrics().unwrap().snapshot();
    assert_eq!(snap.full_scans, 1);
    assert_eq!(snap.index_eq_scans, 1);
    assert_eq!(snap.index_overlap_scans, 1);
    let rate = snap.index_hit_rate().unwrap();
    assert!((rate - 2.0 / 3.0).abs() < 1e-9, "rate: {rate}");
}

#[test]
fn show_stats_counts_rows_scanned_vs_returned() {
    let conn = conn();
    make_prescriptions(&conn, 12);
    conn.query("SELECT patient FROM Prescription WHERE drug = 'd0'", &[])
        .unwrap();
    // Full scan reads all 12 rows; the filter keeps every third.
    assert_eq!(stat(&conn, "rows.scanned"), 12);
    assert_eq!(stat(&conn, "rows.returned"), 4);
    assert_eq!(stat(&conn, "statements.error"), 0);

    // Failed statements tick the error counter, not the kind counters.
    assert!(conn.query("SELECT nope FROM Prescription", &[]).is_err());
    assert_eq!(stat(&conn, "statements.error"), 1);
}

#[test]
fn slow_query_log_fires_over_threshold_only() {
    let conn = conn();
    make_prescriptions(&conn, 6);

    let hits = Arc::new(AtomicUsize::new(0));
    let last = Arc::new(Mutex::new(String::new()));
    let (h, l) = (hits.clone(), last.clone());
    // Zero threshold: every SELECT is "slow".
    conn.set_slow_query_log(Duration::ZERO, move |q| {
        h.fetch_add(1, Ordering::SeqCst);
        *l.lock().unwrap() = format!("{} | {}", q.sql, q.plan);
    })
    .unwrap();
    conn.query("SELECT patient FROM Prescription", &[]).unwrap();
    assert_eq!(hits.load(Ordering::SeqCst), 1);
    let logged = last.lock().unwrap().clone();
    assert!(logged.contains("SELECT patient FROM Prescription"));
    assert!(logged.contains("scan(Prescription)"), "logged: {logged}");
    assert_eq!(stat(&conn, "select.slow"), 1);

    // An unreachable threshold never fires.
    let h2 = hits.clone();
    conn.set_slow_query_log(Duration::from_secs(3600), move |_| {
        h2.fetch_add(1, Ordering::SeqCst);
    })
    .unwrap();
    conn.query("SELECT drug FROM Prescription", &[]).unwrap();
    assert_eq!(hits.load(Ordering::SeqCst), 1);

    conn.clear_slow_query_log().unwrap();
    conn.query("SELECT drug FROM Prescription", &[]).unwrap();
    assert_eq!(hits.load(Ordering::SeqCst), 1);
}

/// DML is observable too: INSERT/UPDATE/DELETE reach the slow-query
/// hook (with affected-row counts), the latency histogram, and the
/// `rows.affected` / `dml.total_micros` / lock counters in SHOW STATS.
#[test]
fn dml_statements_reach_the_slow_query_log_and_counters() {
    let conn = conn();
    conn.execute("CREATE TABLE t (a INT, b INT)", &[]).unwrap();

    let logged = Arc::new(Mutex::new(Vec::new()));
    let l = logged.clone();
    conn.set_slow_query_log(Duration::ZERO, move |q| {
        l.lock()
            .unwrap()
            .push((q.sql.clone(), q.plan.clone(), q.rows));
    })
    .unwrap();

    conn.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)", &[])
        .unwrap();
    conn.execute("UPDATE t SET b = b + 1 WHERE a >= 2", &[])
        .unwrap();
    conn.execute("DELETE FROM t WHERE a = 1", &[]).unwrap();

    let logged = logged.lock().unwrap().clone();
    assert_eq!(logged.len(), 3, "every DML statement hit the hook");
    assert_eq!(logged[0].1, "insert(t)");
    assert_eq!(logged[0].2, 3, "INSERT reports affected rows");
    assert_eq!(logged[1].1, "update(t)");
    assert_eq!(logged[1].2, 2);
    assert_eq!(logged[2].1, "delete(t)");
    assert_eq!(logged[2].2, 1);

    assert_eq!(stat(&conn, "rows.affected"), 6);
    assert_eq!(stat(&conn, "select.slow"), 3, "DML counts as slow too");
    // Every DML statement pinned exactly one table; a fresh session
    // never blocked, so wait time is (near) zero but the counter row
    // itself must exist.
    assert!(stat(&conn, "lock.tables_pinned") >= 3);
    assert!(stat(&conn, "lock.wait_micros") >= 0);
    assert!(stat(&conn, "dml.total_micros") >= 0);
}

#[test]
fn explain_analyze_with_interval_index_shows_index_path() {
    let conn = conn();
    make_prescriptions(&conn, 12);
    conn.execute("CREATE INDEX ix_valid ON Prescription(valid)", &[])
        .unwrap();
    let lines = strings(
        &conn,
        "EXPLAIN ANALYZE SELECT patient FROM Prescription \
         WHERE overlaps(valid, '[1999-01-03, 1999-01-04]'::Period)",
    );
    let scan = lines
        .iter()
        .find(|l| l.contains("ivscan(Prescription)"))
        .expect("ivscan node in analyzed plan");
    assert!(scan.contains("path=index-overlap"), "scan: {scan:?}");
}

// ---- no-panic guarantees on hostile arithmetic -------------------------

#[test]
fn overflowing_temporal_sql_errors_instead_of_panicking() {
    let conn = conn();

    // Span text parse with an astronomically large day count.
    let r = conn.query("SELECT '106751991167301'::Span", &[]);
    assert!(r.is_err(), "span parse overflow must error");

    // days() constructor overflowing the second counter.
    let r = conn.query("SELECT days(106751991167302)", &[]);
    assert!(r.is_err(), "days() overflow must error");

    // Chronon + Span past the end of the timeline.
    let r = conn.query("SELECT '9999-12-31'::Chronon + '10'::Span", &[]);
    assert!(r.is_err(), "chronon+span overflow must error");

    // Negating the most negative span (constructible via INT::Span).
    let r = conn.query("SELECT -((0 - 9223372036854775807 - 1)::Span)", &[]);
    assert!(r.is_err(), "span negation overflow must error");

    // Span arithmetic overflow.
    let r = conn.query("SELECT (9223372036854775807::Span) + (1::Span)", &[]);
    assert!(r.is_err(), "span+span overflow must error");
}

#[test]
fn overflowing_integer_sql_errors_instead_of_panicking() {
    let conn = conn();
    let min = "(0 - 9223372036854775807 - 1)";
    assert!(conn.query(&format!("SELECT {min} / (0 - 1)"), &[]).is_err());
    assert!(conn.query(&format!("SELECT {min} % (0 - 1)"), &[]).is_err());
    assert!(conn.query("SELECT 9223372036854775807 + 1", &[]).is_err());
    // Division by zero stays a clean error too.
    assert!(conn.query("SELECT 1 / 0", &[]).is_err());
}

#[test]
fn show_stats_reports_plan_cache_counters() {
    use tip::client::HostValue;

    let conn = conn();
    make_prescriptions(&conn, 6);
    assert_eq!(
        stat(&conn, "plan_cache.misses"),
        0,
        "DML never plans through the cache"
    );

    let stmt = conn
        .prepare("SELECT patient FROM Prescription WHERE drug = :d")
        .bind("d", HostValue::Str("d0".into()));
    for _ in 0..3 {
        assert_eq!(stmt.query().unwrap().len(), 2);
    }
    assert_eq!(stat(&conn, "plan_cache.misses"), 1);
    assert_eq!(stat(&conn, "plan_cache.hits"), 2);
    assert!(stat(&conn, "plan_cache.entries") >= 1);
    assert_eq!(stat(&conn, "plan_cache.invalidations"), 0);

    // DDL invalidates: the next execution replans against the new index.
    conn.execute("CREATE INDEX ix_rx_drug ON Prescription(drug)", &[])
        .unwrap();
    assert_eq!(stmt.query().unwrap().len(), 2);
    assert_eq!(stat(&conn, "plan_cache.invalidations"), 1);
    assert_eq!(stat(&conn, "plan_cache.misses"), 2);

    // The snapshot API carries the same counters (and therefore so does
    // the widened METRICS wire frame, which is encoded from it).
    let snap = conn.metrics_snapshot().unwrap();
    assert_eq!(snap.plan_cache_hits, 2);
    assert_eq!(snap.plan_cache_misses, 2);
    assert_eq!(snap.plan_cache_invalidations, 1);
    assert!(snap.plan_cache_entries >= 1);
}
