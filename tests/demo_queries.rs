//! E2 integration: the paper's demonstration queries driven through the
//! full stack (client → blade → DBMS) on the seeded synthetic medical
//! database.

use tip::client::{Connection, HostValue};
use tip::core::Chronon;
use tip::workload::{generate, populate_tip, MedicalConfig};

fn demo_connection() -> Connection {
    let conn = Connection::open_tip_enabled();
    conn.set_now(Some(Chronon::from_ymd(1999, 12, 1).unwrap()));
    let session = conn.database().session();
    populate_tip(
        &session,
        conn.tip_types(),
        &generate(&MedicalConfig::default()),
    )
    .unwrap();
    conn
}

#[test]
fn the_demo_database_loads_and_counts() {
    let conn = demo_connection();
    let mut rows = conn
        .query("SELECT COUNT(*) FROM Prescription", &[])
        .unwrap();
    assert!(rows.next());
    assert_eq!(rows.get_int(0).unwrap(), 200);
}

#[test]
fn q2_parameterized_tylenol_query_monotone_in_w() {
    let conn = demo_connection();
    let stmt = "SELECT COUNT(*) FROM Prescription \
                WHERE drug = 'Tylenol' \
                  AND start(valid) - patientDOB < '7 00:00:00'::Span * :w \
                  AND start(valid) - patientDOB >= '0'::Span";
    let mut counts = Vec::new();
    for w in [52i64, 260, 520, 2000] {
        let mut rows = conn
            .prepare(stmt)
            .bind("w", HostValue::Int(w))
            .query()
            .unwrap();
        rows.next();
        counts.push(rows.get_int(0).unwrap());
    }
    // Wider age windows can only match more prescriptions.
    assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    assert!(
        *counts.last().unwrap() > 0,
        "some Tylenol prescriptions exist"
    );
}

#[test]
fn q3_self_join_intersections_are_subsets_of_both_sides() {
    let conn = demo_connection();
    let now = Chronon::from_ymd(1999, 12, 1).unwrap();
    let mut rows = conn
        .query(
            "SELECT p1.valid, p2.valid, intersect(p1.valid, p2.valid) \
             FROM Prescription p1, Prescription p2 \
             WHERE p1.drug = 'Diabeta' AND p2.drug = 'Aspirin' \
               AND p1.patient = p2.patient AND overlaps(p1.valid, p2.valid)",
            &[],
        )
        .unwrap();
    assert!(!rows.is_empty(), "the workload contains overlapping pairs");
    while rows.next() {
        let a = rows.get_element(0).unwrap().resolve(now).unwrap();
        let b = rows.get_element(1).unwrap().resolve(now).unwrap();
        let i = rows.get_element(2).unwrap().resolve(now).unwrap();
        assert!(!i.is_empty());
        assert!(a.contains_element(&i));
        assert!(b.contains_element(&i));
        assert_eq!(a.intersect(&b), i);
    }
}

#[test]
fn q4_group_union_never_exceeds_sum_and_differs_under_overlap() {
    let conn = demo_connection();
    let mut rows = conn
        .query(
            "SELECT patient, total_seconds(length(group_union(valid))) AS coalesced, \
                    SUM(total_seconds(length(valid))) AS naive \
             FROM Prescription GROUP BY patient",
            &[],
        )
        .unwrap();
    let mut some_differ = false;
    while rows.next() {
        let coalesced = rows.get_int(1).unwrap();
        let naive = rows.get_int(2).unwrap();
        assert!(coalesced <= naive, "coalescing can only shrink total time");
        some_differ |= coalesced < naive;
    }
    assert!(
        some_differ,
        "the workload contains overlapping prescriptions"
    );
}

#[test]
fn q4_matches_client_side_recomputation() {
    let conn = demo_connection();
    let now = Chronon::from_ymd(1999, 12, 1).unwrap();
    // Server-side aggregate.
    let mut server = conn
        .query(
            "SELECT patient, group_union(valid) FROM Prescription \
             GROUP BY patient ORDER BY patient",
            &[],
        )
        .unwrap();
    // Client-side recomputation from raw rows via tip-core.
    let mut raw = conn
        .query(
            "SELECT patient, valid FROM Prescription ORDER BY patient",
            &[],
        )
        .unwrap();
    let mut by_patient: std::collections::BTreeMap<String, tip::core::ResolvedElement> =
        Default::default();
    while raw.next() {
        let p = raw.get_string(0).unwrap();
        let e = raw.get_element(1).unwrap().resolve(now).unwrap();
        let entry = by_patient.entry(p).or_default();
        *entry = entry.union(&e);
    }
    let mut n = 0;
    while server.next() {
        let p = server.get_string(0).unwrap();
        let e = server.get_element(1).unwrap().resolve(now).unwrap();
        assert_eq!(by_patient.get(&p), Some(&e), "patient {p}");
        n += 1;
    }
    assert_eq!(n, by_patient.len());
}
