//! # tip — Temporal Information Processor (facade crate)
//!
//! A from-scratch Rust reproduction of **TIP: A Temporal Extension to
//! Informix** (Yang, Ying, Widom — SIGMOD 2000): temporal datatypes and
//! routines installed *inside* an extensible relational DBMS, plus the
//! client libraries and the TIP Browser around it.
//!
//! This facade re-exports the whole workspace:
//!
//! | module | crate | role (paper Figure 1) |
//! |---|---|---|
//! | [`core`] | `tip-core` | the TIP C library: Chronon/Span/Instant/Period/Element |
//! | [`db`] | `minidb` | the extensible DBMS standing in for Informix |
//! | [`blade`] | `tip-blade` | the TIP DataBlade |
//! | [`client`] | `tip-client` | the C/Java client libraries + JDBC type mapping |
//! | [`layered`] | `tip-layered` | the TimeDB-style layered baseline (paper §5) |
//! | [`browser`] | `tip-browser` | the TIP Browser (paper §4) |
//! | [`workload`] | `tip-workload` | the synthetic medical database |
//!
//! ## Quickstart
//!
//! ```
//! use tip::client::Connection;
//! use tip::core::Chronon;
//!
//! let conn = Connection::open_tip_enabled();
//! conn.set_now(Some(Chronon::from_ymd(1999, 12, 1).unwrap()));
//! conn.execute(
//!     "CREATE TABLE Prescription (patient CHAR(20), drug CHAR(20), valid Element)",
//!     &[],
//! ).unwrap();
//! conn.execute(
//!     "INSERT INTO Prescription VALUES ('Mr.Showbiz', 'Diabeta', '{[1999-10-01, NOW]}')",
//!     &[],
//! ).unwrap();
//! let mut rows = conn.query(
//!     "SELECT patient, length(valid) FROM Prescription WHERE overlaps(valid, \
//!      '{[1999-11-01, 1999-11-30]}'::Element)",
//!     &[],
//! ).unwrap();
//! assert!(rows.next());
//! assert_eq!(rows.get_string(0).unwrap(), "Mr.Showbiz");
//! ```

pub use minidb as db;
pub use tip_blade as blade;
pub use tip_browser as browser;
pub use tip_client as client;
pub use tip_core as core;
pub use tip_layered as layered;
pub use tip_workload as workload;
