//! # tip-bench — experiment harness shared by the criterion benches and
//! the `report` binary.
//!
//! Each experiment of `EXPERIMENTS.md` (E2–E8) has a `run_*`/setup
//! function here returning structured numbers, so the quick `report`
//! binary and the statistically careful criterion benches measure the
//! same code paths.

use minidb::{Database, Session};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tip_blade::{TipBlade, TipTypes};
use tip_core::{Chronon, NowContext, ResolvedPeriod};
use tip_layered::LayeredStratum;
use tip_workload::{generate, populate_layered, populate_tip, MedicalConfig};

/// The fixed experiment NOW: 1999-12-01, as in the paper-era demo.
pub fn experiment_now() -> Chronon {
    Chronon::from_ymd(1999, 12, 1).expect("valid date")
}

/// A TIP-enabled database loaded with the synthetic medical workload.
pub struct TipSetup {
    pub db: Arc<Database>,
    pub session: Session,
    pub types: TipTypes,
}

/// Builds and loads a TIP database for a configuration.
pub fn setup_tip(cfg: &MedicalConfig) -> TipSetup {
    let db = Database::new();
    db.install_blade(&TipBlade).expect("fresh db");
    let mut session = db.session();
    session.set_now_unix(Some(tip_blade::chronon_to_unix(experiment_now())));
    let types = db
        .with_catalog(TipTypes::from_catalog)
        .expect("blade installed");
    let med = generate(cfg);
    populate_tip(&session, types, &med).expect("populate");
    TipSetup { db, session, types }
}

/// Builds and loads the layered baseline with the *same* workload.
pub fn setup_layered(cfg: &MedicalConfig) -> LayeredStratum {
    let mut stratum = LayeredStratum::new();
    let med = generate(cfg);
    populate_layered(&mut stratum, &med, NowContext::fixed(experiment_now()))
        .expect("populate layered");
    stratum
}

/// Wall-clock timing of a closure, returning `(result, elapsed)`.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

/// Runs a closure repeatedly until ~`budget` elapses, returning the mean
/// per-iteration time (quick-and-dirty for the report binary; criterion
/// does this properly).
pub fn mean_time(budget: Duration, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let t0 = Instant::now();
    let mut iters = 0u32;
    loop {
        f();
        iters += 1;
        if (t0.elapsed() >= budget && iters >= 3) || iters >= 10_000 {
            break;
        }
    }
    t0.elapsed() / iters
}

// ----- E5/E7: the integrated and layered forms of the same operations -----

/// The TIP (integrated) SQL for the temporal self-join (paper Q3,
/// generalized to the synthetic workload).
pub const TIP_SELF_JOIN_SQL: &str = "SELECT p1.patient, intersect(p1.valid, p2.valid) \
    FROM Prescription p1, Prescription p2 \
    WHERE p1.drug = 'Diabeta' AND p2.drug = 'Aspirin' \
      AND p1.patient = p2.patient AND overlaps(p1.valid, p2.valid)";

/// The TIP (integrated) SQL for coalesced medication length (paper Q4).
pub const TIP_COALESCE_SQL: &str =
    "SELECT patient, length(group_union(valid)) FROM Prescription GROUP BY patient";

/// The TIP (integrated) SQL for an overlap window selection.
pub fn tip_window_sql(window: ResolvedPeriod) -> String {
    format!(
        "SELECT patient, drug, restrict(valid, '[{}, {}]'::Period) \
         FROM Prescription WHERE overlaps(valid, '{{[{}, {}]}}'::Element)",
        window.start(),
        window.end(),
        window.start(),
        window.end()
    )
}

/// Layered self-join predicate matching [`TIP_SELF_JOIN_SQL`].
pub const LAYERED_JOIN_PRED: &str =
    "a.patient = b.patient AND a.drug = 'Diabeta' AND b.drug = 'Aspirin'";

/// Runs the integrated self-join; returns `(result rows, elapsed)`.
pub fn run_tip_self_join(setup: &TipSetup) -> (usize, Duration) {
    let (r, d) = time(|| setup.session.query(TIP_SELF_JOIN_SQL).expect("self join"));
    (r.rows.len(), d)
}

/// Runs the layered self-join; returns `(result rows, elapsed)`.
pub fn run_layered_self_join(stratum: &mut LayeredStratum) -> (usize, Duration) {
    let (r, d) = time(|| {
        stratum
            .temporal_join(
                "Prescription",
                "Prescription",
                &["a.patient"],
                LAYERED_JOIN_PRED,
            )
            .expect("layered join")
    });
    (r.rows.len(), d)
}

/// Runs the integrated coalescing query; returns `(groups, elapsed)`.
pub fn run_tip_coalesce(setup: &TipSetup) -> (usize, Duration) {
    let (r, d) = time(|| setup.session.query(TIP_COALESCE_SQL).expect("coalesce"));
    (r.rows.len(), d)
}

/// Runs the layered coalescing; returns `(groups, elapsed)`.
pub fn run_layered_coalesce(stratum: &mut LayeredStratum) -> (usize, Duration) {
    let (r, d) = time(|| {
        stratum
            .coalesce("Prescription", "patient")
            .expect("coalesce")
    });
    (r.len(), d)
}

/// Workload sweep configurations used by E4/E5.
pub fn sweep_config(n_prescriptions: usize) -> MedicalConfig {
    MedicalConfig {
        n_prescriptions,
        n_patients: (n_prescriptions / 4).max(2),
        ..MedicalConfig::default()
    }
}

pub use tip_layered::Stats;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tip_and_layered_answers_agree_on_the_same_workload() {
        let cfg = sweep_config(120);
        let tip = setup_tip(&cfg);
        let mut layered = setup_layered(&cfg);

        // Self-join result *time sets* agree per patient.
        let tip_rows = tip.session.query(TIP_SELF_JOIN_SQL).unwrap();
        let lay_rows = layered
            .temporal_join(
                "Prescription",
                "Prescription",
                &["a.patient"],
                LAYERED_JOIN_PRED,
            )
            .unwrap();
        use std::collections::HashMap;
        let mut tip_by_patient: HashMap<String, tip_core::ResolvedElement> = HashMap::new();
        for row in &tip_rows.rows {
            let p = row[0].as_str().unwrap().to_owned();
            let e = tip_blade::as_element(&row[1]).unwrap();
            let r = e.resolve(experiment_now()).unwrap();
            let entry = tip_by_patient.entry(p).or_default();
            *entry = entry.union(&r);
        }
        let mut lay_raw: HashMap<String, Vec<tip_core::ResolvedPeriod>> = HashMap::new();
        for row in &lay_rows.rows {
            let p = row[0].as_str().unwrap().to_owned();
            let s = row[1].as_int().unwrap();
            let e = row[2].as_int().unwrap();
            lay_raw
                .entry(p)
                .or_default()
                .push(tip_layered::period_from_raw(s, e).unwrap());
        }
        let lay_by_patient: HashMap<String, tip_core::ResolvedElement> = lay_raw
            .into_iter()
            .map(|(k, v)| (k, tip_core::ResolvedElement::normalize(v)))
            .collect();
        assert_eq!(tip_by_patient.len(), lay_by_patient.len());
        for (p, e) in &tip_by_patient {
            assert_eq!(lay_by_patient.get(p), Some(e), "patient {p}");
        }

        // Coalesced lengths agree per patient.
        let tip_c = tip.session.query(TIP_COALESCE_SQL).unwrap();
        let lay_c = layered.coalesced_length("Prescription", "patient").unwrap();
        let lay_map: HashMap<String, i64> = lay_c
            .into_iter()
            .map(|(g, s)| (g.as_str().unwrap().to_owned(), s.seconds()))
            .collect();
        assert_eq!(tip_c.rows.len(), lay_map.len());
        for row in &tip_c.rows {
            let p = row[0].as_str().unwrap();
            let len = tip_blade::as_span(&row[1]).unwrap().seconds();
            assert_eq!(lay_map.get(p), Some(&len), "patient {p}");
        }
    }

    #[test]
    fn window_selection_agrees() {
        let cfg = sweep_config(80);
        let tip = setup_tip(&cfg);
        let mut layered = setup_layered(&cfg);
        let w = ResolvedPeriod::new(
            Chronon::from_ymd(1998, 1, 1).unwrap(),
            Chronon::from_ymd(1998, 12, 31).unwrap(),
        )
        .unwrap();
        let tip_rows = tip.session.query(&tip_window_sql(w)).unwrap();
        let lay_rows = layered
            .overlap_selection("Prescription", &["patient", "drug"], w)
            .unwrap();
        // Same total covered time across all tuples.
        let mut tip_total = 0i64;
        for row in &tip_rows.rows {
            let e = tip_blade::as_element(&row[2]).unwrap();
            tip_total += e.resolve(experiment_now()).unwrap().length().seconds();
        }
        let mut lay_total = 0i64;
        for row in &lay_rows.rows {
            let s = row[2].as_int().unwrap();
            let e = row[3].as_int().unwrap();
            lay_total += e - s + 1;
        }
        assert_eq!(tip_total, lay_total);
    }
}
