//! Group-commit load generator for the durability subsystem.
//!
//! ```text
//! walload [--threads N] [--statements M] [--sync MODE] [--data-dir DIR]
//! ```
//!
//! Opens a durable database (a scratch directory under the system temp
//! dir unless `--data-dir` is given) and hammers it with concurrent
//! single-row INSERT commits — the worst case for a naive
//! fsync-per-commit log and the best case for group commit. Reports
//! commit throughput, the fsync count, and the largest batch one fsync
//! covered, then reopens the directory to verify every acknowledged row
//! recovers.
//!
//! With `--sync every-commit` (the default) and two or more threads the
//! run *fails* (exit 1) unless fsyncs < commits: if batching never
//! merged two commits into one fsync, group commit is broken.

use minidb::{Database, DurabilityConfig, SyncMode};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: walload [--threads N] [--statements M] \
         [--sync off|every-commit|interval:MS] [--data-dir DIR]"
    );
    std::process::exit(2);
}

fn main() {
    let mut threads = 8usize;
    let mut statements = 250usize;
    let mut sync_mode = SyncMode::EveryCommit;
    let mut data_dir: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let num = |a: Option<String>| a.and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
        match arg.as_str() {
            "--threads" => threads = num(args.next()),
            "--statements" => statements = num(args.next()),
            "--sync" => {
                sync_mode = args
                    .next()
                    .and_then(|v| SyncMode::parse(&v))
                    .unwrap_or_else(|| usage())
            }
            "--data-dir" => data_dir = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    let dir = match &data_dir {
        Some(d) => std::path::PathBuf::from(d),
        None => std::env::temp_dir().join(format!("walload-{}", std::process::id())),
    };
    if data_dir.is_none() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    let cfg = DurabilityConfig {
        sync_mode,
        ..DurabilityConfig::default()
    };

    let (db, report) = Database::open(&dir, cfg.clone()).expect("open data dir");
    eprintln!("walload: {} ({})", dir.display(), report.summary());
    db.session()
        .execute("CREATE TABLE load (id INT, payload CHAR(64))")
        .expect("create table");

    eprintln!("walload: {threads} threads x {statements} commits, sync={sync_mode:?}");
    let started = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                let s = db.session();
                for i in 0..statements {
                    let id = (t * statements + i) as i64;
                    s.execute(&format!(
                        "INSERT INTO load VALUES ({id}, 'sixty-four-bytes-of-payload-data')"
                    ))
                    .expect("insert commit");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker panicked");
    }
    let elapsed = started.elapsed();

    let w = db.wal_stats();
    let commits = (threads * statements) as u64;
    println!(
        "total {commits} commits in {:.3}s -> {:.1} commits/s",
        elapsed.as_secs_f64(),
        commits as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    println!(
        "wal: {} appends, {} bytes, {} fsyncs, max group-commit batch {}",
        w.appends, w.bytes, w.fsyncs, w.group_commit_batch
    );
    if w.fsyncs > 0 {
        println!(
            "commits per fsync: {:.1}",
            w.commits as f64 / w.fsyncs as f64
        );
    }

    db.close().expect("clean close");
    let (db, _) = Database::open(&dir, cfg).expect("reopen data dir");
    let recovered = db
        .session()
        .query("SELECT COUNT(*) FROM load")
        .expect("count recovered rows");
    println!("recovered rows: {}", db.format_result(&recovered));
    db.close().expect("clean close after verify");
    if data_dir.is_none() {
        let _ = std::fs::remove_dir_all(&dir);
    }

    // The whole point of group commit: under concurrency, far fewer
    // fsyncs than commits.
    if sync_mode == SyncMode::EveryCommit && threads >= 2 {
        if w.fsyncs == 0 || w.fsyncs >= w.commits {
            eprintln!(
                "walload: FAIL — {} fsyncs for {} commits (no batching)",
                w.fsyncs, w.commits
            );
            std::process::exit(1);
        }
        if w.group_commit_batch < 2 {
            eprintln!("walload: FAIL — no fsync ever covered two commits");
            std::process::exit(1);
        }
    }
}
