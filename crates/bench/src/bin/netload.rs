//! Loopback load generator for `tip-server`.
//!
//! ```text
//! netload [--addr HOST:PORT] [--threads N] [--statements M] [--rows K]
//! ```
//!
//! Without `--addr` it spins up an in-process server over the synthetic
//! medical database and hammers it over 127.0.0.1 — a self-contained
//! smoke benchmark of the whole wire stack (encode, TCP, decode,
//! execute, row streaming). With `--addr` it targets an already-running
//! `tip-server` instead.
//!
//! Reports total throughput and a log2 latency histogram, mirroring the
//! engine's own `SHOW STATS` bucket scheme.

use minidb::Database;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;
use tip_blade::{TipBlade, TipTypes};
use tip_client::{Connection, HostValue};
use tip_core::Chronon;
use tip_server::{Server, ServerConfig};

const BUCKETS: usize = 22;

#[derive(Default)]
struct Histogram {
    buckets: [u64; BUCKETS],
}

impl Histogram {
    fn record(&mut self, micros: u64) {
        let bucket = (63 - micros.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket] += 1;
    }

    fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

fn usage() -> ! {
    eprintln!("usage: netload [--addr HOST:PORT] [--threads N] [--statements M] [--rows K]");
    std::process::exit(2);
}

fn main() {
    let mut addr: Option<String> = None;
    let mut threads = 8usize;
    let mut statements = 200usize;
    let mut rows = 200usize;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let num = |a: Option<String>| a.and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => addr = Some(args.next().unwrap_or_else(|| usage())),
            "--threads" => threads = num(args.next()),
            "--statements" => statements = num(args.next()),
            "--rows" => rows = num(args.next()),
            _ => usage(),
        }
    }

    // Self-contained mode: serve the synthetic medical database locally.
    let _local_server: Option<Server>;
    let target = match addr {
        Some(a) => {
            _local_server = None;
            a
        }
        None => {
            let db = Database::new();
            db.install_blade(&TipBlade).expect("fresh database");
            let session = db.session();
            let types = db.with_catalog(TipTypes::from_catalog).expect("bladed");
            let cfg = tip_workload::MedicalConfig {
                n_prescriptions: rows,
                ..Default::default()
            };
            let med = tip_workload::generate(&cfg);
            tip_workload::populate_tip(&session, types, &med).expect("populate");
            let server = Server::bind(
                "127.0.0.1:0",
                &db,
                ServerConfig {
                    max_connections: threads + 4,
                    ..Default::default()
                },
            )
            .expect("bind loopback server");
            let a = server.local_addr().to_string();
            eprintln!("netload: serving {rows} prescriptions on {a}");
            _local_server = Some(server);
            a
        }
    };

    eprintln!("netload: {threads} threads x {statements} statements against {target}");
    let total_hist = Arc::new(Mutex::new(Histogram::default()));
    let started = Instant::now();

    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let target = target.clone();
            let total_hist = Arc::clone(&total_hist);
            thread::spawn(move || {
                let conn = Connection::connect(target.as_str()).expect("connect");
                // Each thread browses under its own NOW to exercise the
                // per-connection session state.
                let now = Chronon::from_ymd(1994 + (t % 8) as i32, 6, 1).expect("valid date");
                conn.set_now(Some(now));

                let mut hist = Histogram::default();
                let mut rows_seen = 0usize;
                for i in 0..statements {
                    let begin = Instant::now();
                    let n = match i % 3 {
                        0 => conn
                            .query(
                                "SELECT patient, drug, dosage FROM Prescription \
                                 WHERE dosage >= :d",
                                &[("d", HostValue::Int((i % 5) as i64))],
                            )
                            .expect("query")
                            .len(),
                        1 => conn
                            .query(
                                "SELECT patient, total_seconds(length(valid)) FROM Prescription",
                                &[],
                            )
                            .expect("query")
                            .len(),
                        _ => conn
                            .query("SELECT doctor, valid FROM Prescription", &[])
                            .expect("query")
                            .len(),
                    };
                    rows_seen += n;
                    hist.record(begin.elapsed().as_micros() as u64);
                }
                total_hist.lock().expect("histogram").merge(&hist);
                rows_seen
            })
        })
        .collect();

    let mut rows_seen = 0usize;
    for w in workers {
        rows_seen += w.join().expect("worker panicked");
    }
    let elapsed = started.elapsed();

    let total = (threads * statements) as f64;
    println!(
        "total {} statements ({rows_seen} rows) in {:.3}s -> {:.1} stmt/s",
        threads * statements,
        elapsed.as_secs_f64(),
        total / elapsed.as_secs_f64().max(1e-9),
    );
    println!("latency histogram (log2 microseconds):");
    let hist = total_hist.lock().expect("histogram");
    let peak = hist.buckets.iter().copied().max().unwrap_or(0).max(1);
    for (i, count) in hist.buckets.iter().enumerate() {
        if *count == 0 {
            continue;
        }
        let label = if i == BUCKETS - 1 {
            format!(">= 2^{i} us")
        } else {
            format!("[2^{i}, 2^{} us)", i + 1)
        };
        let stars = ((count * 40) / peak).max(1);
        println!("  {label:>16} {:<40} {count}", "*".repeat(stars as usize));
    }
}
