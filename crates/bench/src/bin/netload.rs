//! Loopback load generator for `tip-server`.
//!
//! ```text
//! netload [--addr HOST:PORT] [--threads N] [--statements M] [--rows K]
//!         [--contend] [--writers W] [--prepared] [--replicas R]
//! ```
//!
//! Without `--addr` it spins up an in-process server over the synthetic
//! medical database and hammers it over 127.0.0.1 — a self-contained
//! smoke benchmark of the whole wire stack (encode, TCP, decode,
//! execute, row streaming). With `--addr` it targets an already-running
//! `tip-server` instead.
//!
//! Reports total throughput and a log2 latency histogram, mirroring the
//! engine's own `SHOW STATS` bucket scheme.
//!
//! `--contend` switches to the lock-contention experiment: readers scan
//! one table while `--writers` background connections hammer **the same
//! table** with UPDATEs. Under MVCC snapshot reads the reader latency
//! profile should barely move versus the no-writer baseline (the tool
//! prints both and their p50 ratio); under reader/writer table locks —
//! let alone a global storage lock — it degrades with every writer
//! added. (The experiment predates MVCC: it originally wrote to a
//! different table, proving only table-granular locking.)
//!
//! `--prepared` switches to the plan-cache experiment: the same
//! point-SELECT workload is run twice, first as ad-hoc SQL with a
//! unique statement text per execution (every statement pays the full
//! front end), then as one prepared statement executed with fresh
//! parameters over protocol v3. The tool prints both latency profiles,
//! the p50 prepared/unprepared ratio, and the server's plan-cache hit
//! ratio during the prepared phase.
//!
//! `--replicas R` switches to the replication fan-out experiment: a
//! durable loopback primary plus `R` streaming read replicas. The same
//! scan workload runs twice — every read on the primary (baseline),
//! then fanned across the replica set through the client's replicated
//! transport — and the tool prints both throughputs, their ratio, and
//! each node's served-SELECT counter. It **exits nonzero unless every
//! replica actually served reads**, so CI can use it as a smoke test.

use minidb::{Database, DurabilityConfig, SyncMode};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};
use tip_blade::{TipBlade, TipTypes};
use tip_client::{Connection, HostValue};
use tip_core::Chronon;
use tip_server::repl::ReplicationClient;
use tip_server::{Server, ServerConfig};

const BUCKETS: usize = 22;

#[derive(Default)]
struct Histogram {
    buckets: [u64; BUCKETS],
    samples: Vec<u64>,
}

impl Histogram {
    fn record(&mut self, micros: u64) {
        let bucket = (63 - micros.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.samples.push(micros);
    }

    fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.samples.extend_from_slice(&other.samples);
    }

    /// Exact median latency in microseconds (the log2 buckets are for
    /// the printed distribution; ratios need finer grain than 2x).
    fn p50_micros(&self) -> u64 {
        self.percentile(0.50)
    }

    /// Exact quantile over every recorded sample (nearest-rank): the
    /// tail metrics the 10k-connection run is judged on.
    fn percentile(&self, p: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut s = self.samples.clone();
        s.sort_unstable();
        let idx = ((s.len() as f64 - 1.0) * p).round() as usize;
        s[idx.min(s.len() - 1)]
    }

    fn print(&self, indent: &str) {
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (i, count) in self.buckets.iter().enumerate() {
            if *count == 0 {
                continue;
            }
            let label = if i == BUCKETS - 1 {
                format!(">= 2^{i} us")
            } else {
                format!("[2^{i}, 2^{} us)", i + 1)
            };
            let stars = ((count * 40) / peak).max(1);
            println!(
                "{indent}{label:>16} {:<40} {count}",
                "*".repeat(stars as usize)
            );
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: netload [--addr HOST:PORT] [--threads N] [--statements M] [--rows K] \
         [--contend] [--writers W] [--prepared] [--replicas R] \
         [--connections N] [--pipeline DEPTH] [--json PATH]"
    );
    std::process::exit(2);
}

/// The plan-cache experiment: identical point-SELECT work, ad-hoc text
/// vs prepare-once/execute-many, plus the server's cache hit ratio.
fn run_prepared(target: &str, threads: usize, statements: usize, rows: usize) {
    let setup = Connection::connect(target).expect("connect setup");
    for sql in [
        "DROP TABLE IF EXISTS prep_bench",
        "CREATE TABLE prep_bench (id INT, x INT)",
    ] {
        setup.execute(sql, &[]).expect("prepared-mode DDL");
    }
    // Keep the key space larger than the plan-cache LRU so the ad-hoc
    // phase cannot win by accident: every unique text must plan fresh.
    let keys = rows.max(256);
    for i in 0..keys {
        setup
            .execute(
                "INSERT INTO prep_bench VALUES (:i, :v)",
                &[
                    ("i", HostValue::Int(i as i64)),
                    ("v", HostValue::Int((i * 3) as i64)),
                ],
            )
            .expect("populate prep_bench");
    }
    setup
        .execute("CREATE INDEX ix_prep_id ON prep_bench(id)", &[])
        .expect("index prep_bench");

    let phase = |prepared: bool| -> Histogram {
        let merged = Arc::new(Mutex::new(Histogram::default()));
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let target = target.to_owned();
                let merged = Arc::clone(&merged);
                thread::spawn(move || {
                    let conn = Connection::connect(target.as_str()).expect("connect worker");
                    let mut hist = Histogram::default();
                    if prepared {
                        let mut stmt = conn.prepare("SELECT x FROM prep_bench WHERE id = :id");
                        assert!(
                            stmt.is_server_prepared(),
                            "--prepared needs a protocol v3 server"
                        );
                        for i in 0..statements {
                            let id = ((i * threads + t) % keys) as i64;
                            stmt = stmt.bind("id", HostValue::Int(id));
                            let begin = Instant::now();
                            let n = stmt.query().expect("prepared query").len();
                            hist.record(begin.elapsed().as_micros() as u64);
                            assert_eq!(n, 1);
                        }
                    } else {
                        for i in 0..statements {
                            let id = (i * threads + t) % keys;
                            let sql = format!("SELECT x FROM prep_bench WHERE id = {id}");
                            let begin = Instant::now();
                            let n = conn.query(&sql, &[]).expect("ad-hoc query").len();
                            hist.record(begin.elapsed().as_micros() as u64);
                            assert_eq!(n, 1);
                        }
                    }
                    merged.lock().expect("histogram").merge(&hist);
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker panicked");
        }
        let mut out = Histogram::default();
        out.merge(&merged.lock().expect("histogram"));
        out
    };

    eprintln!("netload: prepared phase 1 — {threads} threads, ad-hoc SQL (unique text)");
    let adhoc = phase(false);

    let before = setup.server_metrics().expect("server metrics");
    eprintln!("netload: prepared phase 2 — {threads} threads, prepared statements");
    let prepared = phase(true);
    let after = setup.server_metrics().expect("server metrics");

    println!("ad-hoc SQL, p50 {} us:", adhoc.p50_micros());
    adhoc.print("  ");
    println!("prepared, p50 {} us:", prepared.p50_micros());
    prepared.print("  ");

    let hits = after.plan_cache_hits - before.plan_cache_hits;
    let misses = after.plan_cache_misses - before.plan_cache_misses;
    let ratio = hits as f64 / ((hits + misses).max(1)) as f64;
    println!(
        "plan cache during prepared phase: {hits} hits / {misses} misses \
         -> hit ratio {ratio:.3}"
    );
    let speedup = adhoc.p50_micros().max(1) as f64 / prepared.p50_micros().max(1) as f64;
    println!("p50 prepared speedup over ad-hoc: {speedup:.2}x");
    if hits == 0 {
        eprintln!("netload: WARNING — prepared phase never hit the plan cache");
        std::process::exit(1);
    }
}

/// Readers-only pass over `contend_cold`: every thread runs `statements`
/// SELECTs and the merged latency histogram comes back.
fn reader_pass(target: &str, threads: usize, statements: usize) -> Histogram {
    let merged = Arc::new(Mutex::new(Histogram::default()));
    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let target = target.to_owned();
            let merged = Arc::clone(&merged);
            thread::spawn(move || {
                let conn = Connection::connect(target.as_str()).expect("connect reader");
                let mut hist = Histogram::default();
                for i in 0..statements {
                    let begin = Instant::now();
                    conn.query(
                        "SELECT COUNT(*) FROM contend_cold WHERE v >= :d",
                        &[("d", HostValue::Int((i % 7) as i64))],
                    )
                    .expect("reader query");
                    hist.record(begin.elapsed().as_micros() as u64);
                }
                merged.lock().expect("reader histogram").merge(&hist);
            })
        })
        .collect();
    for w in workers {
        w.join().expect("reader panicked");
    }
    Arc::try_unwrap(merged)
        .map(|m| m.into_inner().expect("reader histogram"))
        .unwrap_or_else(|m| {
            let mut out = Histogram::default();
            out.merge(&m.lock().expect("reader histogram"));
            out
        })
}

/// Runs the reader workload while `writers` connections hammer `table`
/// with UPDATEs. Returns the merged reader histogram, the writer
/// histogram, and the number of writes that landed.
fn contended_pass(
    target: &str,
    threads: usize,
    writers: usize,
    statements: usize,
    rows: usize,
    table: &'static str,
) -> (Histogram, Histogram, i64) {
    let stop = Arc::new(AtomicBool::new(false));
    let writer_handles: Vec<_> = (0..writers)
        .map(|w| {
            let target = target.to_owned();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let conn = Connection::connect(target.as_str()).expect("connect writer");
                let sql = format!("UPDATE {table} SET v = :v WHERE id = :i");
                let mut hist = Histogram::default();
                let mut i = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    let begin = Instant::now();
                    conn.execute(
                        &sql,
                        &[
                            ("v", HostValue::Int((w as i64 * 1_000_000 + i) % 16)),
                            ("i", HostValue::Int(i % rows.max(1) as i64)),
                        ],
                    )
                    .expect("writer update");
                    hist.record(begin.elapsed().as_micros() as u64);
                    i += 1;
                }
                (hist, i)
            })
        })
        .collect();
    let readers = reader_pass(target, threads, statements);
    stop.store(true, Ordering::Relaxed);
    let mut writer_hist = Histogram::default();
    let mut writes = 0i64;
    for h in writer_handles {
        let (hist, n) = h.join().expect("writer panicked");
        writer_hist.merge(&hist);
        writes += n;
    }
    (readers, writer_hist, writes)
}

/// The contention experiment, three phases of the same reader workload:
/// no writers (baseline), writers updating a table the readers never
/// touch (control: any slowdown is pure CPU/scheduler cost, no lock can
/// be involved), and writers updating **the table the readers scan**.
/// MVCC snapshot reads make the same-table phase cost what the control
/// costs; reader/writer table locks would not. UPDATEs (not INSERTs)
/// keep the table size fixed so every phase compares scan cost like for
/// like.
fn run_contention(target: &str, threads: usize, writers: usize, statements: usize, rows: usize) {
    let setup = Connection::connect(target).expect("connect setup");
    for sql in [
        "DROP TABLE IF EXISTS contend_cold",
        "DROP TABLE IF EXISTS contend_other",
        "CREATE TABLE contend_cold (id INT, v INT)",
        "CREATE TABLE contend_other (id INT, v INT)",
    ] {
        setup.execute(sql, &[]).expect("contention DDL");
    }
    for table in ["contend_cold", "contend_other"] {
        let insert = format!("INSERT INTO {table} VALUES (:i, :v)");
        for i in 0..rows {
            setup
                .execute(
                    &insert,
                    &[
                        ("i", HostValue::Int(i as i64)),
                        ("v", HostValue::Int((i % 16) as i64)),
                    ],
                )
                .expect("populate contention tables");
        }
    }

    eprintln!("netload: contention phase 1 — {threads} readers, no writers");
    let baseline = reader_pass(target, threads, statements);

    eprintln!(
        "netload: contention phase 2 — {writers} writer(s) on a table the readers never touch"
    );
    let (control, _, control_writes) =
        contended_pass(target, threads, writers, statements, rows, "contend_other");

    eprintln!("netload: contention phase 3 — {writers} writer(s) on the readers' own table");
    let (contended, writer_hist, writes) =
        contended_pass(target, threads, writers, statements, rows, "contend_cold");

    println!(
        "reader baseline (no writers), p50 {} us:",
        baseline.p50_micros()
    );
    baseline.print("  ");
    println!(
        "reader vs writers on another table ({control_writes} updates), p50 {} us:",
        control.p50_micros()
    );
    control.print("  ");
    println!(
        "reader vs writers on the same table ({writes} updates), p50 {} us:",
        contended.p50_micros()
    );
    contended.print("  ");
    println!("same-table writer p50 {} us:", writer_hist.p50_micros());
    writer_hist.print("  ");

    let base = baseline.p50_micros().max(1) as f64;
    let control_ratio = control.p50_micros().max(1) as f64 / base;
    let same_ratio = contended.p50_micros().max(1) as f64 / base;
    let lock_cost = same_ratio / control_ratio.max(f64::EPSILON);
    println!("reader p50 ratio, other-table writers / baseline: {control_ratio:.2}x (CPU cost of the writer load)");
    println!("reader p50 ratio, same-table  writers / baseline: {same_ratio:.2}x");
    println!(
        "same-table / other-table: {lock_cost:.2}x \
         (MVCC snapshot reads should keep this near 1x — writers never block readers)"
    );
}

/// One timed reader pass over `fan_bench`. With an empty replica list
/// every statement goes straight to the primary; otherwise each thread
/// opens a replicated connection and its SELECTs fan round-robin across
/// the replica set. Every thread connects and runs a handful of untimed
/// warmup statements first, then all threads cross a barrier together —
/// the clock measures steady-state statement service, not TCP dials and
/// handshakes (the same methodology for both passes, so the ratio
/// compares like with like). Returns the merged histogram and stmt/s.
fn fan_pass(
    primary: &str,
    replicas: &[String],
    threads: usize,
    statements: usize,
) -> (Histogram, f64) {
    let merged = Arc::new(Mutex::new(Histogram::default()));
    let replicas: Arc<Vec<String>> = Arc::new(replicas.to_vec());
    let gate = Arc::new(std::sync::Barrier::new(threads + 1));
    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let primary = primary.to_owned();
            let replicas = Arc::clone(&replicas);
            let merged = Arc::clone(&merged);
            let gate = Arc::clone(&gate);
            thread::spawn(move || {
                let conn = if replicas.is_empty() {
                    Connection::connect(primary.as_str()).expect("connect primary")
                } else {
                    let refs: Vec<&str> = replicas.iter().map(String::as_str).collect();
                    Connection::connect_replicated(primary.as_str(), &refs)
                        .expect("connect replicated")
                };
                let run = |hist: Option<&mut Histogram>, count: usize| {
                    let mut hist = hist;
                    for i in 0..count {
                        let begin = Instant::now();
                        let n = conn
                            .query(
                                "SELECT COUNT(*) FROM fan_bench WHERE v >= :d",
                                &[("d", HostValue::Int((i % 7) as i64))],
                            )
                            .expect("fan query")
                            .len();
                        if let Some(h) = hist.as_deref_mut() {
                            h.record(begin.elapsed().as_micros() as u64);
                        }
                        assert_eq!(n, 1);
                    }
                };
                // Warm every lazily-dialed connection in the fan before
                // the clock starts (one statement per replica endpoint).
                run(None, replicas.len().max(1) * 2);
                gate.wait();
                let mut hist = Histogram::default();
                run(Some(&mut hist), statements);
                merged.lock().expect("fan histogram").merge(&hist);
            })
        })
        .collect();
    gate.wait();
    let started = Instant::now();
    for w in workers {
        w.join().expect("fan reader panicked");
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let mut out = Histogram::default();
    out.merge(&merged.lock().expect("fan histogram"));
    (out, (threads * statements) as f64 / elapsed)
}

/// The replication fan-out experiment: a durable loopback primary plus
/// `n` streaming replicas, all in-process. The same reader workload runs
/// twice — primary-only, then fanned across the replicas through the
/// client's replicated transport — and each node's served-SELECT counter
/// proves where the reads actually landed. Exits nonzero unless every
/// replica served reads, so CI can lean on it as a smoke test.
fn run_replicas(threads: usize, statements: usize, rows: usize, n: usize) {
    // Replication requires a durable primary (the stream is its WAL);
    // sync is off because this benchmark measures reads, not fsync.
    let dir = std::env::temp_dir().join(format!("tip-netload-repl-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = DurabilityConfig {
        sync_mode: SyncMode::Off,
        ..DurabilityConfig::default()
    };
    let (pdb, _) =
        Database::open_with(&dir, cfg, |db| db.install_blade(&TipBlade)).expect("open primary");
    let pserver = Server::bind(
        "127.0.0.1:0",
        &pdb,
        ServerConfig {
            max_connections: threads + n + 8,
            ..Default::default()
        },
    )
    .expect("bind primary");
    let paddr = pserver.local_addr().to_string();

    // Populate before the replicas subscribe so the load is one
    // snapshot catch-up, not a commit-by-commit ack conversation.
    let setup = Connection::connect(&paddr).expect("connect setup");
    setup
        .execute("CREATE TABLE fan_bench (id INT, v INT)", &[])
        .expect("fan_bench DDL");
    for i in 0..rows {
        setup
            .execute(
                "INSERT INTO fan_bench VALUES (:i, :v)",
                &[
                    ("i", HostValue::Int(i as i64)),
                    ("v", HostValue::Int((i % 16) as i64)),
                ],
            )
            .expect("populate fan_bench");
    }

    let mut nodes: Vec<(Arc<Database>, Server, ReplicationClient)> = Vec::new();
    let mut raddrs: Vec<String> = Vec::new();
    for _ in 0..n {
        let rdb = Database::new();
        rdb.install_blade(&TipBlade).expect("replica blade");
        rdb.set_read_only(&paddr);
        let rserver = Server::bind(
            "127.0.0.1:0",
            &rdb,
            ServerConfig {
                max_connections: threads + 8,
                ..Default::default()
            },
        )
        .expect("bind replica");
        let client = ReplicationClient::start(&rdb, &paddr);
        raddrs.push(rserver.local_addr().to_string());
        nodes.push((rdb, rserver, client));
    }
    let target = pdb.wal_progress().expect("durable primary").seq;
    let deadline = Instant::now() + Duration::from_secs(60);
    for (rdb, _, _) in &nodes {
        while rdb.repl_stats().last_seq() < target {
            assert!(
                Instant::now() < deadline,
                "replica stalled at seq {} (want {target})",
                rdb.repl_stats().last_seq()
            );
            thread::sleep(Duration::from_millis(10));
        }
    }
    eprintln!(
        "netload: primary {paddr} + {n} replica(s) caught up to seq {target}; \
         {threads} threads x {statements} statements per pass"
    );

    eprintln!("netload: replicas phase 1 — every read on the primary");
    let before_primary = pserver.metrics().selects;
    let (base_hist, base_rate) = fan_pass(&paddr, &[], threads, statements);
    let primary_served = pserver.metrics().selects - before_primary;

    eprintln!("netload: replicas phase 2 — reads fanned across the replica set");
    let before: Vec<u64> = nodes.iter().map(|(_, s, _)| s.metrics().selects).collect();
    let (fan_hist, fan_rate) = fan_pass(&paddr, &raddrs, threads, statements);
    let served: Vec<u64> = nodes
        .iter()
        .zip(&before)
        .map(|((_, s, _), b)| s.metrics().selects - b)
        .collect();

    println!(
        "primary-only baseline: {base_rate:.1} stmt/s, p50 {} us:",
        base_hist.p50_micros()
    );
    base_hist.print("  ");
    println!(
        "fanned across {n} replica(s): {fan_rate:.1} stmt/s, p50 {} us:",
        fan_hist.p50_micros()
    );
    fan_hist.print("  ");
    println!("baseline SELECTs served by the primary: {primary_served}");
    for (i, s) in served.iter().enumerate() {
        println!("fanned SELECTs served by replica {i} ({}): {s}", raddrs[i]);
    }
    let ratio = fan_rate / base_rate.max(1e-9);
    let p50_ratio = base_hist.p50_micros().max(1) as f64 / fan_hist.p50_micros().max(1) as f64;
    println!(
        "aggregate read throughput, fanned / primary-only: {ratio:.2}x \
         (p50 speedup {p50_ratio:.2}x)"
    );
    // Fan-out multiplies throughput only when the nodes have CPUs to
    // themselves; with every node sharing one in-process core the ratio
    // honestly flatlines at ~1x. Say which regime this run measured.
    let cores = thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "host parallelism: {cores} core(s) for {} in-process node(s) — \
         fan-out scales with cores per node, so interpret the ratio accordingly",
        n + 1
    );

    let starved = served.contains(&0);
    if starved {
        eprintln!("netload: FAILED — at least one replica served zero reads");
    }
    drop(nodes);
    drop(pserver);
    let _ = pdb.close();
    let _ = std::fs::remove_dir_all(&dir);
    if starved {
        std::process::exit(1);
    }
}

/// Writes the machine-readable benchmark record. Values are already
/// JSON-rendered (numbers and quoted strings); no serde in the tree.
fn write_bench_json(path: &str, fields: &[(&str, String)]) {
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    let doc = format!("{{\n{}\n}}\n", body.join(",\n"));
    std::fs::write(path, &doc).expect("write bench json");
    eprintln!("netload: wrote {path}");
}

/// The connection-scaling experiment: one multiplexed driver holds N
/// concurrent connections against an in-process server and runs a
/// closed loop of indexed point SELECTs on each. The driver rides the
/// same readiness [`Poller`] the server's reactor uses, so neither side
/// needs a thread per connection. Exits nonzero on any error, any
/// unexpected BUSY below the admission cap, or a stalled run.
fn run_connections(
    external: Option<String>,
    n: usize,
    statements: usize,
    rows: usize,
    json_path: &str,
) {
    use std::io::{Read, Write};
    use tip_client::protocol::{self as proto, req, resp, FrameAccumulator, Hello};
    use tip_server::net::{raise_nofile_limit, Poller, EV_READ, EV_WRITE};

    // Self-contained runs hold both socket ends in this process (2 fds
    // per connection); against an external server only the client end.
    let per_conn = if external.is_some() { 1 } else { 2 };
    let want_fds = (per_conn * n + 512) as u64;
    let limit = raise_nofile_limit(want_fds);
    if limit < (per_conn * n + 64) as u64 {
        eprintln!(
            "netload: WARNING — fd limit {limit} (< {want_fds}) may be too \
             low for {n} connections"
        );
    }

    let local_server: Option<Server> = match &external {
        Some(_) => None,
        None => {
            let db = Database::new();
            db.install_blade(&TipBlade).expect("fresh database");
            Some(
                Server::bind(
                    "127.0.0.1:0",
                    &db,
                    ServerConfig {
                        max_connections: n + 16,
                        ..Default::default()
                    },
                )
                .expect("bind loopback server"),
            )
        }
    };
    let addr: std::net::SocketAddr = match &external {
        Some(a) => {
            use std::net::ToSocketAddrs;
            a.to_socket_addrs()
                .expect("resolve --addr")
                .next()
                .expect("resolve --addr")
        }
        None => local_server.as_ref().expect("local server").local_addr(),
    };

    let setup = Connection::connect(addr).expect("connect setup");
    let _ = setup.execute("DROP TABLE IF EXISTS conn_bench", &[]);
    setup
        .execute("CREATE TABLE conn_bench (id INT, x INT)", &[])
        .expect("conn_bench DDL");
    let keys = rows.max(64);
    for i in 0..keys {
        setup
            .execute(
                "INSERT INTO conn_bench VALUES (:i, :v)",
                &[
                    ("i", HostValue::Int(i as i64)),
                    ("v", HostValue::Int((i * 3) as i64)),
                ],
            )
            .expect("populate conn_bench");
    }
    setup
        .execute("CREATE INDEX ix_conn_id ON conn_bench(id)", &[])
        .expect("index conn_bench");

    struct CState {
        stream: std::net::TcpStream,
        acc: FrameAccumulator,
        out: Vec<u8>,
        sent: usize,
        interest: u32,
        ready: bool,
        done: usize,
        begun: Option<Instant>,
        finished: bool,
    }

    let display = |_: &minidb::Value| String::new();
    let mut poller = Poller::new().expect("poller");
    let mut conns: Vec<CState> = Vec::with_capacity(n);
    let mut events = Vec::with_capacity(1024);
    let mut hist = Histogram::default();
    let mut errors = 0u64;
    let mut busy = 0u64;
    let mut finished_conns = 0usize;
    let mut ready_conns = 0usize;
    let mut scratch = vec![0u8; 64 * 1024];
    // First few error causes, for diagnosing a failed run.
    let mut samples: Vec<String> = Vec::new();

    // Everything the event loop does to one connection on readiness.
    // Returns true while the connection stays open.
    #[allow(clippy::too_many_arguments)]
    fn pump_conn(
        cs: &mut CState,
        token: u64,
        readable: bool,
        writable: bool,
        hangup: bool,
        poller: &mut Poller,
        scratch: &mut [u8],
        hist: &mut Histogram,
        errors: &mut u64,
        busy: &mut u64,
        statements: usize,
        keys: usize,
        display: &dyn Fn(&minidb::Value) -> String,
        measuring: bool,
        samples: &mut Vec<String>,
    ) -> bool {
        use std::os::unix::io::AsRawFd;
        if cs.finished {
            return false;
        }
        let fail = |cs: &mut CState,
                    errors: &mut u64,
                    poller: &mut Poller,
                    samples: &mut Vec<String>,
                    cause: &str| {
            *errors += 1;
            if samples.len() < 8 {
                samples.push(format!("conn {token}: {cause}"));
            }
            cs.finished = true;
            let _ = poller.deregister(cs.stream.as_raw_fd());
            false
        };
        if writable && cs.sent < cs.out.len() {
            loop {
                match (&cs.stream).write(&cs.out[cs.sent..]) {
                    Ok(0) => return fail(cs, errors, poller, samples, "write returned 0"),
                    Ok(k) => {
                        cs.sent += k;
                        if cs.sent == cs.out.len() {
                            cs.out.clear();
                            cs.sent = 0;
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return fail(cs, errors, poller, samples, &format!("write: {e}")),
                }
            }
            let want = if cs.out.is_empty() {
                EV_READ
            } else {
                EV_READ | EV_WRITE
            };
            if want != cs.interest {
                cs.interest = want;
                let _ = poller.modify(cs.stream.as_raw_fd(), token, want);
            }
        }
        if readable || hangup {
            // EOF must not short-circuit frame parsing: a BUSY reject
            // followed by close lands as data + EOF in one readiness
            // event, and the BUSY frame still has to be credited.
            let mut eof = false;
            loop {
                match (&cs.stream).read(scratch) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(k) => cs.acc.extend(&scratch[..k]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return fail(cs, errors, poller, samples, &format!("read: {e}")),
                }
            }
            loop {
                match cs.acc.next_frame() {
                    Ok(None) => break,
                    Err(e) => return fail(cs, errors, poller, samples, &format!("frame: {e}")),
                    Ok(Some((tag, body))) => match tag {
                        resp::HELLO_OK => cs.ready = true,
                        resp::BUSY => {
                            *busy += 1;
                            cs.finished = true;
                            let _ = poller.deregister(cs.stream.as_raw_fd());
                            return false;
                        }
                        resp::ROWS_HEADER | resp::ROW_BATCH => {}
                        resp::ROWS_DONE | resp::ERROR => {
                            if tag == resp::ERROR {
                                *errors += 1;
                                if samples.len() < 8 {
                                    let msg = proto::decode_error(&body)
                                        .map(|e| e.to_string())
                                        .unwrap_or_else(|_| "undecodable ERROR".into());
                                    samples.push(format!("conn {token}: statement: {msg}"));
                                }
                            }
                            if measuring {
                                if let Some(t0) = cs.begun.take() {
                                    hist.record(t0.elapsed().as_micros() as u64);
                                }
                                cs.done += 1;
                                if cs.done < statements {
                                    send_stmt(cs, token, poller, keys, display);
                                } else {
                                    let _ = proto::write_frame(&mut cs.out, req::BYE, &[]);
                                    flush_now(cs, token, poller);
                                    cs.finished = true;
                                    let _ = poller.deregister(cs.stream.as_raw_fd());
                                    let _ = cs.stream.shutdown(std::net::Shutdown::Both);
                                    return false;
                                }
                            }
                        }
                        _ => {
                            return fail(
                                cs,
                                errors,
                                poller,
                                samples,
                                &format!("unexpected tag {tag}"),
                            )
                        }
                    },
                }
            }
            if eof {
                // Early EOF is only clean after our BYE went out.
                return fail(cs, errors, poller, samples, "unexpected EOF");
            }
        }
        true
    }

    fn send_stmt(
        cs: &mut CState,
        token: u64,
        poller: &mut Poller,
        keys: usize,
        display: &dyn Fn(&minidb::Value) -> String,
    ) {
        let id = ((token as usize).wrapping_mul(31).wrapping_add(cs.done * 7) % keys) as i64;
        let body = proto::encode_stmt(
            "SELECT x FROM conn_bench WHERE id = :id",
            &[("id", minidb::Value::Int(id))],
            display,
        );
        proto::write_frame(&mut cs.out, req::STMT, &body).expect("encode stmt");
        cs.begun = Some(Instant::now());
        flush_now(cs, token, poller);
    }

    /// Opportunistic nonblocking flush; arms EV_WRITE on short writes.
    fn flush_now(cs: &mut CState, token: u64, poller: &mut Poller) {
        use std::io::Write;
        use std::os::unix::io::AsRawFd;
        while cs.sent < cs.out.len() {
            match (&cs.stream).write(&cs.out[cs.sent..]) {
                Ok(0) => break,
                Ok(k) => cs.sent += k,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        if cs.sent == cs.out.len() {
            cs.out.clear();
            cs.sent = 0;
        }
        let want = if cs.out.is_empty() {
            EV_READ
        } else {
            EV_READ | EV_WRITE
        };
        if want != cs.interest {
            cs.interest = want;
            let _ = poller.modify(cs.stream.as_raw_fd(), token, want);
        }
    }

    // Connect phase: dial in paced chunks so the accept queue and the
    // handshake pipeline never outrun the single-threaded server.
    eprintln!("netload: opening {n} connections to {addr}");
    let connect_deadline = Instant::now() + Duration::from_secs(300);
    for idx in 0..n {
        use std::os::unix::io::AsRawFd;
        let stream = std::net::TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        {
            let mut s = &stream;
            proto::write_frame(
                &mut s,
                req::HELLO,
                &proto::encode_hello(&Hello {
                    version: proto::VERSION,
                    now_unix: None,
                }),
            )
            .expect("send HELLO");
        }
        stream.set_nonblocking(true).expect("nonblocking");
        poller
            .register(stream.as_raw_fd(), idx as u64, EV_READ)
            .expect("register");
        conns.push(CState {
            stream,
            acc: FrameAccumulator::new(),
            out: Vec::new(),
            sent: 0,
            interest: EV_READ,
            ready: false,
            done: 0,
            begun: None,
            finished: false,
        });
        // Pace: don't run more than 64 handshakes ahead of the server.
        while conns.len() - ready_conns - (errors + busy) as usize > 64 {
            assert!(Instant::now() < connect_deadline, "connect phase stalled");
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .expect("poller wait");
            for ev in events.clone() {
                let cs = &mut conns[ev.token as usize];
                let was_ready = cs.ready;
                pump_conn(
                    cs,
                    ev.token,
                    ev.readable,
                    ev.writable,
                    ev.hangup,
                    &mut poller,
                    &mut scratch,
                    &mut hist,
                    &mut errors,
                    &mut busy,
                    statements,
                    keys,
                    &display,
                    false,
                    &mut samples,
                );
                if cs.ready && !was_ready {
                    ready_conns += 1;
                }
            }
        }
    }
    while ready_conns + ((errors + busy) as usize) < n {
        assert!(Instant::now() < connect_deadline, "handshake phase stalled");
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .expect("poller wait");
        for ev in events.clone() {
            let cs = &mut conns[ev.token as usize];
            let was_ready = cs.ready;
            pump_conn(
                cs,
                ev.token,
                ev.readable,
                ev.writable,
                ev.hangup,
                &mut poller,
                &mut scratch,
                &mut hist,
                &mut errors,
                &mut busy,
                statements,
                keys,
                &display,
                false,
                &mut samples,
            );
            if cs.ready && !was_ready {
                ready_conns += 1;
            }
        }
    }
    if let Some(server) = &local_server {
        eprintln!(
            "netload: {ready_conns}/{n} connections established \
             ({} live on the server); running {statements} statements each",
            server.connection_count()
        );
    } else {
        eprintln!(
            "netload: {ready_conns}/{n} connections established; \
             running {statements} statements each"
        );
    }

    // Measurement phase: kick every connection's closed loop at once.
    let started = Instant::now();
    for (idx, cs) in conns.iter_mut().enumerate() {
        if cs.finished {
            // Rejected (BUSY) or failed during connect: already settled,
            // but it still counts toward the loop's exit tally.
            finished_conns += 1;
        } else if cs.ready {
            send_stmt(cs, idx as u64, &mut poller, keys, &display);
        } else {
            cs.finished = true;
            finished_conns += 1;
        }
    }
    let run_deadline = Instant::now() + Duration::from_secs(600);
    while finished_conns < conns.len() {
        assert!(Instant::now() < run_deadline, "measurement phase stalled");
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .expect("poller wait");
        for ev in events.clone() {
            let idx = ev.token as usize;
            let was_finished = conns[idx].finished;
            pump_conn(
                &mut conns[idx],
                ev.token,
                ev.readable,
                ev.writable,
                ev.hangup,
                &mut poller,
                &mut scratch,
                &mut hist,
                &mut errors,
                &mut busy,
                statements,
                keys,
                &display,
                true,
                &mut samples,
            );
            if conns[idx].finished && !was_finished {
                finished_conns += 1;
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let total: usize = conns.iter().map(|c| c.done).sum();
    let rate = total as f64 / elapsed;

    println!(
        "{n} connections x {statements} statements: {total} statements \
         in {elapsed:.3}s -> {rate:.1} stmt/s"
    );
    println!(
        "latency p50 {} us, p99 {} us, p999 {} us",
        hist.percentile(0.50),
        hist.percentile(0.99),
        hist.percentile(0.999)
    );
    if let Some(server) = &local_server {
        let stats = server.stats();
        println!(
            "server stats: accepted {}, busy {}, parks {}, read pauses {}, pipelined {}",
            stats.accepted,
            stats.busy_rejects,
            stats.park_events,
            stats.read_pauses,
            stats.pipelined
        );
    }
    println!("client errors {errors}, busy rejections {busy}");
    for s in &samples {
        eprintln!("netload: error sample: {s}");
    }
    hist.print("  ");

    write_bench_json(
        json_path,
        &[
            ("bench", "\"netload\"".into()),
            ("mode", "\"connections\"".into()),
            ("connections", n.to_string()),
            ("statements_per_connection", statements.to_string()),
            ("total_statements", total.to_string()),
            ("elapsed_s", format!("{elapsed:.3}")),
            ("stmt_per_sec", format!("{rate:.1}")),
            ("p50_us", hist.percentile(0.50).to_string()),
            ("p99_us", hist.percentile(0.99).to_string()),
            ("p999_us", hist.percentile(0.999).to_string()),
            ("errors", errors.to_string()),
            ("busy", busy.to_string()),
        ],
    );

    if errors > 0 || busy > 0 {
        eprintln!("netload: FAILED — {errors} errors, {busy} BUSY below the admission cap");
        std::process::exit(1);
    }
}

/// The pipelining experiment: the same prepared point-SELECT workload
/// run closed-loop at depth 1, then in batches of `depth` statements
/// per round trip through [`Connection::pipeline`]. Exits nonzero
/// unless pipelining beats depth-1 throughput.
fn run_pipeline(
    target: &str,
    threads: usize,
    depth: usize,
    statements: usize,
    rows: usize,
    json_path: &str,
) {
    assert!(depth >= 2, "--pipeline DEPTH must be >= 2");
    let setup = Connection::connect(target).expect("connect setup");
    for sql in [
        "DROP TABLE IF EXISTS pipe_bench",
        "CREATE TABLE pipe_bench (id INT, x INT)",
    ] {
        setup.execute(sql, &[]).expect("pipeline-mode DDL");
    }
    let keys = rows.max(256);
    for i in 0..keys {
        setup
            .execute(
                "INSERT INTO pipe_bench VALUES (:i, :v)",
                &[
                    ("i", HostValue::Int(i as i64)),
                    ("v", HostValue::Int((i * 3) as i64)),
                ],
            )
            .expect("populate pipe_bench");
    }
    setup
        .execute("CREATE INDEX ix_pipe_id ON pipe_bench(id)", &[])
        .expect("index pipe_bench");

    // Each phase runs the same number of statements; the pipelined
    // phase rounds down to whole batches.
    let phase = |pipelined: bool| -> (Histogram, f64, usize) {
        let merged = Arc::new(Mutex::new(Histogram::default()));
        let gate = Arc::new(std::sync::Barrier::new(threads + 1));
        let executed = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let target = target.to_owned();
                let merged = Arc::clone(&merged);
                let gate = Arc::clone(&gate);
                let executed = Arc::clone(&executed);
                thread::spawn(move || {
                    let conn = Connection::connect(target.as_str()).expect("connect worker");
                    let mut stmt = conn.prepare("SELECT x FROM pipe_bench WHERE id = :id");
                    assert!(
                        stmt.is_server_prepared(),
                        "--pipeline needs a protocol v3 server"
                    );
                    // Warm the connection before the clock starts.
                    stmt = stmt.bind("id", HostValue::Int(0));
                    stmt.query().expect("warmup").len();
                    gate.wait();
                    let mut hist = Histogram::default();
                    let mut ran = 0usize;
                    if pipelined {
                        let rounds = statements / depth;
                        for r in 0..rounds {
                            let mut pipe = conn.pipeline();
                            for d in 0..depth {
                                let id = ((r * depth + d) * threads + t) % keys;
                                stmt = stmt.bind("id", HostValue::Int(id as i64));
                                pipe.add_prepared(&stmt);
                            }
                            let begin = Instant::now();
                            let results = pipe.run().expect("pipeline run");
                            let per_stmt = (begin.elapsed().as_micros() as u64) / depth as u64;
                            assert_eq!(results.len(), depth);
                            for slot in results {
                                let mut rows = slot.expect("slot").into_rows().expect("rows");
                                assert!(rows.next());
                                hist.record(per_stmt);
                                ran += 1;
                            }
                        }
                    } else {
                        for i in 0..statements {
                            let id = (i * threads + t) % keys;
                            stmt = stmt.bind("id", HostValue::Int(id as i64));
                            let begin = Instant::now();
                            let n = stmt.query().expect("depth-1 query").len();
                            hist.record(begin.elapsed().as_micros() as u64);
                            assert_eq!(n, 1);
                            ran += 1;
                        }
                    }
                    executed.fetch_add(ran, Ordering::Relaxed);
                    merged.lock().expect("histogram").merge(&hist);
                })
            })
            .collect();
        gate.wait();
        let started = Instant::now();
        for w in workers {
            w.join().expect("worker panicked");
        }
        let elapsed = started.elapsed().as_secs_f64().max(1e-9);
        let ran = executed.load(Ordering::Relaxed);
        let mut out = Histogram::default();
        out.merge(&merged.lock().expect("histogram"));
        (out, ran as f64 / elapsed, ran)
    };

    eprintln!("netload: pipeline phase 1 — {threads} connections, depth 1");
    let (h1, rate1, ran1) = phase(false);
    eprintln!("netload: pipeline phase 2 — {threads} connections, depth {depth}");
    let (hd, rated, rand_) = phase(true);

    println!(
        "depth 1:      {ran1} statements -> {rate1:.1} stmt/s, \
         p50 {} us, p99 {} us, p999 {} us",
        h1.percentile(0.50),
        h1.percentile(0.99),
        h1.percentile(0.999)
    );
    println!(
        "depth {depth}: {rand_} statements -> {rated:.1} stmt/s, \
         p50 {} us, p99 {} us, p999 {} us (per statement)",
        hd.percentile(0.50),
        hd.percentile(0.99),
        hd.percentile(0.999)
    );
    let speedup = rated / rate1.max(1e-9);
    println!("pipelined throughput over depth-1: {speedup:.2}x");

    write_bench_json(
        json_path,
        &[
            ("bench", "\"netload\"".into()),
            ("mode", "\"pipeline\"".into()),
            ("connections", threads.to_string()),
            ("depth", depth.to_string()),
            ("depth1_stmt_per_sec", format!("{rate1:.1}")),
            ("pipelined_stmt_per_sec", format!("{rated:.1}")),
            ("speedup", format!("{speedup:.3}")),
            ("depth1_p50_us", h1.percentile(0.50).to_string()),
            ("depth1_p99_us", h1.percentile(0.99).to_string()),
            ("pipelined_p50_us", hd.percentile(0.50).to_string()),
            ("pipelined_p99_us", hd.percentile(0.99).to_string()),
            ("pipelined_p999_us", hd.percentile(0.999).to_string()),
        ],
    );

    if rated <= rate1 {
        eprintln!("netload: FAILED — pipelining did not beat depth-1 throughput");
        std::process::exit(1);
    }
}

fn main() {
    let mut addr: Option<String> = None;
    let mut threads = 8usize;
    let mut statements = 200usize;
    let mut rows = 200usize;
    let mut contend = false;
    let mut writers = 2usize;
    let mut prepared = false;
    let mut replicas = 0usize;
    let mut connections = 0usize;
    let mut pipeline = 0usize;
    let mut json_path = "BENCH_9.json".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let num = |a: Option<String>| a.and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => addr = Some(args.next().unwrap_or_else(|| usage())),
            "--threads" => threads = num(args.next()),
            "--statements" => statements = num(args.next()),
            "--rows" => rows = num(args.next()),
            "--contend" => contend = true,
            "--writers" => writers = num(args.next()),
            "--prepared" => prepared = true,
            "--replicas" => replicas = num(args.next()),
            "--connections" => connections = num(args.next()),
            "--pipeline" => pipeline = num(args.next()),
            "--json" => json_path = args.next().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }

    if connections > 0 {
        // Self-contained by default; with --addr the driver targets an
        // already-running server, halving this process's fd budget —
        // the route to 10k connections under a 20k fd limit.
        run_connections(addr, connections, statements, rows, &json_path);
        return;
    }

    if replicas > 0 {
        // The fan-out experiment owns its whole topology; a foreign
        // --addr primary cannot host in-process replicas.
        if addr.is_some() {
            usage();
        }
        run_replicas(threads, statements, rows, replicas);
        return;
    }

    // Self-contained mode: serve the synthetic medical database locally.
    let _local_server: Option<Server>;
    let target = match addr {
        Some(a) => {
            _local_server = None;
            a
        }
        None => {
            let db = Database::new();
            db.install_blade(&TipBlade).expect("fresh database");
            let session = db.session();
            let types = db.with_catalog(TipTypes::from_catalog).expect("bladed");
            let cfg = tip_workload::MedicalConfig {
                n_prescriptions: rows,
                ..Default::default()
            };
            let med = tip_workload::generate(&cfg);
            tip_workload::populate_tip(&session, types, &med).expect("populate");
            let server = Server::bind(
                "127.0.0.1:0",
                &db,
                ServerConfig {
                    max_connections: threads + writers + 8,
                    ..Default::default()
                },
            )
            .expect("bind loopback server");
            let a = server.local_addr().to_string();
            eprintln!("netload: serving {rows} prescriptions on {a}");
            _local_server = Some(server);
            a
        }
    };

    if contend {
        run_contention(&target, threads, writers, statements, rows);
        return;
    }
    if prepared {
        run_prepared(&target, threads, statements, rows);
        return;
    }
    if pipeline > 0 {
        run_pipeline(&target, threads, pipeline, statements, rows, &json_path);
        return;
    }

    eprintln!("netload: {threads} threads x {statements} statements against {target}");
    let total_hist = Arc::new(Mutex::new(Histogram::default()));
    let started = Instant::now();

    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let target = target.clone();
            let total_hist = Arc::clone(&total_hist);
            thread::spawn(move || {
                let conn = Connection::connect(target.as_str()).expect("connect");
                // Each thread browses under its own NOW to exercise the
                // per-connection session state.
                let now = Chronon::from_ymd(1994 + (t % 8) as i32, 6, 1).expect("valid date");
                conn.set_now(Some(now));

                let mut hist = Histogram::default();
                let mut rows_seen = 0usize;
                for i in 0..statements {
                    let begin = Instant::now();
                    let n = match i % 3 {
                        0 => conn
                            .query(
                                "SELECT patient, drug, dosage FROM Prescription \
                                 WHERE dosage >= :d",
                                &[("d", HostValue::Int((i % 5) as i64))],
                            )
                            .expect("query")
                            .len(),
                        1 => conn
                            .query(
                                "SELECT patient, total_seconds(length(valid)) FROM Prescription",
                                &[],
                            )
                            .expect("query")
                            .len(),
                        _ => conn
                            .query("SELECT doctor, valid FROM Prescription", &[])
                            .expect("query")
                            .len(),
                    };
                    rows_seen += n;
                    hist.record(begin.elapsed().as_micros() as u64);
                }
                total_hist.lock().expect("histogram").merge(&hist);
                rows_seen
            })
        })
        .collect();

    let mut rows_seen = 0usize;
    for w in workers {
        rows_seen += w.join().expect("worker panicked");
    }
    let elapsed = started.elapsed();

    let total = (threads * statements) as f64;
    println!(
        "total {} statements ({rows_seen} rows) in {:.3}s -> {:.1} stmt/s",
        threads * statements,
        elapsed.as_secs_f64(),
        total / elapsed.as_secs_f64().max(1e-9),
    );
    println!("latency histogram (log2 microseconds):");
    total_hist.lock().expect("histogram").print("  ");
}
