//! Regenerates every experiment of `EXPERIMENTS.md` and prints the
//! paper-style tables. Run with a subset of experiment ids, or nothing
//! for all of them:
//!
//! ```text
//! cargo run --release -p tip-bench --bin report            # all
//! cargo run --release -p tip-bench --bin report -- e3 e5   # subset
//! ```

use std::time::Duration;
use tip_bench::*;
use tip_core::{binary, Chronon, Element, ResolvedPeriod};
use tip_workload::random_resolved_elements;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id);
    println!("TIP reproduction — experiment report");
    println!("(NOW pinned to {}, workload seed 42)\n", experiment_now());
    if want("e2") {
        e2_demo_queries();
    }
    if want("e3") {
        e3_element_linearity();
    }
    if want("e4") {
        e4_coalescing();
    }
    if want("e5") {
        e5_integrated_vs_layered();
    }
    if want("e6") {
        e6_now_sweep();
    }
    if want("e7") {
        e7_query_complexity();
    }
    if want("e8") {
        e8_codec();
    }
    if want("e9") {
        e9_ablations();
    }
    if want("e10") {
        e10_period_index();
    }
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn header(title: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("==============================================================");
}

/// E2 — the paper's §2 demonstration queries on the seed-42 database.
fn e2_demo_queries() {
    header("E2: paper §2 demonstration queries (seed-42 medical database)");
    let setup = setup_tip(&sweep_config(200));
    let s = &setup.session;

    println!("\n[Q1] prescriptions stored with TIP-typed columns:");
    let r = s.query("SELECT COUNT(*) FROM Prescription").unwrap();
    println!("  COUNT(*) = {}", r.rows[0][0].as_int().unwrap());

    println!("\n[Q2] Tylenol before :w weeks of age (w = 150):");
    let r = s
        .query_with_params(
            "SELECT patient, start(valid) - patientDOB AS age FROM Prescription \
             WHERE drug = 'Tylenol' AND start(valid) - patientDOB < '7 00:00:00'::Span * :w \
             ORDER BY patient LIMIT 5",
            &[("w", minidb::Value::Int(150))],
        )
        .unwrap();
    print!("{}", s.format_result(&r));

    println!("\n[Q3] Diabeta ∧ Aspirin simultaneously (temporal self-join):");
    let r = s.query(TIP_SELF_JOIN_SQL).unwrap();
    println!(
        "  {} overlapping prescription pair(s); first rows:",
        r.rows.len()
    );
    let preview = minidb::QueryResult {
        columns: r.columns.clone(),
        rows: r.rows.iter().take(4).cloned().collect(),
    };
    print!("{}", s.format_result(&preview));

    println!("\n[Q4] coalesced medication time vs naive SUM (first 5 patients):");
    let r = s
        .query(
            "SELECT patient, length(group_union(valid)) AS coalesced, \
             SUM(total_seconds(length(valid))) AS naive_secs \
             FROM Prescription GROUP BY patient ORDER BY patient LIMIT 5",
        )
        .unwrap();
    print!("{}", s.format_result(&r));
    println!();
}

/// E3 — Element set operations are linear in the number of periods
/// (paper §3).
fn e3_element_linearity() {
    header("E3: Element algebra scaling (linear-time claim, paper §3)");
    println!(
        "{:>8} | {:>12} {:>12} {:>12} {:>12} | ns/period (union)",
        "periods", "union us", "intersect us", "difference us", "overlaps us"
    );
    for n in [16usize, 64, 256, 1024, 4096, 16384, 65536] {
        let es = random_resolved_elements(7, 2, n, 36_500);
        let (a, b) = (&es[0], &es[1]);
        let budget = Duration::from_millis(60);
        let t_union = mean_time(budget, || {
            std::hint::black_box(a.union(b));
        });
        let t_inter = mean_time(budget, || {
            std::hint::black_box(a.intersect(b));
        });
        let t_diff = mean_time(budget, || {
            std::hint::black_box(a.difference(b));
        });
        let t_over = mean_time(budget, || {
            std::hint::black_box(a.overlaps(b));
        });
        println!(
            "{:>8} | {:>12.2} {:>12.2} {:>12.2} {:>12.2} | {:.2}",
            n,
            us(t_union),
            us(t_inter),
            us(t_diff),
            us(t_over),
            t_union.as_nanos() as f64 / n as f64
        );
    }
    println!("(linear algorithms: ns/period stays roughly flat as n grows)\n");
}

/// E4 — coalescing: TIP `group_union` vs the layered stratum, plus the
/// SUM-vs-group_union discrepancy the paper warns about.
fn e4_coalescing() {
    header("E4: coalescing — group_union vs layered stratum vs naive SUM");
    println!(
        "{:>8} | {:>14} | {:>14} | {:>8} | {:>10}",
        "rx rows", "TIP ms", "layered ms", "speedup", "SUM wrong?"
    );
    for n in [200usize, 1000, 4000] {
        let cfg = sweep_config(n);
        let tip = setup_tip(&cfg);
        let mut layered = setup_layered(&cfg);
        let (tg, tip_t) = run_tip_coalesce(&tip);
        let (lg, lay_t) = run_layered_coalesce(&mut layered);
        assert_eq!(tg, lg, "group counts agree");
        // How many patients have a naive SUM that over-counts?
        let r = tip
            .session
            .query(
                "SELECT patient, total_seconds(length(group_union(valid))) AS c, \
                 SUM(total_seconds(length(valid))) AS s \
                 FROM Prescription GROUP BY patient",
            )
            .unwrap();
        let wrong = r
            .rows
            .iter()
            .filter(|row| row[2].as_int().unwrap() > row[1].as_int().unwrap())
            .count();
        println!(
            "{:>8} | {:>14.3} | {:>14.3} | {:>7.2}x | {:>4}/{:<5}",
            n,
            tip_t.as_secs_f64() * 1e3,
            lay_t.as_secs_f64() * 1e3,
            lay_t.as_secs_f64() / tip_t.as_secs_f64(),
            wrong,
            r.rows.len()
        );
    }
    println!("(SUM wrong? = patients whose SUM(length) over-counts overlapping periods)\n");
}

/// E5 — integrated (DataBlade) vs layered (TimeDB-style) execution.
fn e5_integrated_vs_layered() {
    header("E5: temporal self-join — integrated TIP vs layered translation");
    println!(
        "{:>8} | {:>12} | {:>12} | {:>8} | {:>10} | {:>12}",
        "rx rows", "TIP ms", "layered ms", "rows out", "lay rows", "lay shipped"
    );
    for n in [100usize, 400, 1600] {
        let cfg = sweep_config(n);
        let tip = setup_tip(&cfg);
        let mut layered = setup_layered(&cfg);
        layered.reset_stats();
        let (tip_rows, tip_t) = run_tip_self_join(&tip);
        let (lay_rows, lay_t) = run_layered_self_join(&mut layered);
        println!(
            "{:>8} | {:>12.3} | {:>12.3} | {:>8} | {:>10} | {:>12}",
            n,
            tip_t.as_secs_f64() * 1e3,
            lay_t.as_secs_f64() * 1e3,
            tip_rows,
            lay_rows,
            layered.stats().rows_shipped
        );
    }
    println!(
        "(layered row counts exceed TIP's: one row per period fragment; every one \
         crosses the DBMS boundary)\n"
    );
}

/// E6 — NOW-relative query results change as time advances (paper §2/§4).
fn e6_now_sweep() {
    header("E6: NOW-relative semantics — same data, different transaction times");
    let cfg = sweep_config(300);
    let tip = setup_tip(&cfg);
    let mut session = tip.db.session();
    println!(
        "{:>12} | {:>16} | {:>22}",
        "NOW", "open rx valid", "total coalesced days"
    );
    for (y, m, d) in [(1996, 1, 1), (1997, 6, 1), (1999, 12, 1), (2003, 1, 1)] {
        let now = Chronon::from_ymd(y, m, d).unwrap();
        session.set_now_unix(Some(tip_blade::chronon_to_unix(now)));
        let valid_open = session
            .query(
                "SELECT COUNT(*) FROM Prescription \
                 WHERE is_now_relative(valid) AND is_empty(valid) = FALSE",
            )
            .unwrap();
        let total = session
            .query(
                "SELECT patient, total_seconds(length(group_union(valid))) \
                 FROM Prescription GROUP BY patient",
            )
            .unwrap();
        let days: i64 = total
            .rows
            .iter()
            .map(|r| r[1].as_int().unwrap_or(0))
            .sum::<i64>()
            / 86_400;
        println!(
            "{:>12} | {:>16} | {:>22}",
            now.to_string(),
            valid_open.rows[0][0].as_int().unwrap(),
            days
        );
    }
    println!("(identical stored data; only the interpretation of NOW moves)\n");
}

/// E7 — query complexity: what the user writes (TIP) vs what the layered
/// stratum generates and does.
fn e7_query_complexity() {
    header("E7: query complexity — user-visible TIP SQL vs layered machinery");
    let mut layered = setup_layered(&sweep_config(200));
    let w = ResolvedPeriod::new(
        Chronon::from_ymd(1998, 1, 1).unwrap(),
        Chronon::from_ymd(1998, 12, 31).unwrap(),
    )
    .unwrap();
    let rows = [
        (
            "window selection",
            tip_window_sql(w).len(),
            layered
                .overlap_selection_sql("Prescription", &["patient", "drug"], w)
                .len(),
            1usize,
        ),
        (
            "temporal self-join",
            TIP_SELF_JOIN_SQL.len(),
            layered
                .temporal_join_sql(
                    "Prescription",
                    "Prescription",
                    &["a.patient"],
                    LAYERED_JOIN_PRED,
                )
                .len(),
            1,
        ),
    ];
    println!(
        "{:>20} | {:>10} | {:>13} | {:>14}",
        "operation", "TIP chars", "layered chars", "lay statements"
    );
    for (name, tip_chars, lay_chars, stmts) in rows {
        println!("{name:>20} | {tip_chars:>10} | {lay_chars:>13} | {stmts:>14}");
    }
    // Coalescing: not expressible in the layered SQL at all.
    layered.reset_stats();
    layered.coalesce("Prescription", "patient").unwrap();
    let st = layered.stats();
    println!(
        "{:>20} | {:>10} | {:>13} | {:>14}",
        "coalescing",
        TIP_COALESCE_SQL.len(),
        st.sql_chars,
        st.statements
    );
    let tip_answer_rows = setup_tip(&sweep_config(200))
        .session
        .query(TIP_COALESCE_SQL)
        .unwrap()
        .rows
        .len();
    println!(
        "(layered coalescing also ships {} period rows out of the DBMS; TIP ships only \
         the {}-row answer)\n",
        st.rows_shipped, tip_answer_rows
    );
}

/// E9 — engine ablations: the design choices DESIGN.md calls out.
fn e9_ablations() {
    header("E9: ablations — index scan, join algorithm, temporal aggregation");
    // Index vs full scan.
    let build = |with_index: bool| {
        let db = minidb::Database::new();
        let s = db.session();
        s.execute("CREATE TABLE t (k INT, v INT)").unwrap();
        for i in 0..10_000usize {
            s.execute_with_params(
                "INSERT INTO t VALUES (:k, :v)",
                &[
                    ("k", minidb::Value::Int((i % 100) as i64)),
                    ("v", minidb::Value::Int(i as i64)),
                ],
            )
            .unwrap();
        }
        if with_index {
            s.execute("CREATE INDEX ix_k ON t(k)").unwrap();
        }
        db
    };
    let budget = Duration::from_millis(80);
    let db_plain = build(false);
    let db_ix = build(true);
    let q = "SELECT COUNT(*) FROM t WHERE k = 37";
    let mut s_plain = db_plain.session();
    let s_ix = db_ix.session();
    let t_scan = mean_time(budget, || {
        s_plain.query(q).unwrap();
    });
    let t_ix = mean_time(budget, || {
        s_ix.query(q).unwrap();
    });
    println!(
        "point lookup, 10k rows:   full scan {:>9.1} us | index {:>9.1} us | {:>5.1}x",
        us(t_scan),
        us(t_ix),
        t_scan.as_secs_f64() / t_ix.as_secs_f64()
    );
    // The sessions' query metrics confirm which access path actually ran.
    let (mp, mi) = (s_plain.metrics().snapshot(), s_ix.metrics().snapshot());
    println!(
        "  access paths:           plain: {} full scans ({} rows scanned) | \
         indexed: {} index-eq scans ({} rows), hit rate {:.0}%",
        mp.full_scans,
        mp.rows_scanned,
        mi.index_eq_scans,
        mi.rows_scanned,
        mi.index_hit_rate().unwrap_or(0.0) * 100.0
    );
    // Hash join vs nested loop (equality written two ways).
    let db = build(false);
    let s = db.session();
    s.execute("DELETE FROM t WHERE v >= 500").unwrap();
    let t_hash = mean_time(budget, || {
        s.query("SELECT COUNT(*) FROM t a, t b WHERE a.v = b.v")
            .unwrap();
    });
    let t_nl = mean_time(budget, || {
        s.query("SELECT COUNT(*) FROM t a, t b WHERE a.v <= b.v AND a.v >= b.v")
            .unwrap();
    });
    println!(
        "self-join, 500 rows:      nested loop {:>6.2} ms | hash join {:>6.2} ms | {:>5.1}x",
        t_nl.as_secs_f64() * 1e3,
        t_hash.as_secs_f64() * 1e3,
        t_nl.as_secs_f64() / t_hash.as_secs_f64()
    );
    // Row executor vs the vectorized batch executor on the same plans.
    println!("row vs batch executor (identical plans, 10k-row scans):");
    for (label, sql) in [
        ("point filter", "SELECT COUNT(*) FROM t WHERE k = 37"),
        (
            "range filter",
            "SELECT COUNT(*) FROM t WHERE v >= 2500 AND v < 7500",
        ),
        ("filtered sum", "SELECT SUM(v) FROM t WHERE k < 50"),
    ] {
        s_plain.set_vectorized(false);
        let t_row = mean_time(budget, || {
            s_plain.query(sql).unwrap();
        });
        s_plain.set_vectorized(true);
        let t_batch = mean_time(budget, || {
            s_plain.query(sql).unwrap();
        });
        println!(
            "  {:>14}: row {:>8.1} us | batch {:>8.1} us | {:>4.1}x",
            label,
            us(t_row),
            us(t_batch),
            t_row.as_secs_f64() / t_batch.as_secs_f64()
        );
    }
    // Temporal aggregation sweep scaling.
    println!("temporal COUNT sweep (constant intervals from n periods):");
    for n in [100usize, 1_000, 10_000] {
        let periods: Vec<tip_core::ResolvedPeriod> = random_resolved_elements(3, n, 4, 3650)
            .iter()
            .flat_map(|e| e.periods().to_vec())
            .collect();
        let t = mean_time(budget, || {
            std::hint::black_box(tip_core::tagg::temporal_count(&periods));
        });
        println!(
            "  n = {:>6}: {:>9.1} us  ({:.1} ns/period)",
            periods.len(),
            us(t),
            t.as_nanos() as f64 / periods.len() as f64
        );
    }
    println!();
}

/// E10 — the period (interval) index of the paper's reference [2]:
/// overlap queries with and without an interval index on the Element
/// column, across selectivities.
fn e10_period_index() {
    use tip_core::Span;
    header("E10: period index — overlaps() with and without an interval index");
    let n = 20_000usize;
    let build = |with_index: bool| {
        let setup = setup_tip(&sweep_config(0)); // empty Prescription table
        let s = &setup.session;
        s.execute("CREATE TABLE rx (id INT, valid Element)")
            .unwrap();
        let base: Chronon = Chronon::from_ymd(1990, 1, 1).unwrap();
        let mut sql = String::new();
        for i in 0..n {
            let start = base + Span::from_days((i % 3650) as i64);
            let end = start + Span::from_days(10);
            if i % 500 == 0 {
                if !sql.is_empty() {
                    s.execute(&sql).unwrap();
                }
                sql = format!("INSERT INTO rx VALUES ({i}, '{{[{start}, {end}]}}')");
            } else {
                sql.push_str(&format!(", ({i}, '{{[{start}, {end}]}}')"));
            }
        }
        s.execute(&sql).unwrap();
        if with_index {
            s.execute("CREATE INDEX ix_valid ON rx(valid)").unwrap();
        }
        setup
    };
    let mut plain = build(false);
    let indexed = build(true);
    println!(
        "{:>22} | {:>9} | {:>9} | {:>7} | {:>9} | {:>7} | {:>8}",
        "window", "row us", "batch us", "vec", "ivscan us", "ix", "rows"
    );
    let budget = Duration::from_millis(100);
    for (label, window) in [
        ("1 week", "{[1994-06-01, 1994-06-07]}"),
        ("3 months", "{[1994-06-01, 1994-08-31]}"),
        ("2 years", "{[1994-01-01, 1995-12-31]}"),
    ] {
        let sql = format!("SELECT COUNT(*) FROM rx WHERE overlaps(valid, '{window}'::Element)");
        plain.session.set_vectorized(false);
        let rows_row = plain.session.query(&sql).unwrap().rows[0][0]
            .as_int()
            .unwrap();
        let t_row = mean_time(budget, || {
            plain.session.query(&sql).unwrap();
        });
        plain.session.set_vectorized(true);
        let rows = plain.session.query(&sql).unwrap().rows[0][0]
            .as_int()
            .unwrap();
        let rows_ix = indexed.session.query(&sql).unwrap().rows[0][0]
            .as_int()
            .unwrap();
        assert_eq!(rows, rows_row, "executors must agree");
        assert_eq!(rows, rows_ix, "index must not change the answer");
        let t_batch = mean_time(budget, || {
            plain.session.query(&sql).unwrap();
        });
        let t_ix = mean_time(budget, || {
            indexed.session.query(&sql).unwrap();
        });
        println!(
            "{:>22} | {:>9.1} | {:>9.1} | {:>6.1}x | {:>9.1} | {:>6.1}x | {:>8}",
            label,
            us(t_row),
            us(t_batch),
            t_row.as_secs_f64() / t_batch.as_secs_f64(),
            us(t_ix),
            t_row.as_secs_f64() / t_ix.as_secs_f64(),
            rows
        );
    }
    let (mp, mi) = (
        plain.session.metrics().snapshot(),
        indexed.session.metrics().snapshot(),
    );
    println!(
        "(access paths: plain session ran {} full scans scanning {} rows; indexed session \
         ran {} interval-index scans scanning {} rows, index hit rate {:.0}%)",
        mp.full_scans,
        mp.rows_scanned,
        mi.index_overlap_scans,
        mi.rows_scanned,
        mi.index_hit_rate().unwrap_or(0.0) * 100.0
    );
    println!(
        "(20k ten-day prescriptions over a decade; bucketed interval index, \
         30-day stride, conservative candidates + exact recheck)\n"
    );
}

/// E8 — the "efficient binary format" (paper §2): binary vs text codec.
fn e8_codec() {
    header("E8: storage codec — binary vs text (size and speed)");
    println!(
        "{:>8} | {:>10} {:>10} {:>7} | {:>12} {:>12}",
        "periods", "bin bytes", "txt bytes", "ratio", "bin enc us", "txt enc us"
    );
    for n in [1usize, 10, 100, 1000] {
        let e: Element = random_resolved_elements(11, 1, n, 36_500)[0].clone().into();
        let bin = binary::element_to_vec(&e);
        let txt = e.to_string();
        let budget = Duration::from_millis(40);
        let t_bin = mean_time(budget, || {
            std::hint::black_box(binary::element_to_vec(&e));
        });
        let t_txt = mean_time(budget, || {
            std::hint::black_box(e.to_string());
        });
        println!(
            "{:>8} | {:>10} {:>10} {:>6.2}x | {:>12.2} {:>12.2}",
            n,
            bin.len(),
            txt.len(),
            txt.len() as f64 / bin.len() as f64,
            us(t_bin),
            us(t_txt)
        );
    }
    println!("(binary round-trip also validated by tip-core property tests)\n");
}
