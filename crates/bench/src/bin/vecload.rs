//! Scan-heavy smoke test for the vectorized executor.
//!
//! ```text
//! vecload [--rows N]
//! ```
//!
//! Loads N integer rows plus a TIP temporal table, runs a scan-heavy
//! query mix (filters, an OVERLAPS window probe, an aggregate), and then
//! checks the session metrics: if `exec.batches` is still zero — the
//! batch path was never taken — the run *fails* (exit 1). It also
//! cross-checks every answer against the forced row executor, so a
//! regression that silently falls back to rows (or diverges) is caught
//! by CI rather than by a benchmark looking slow.

use minidb::Value;
use tip_bench::{setup_tip, sweep_config};

fn usage() -> ! {
    eprintln!("usage: vecload [--rows N]");
    std::process::exit(2);
}

fn main() {
    let mut rows = 50_000usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rows" => {
                rows = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }

    let mut setup = setup_tip(&sweep_config(400));
    let s = &setup.session;
    s.execute("CREATE TABLE load (k INT, v INT)").expect("ddl");
    let mut sql = String::new();
    for i in 0..rows {
        if i % 500 == 0 {
            if !sql.is_empty() {
                s.execute(&sql).expect("bulk insert");
            }
            sql = format!("INSERT INTO load VALUES ({}, {i})", i % 97);
        } else {
            sql.push_str(&format!(", ({}, {i})", i % 97));
        }
    }
    s.execute(&sql).expect("bulk insert");

    let queries = [
        "SELECT COUNT(*) FROM load WHERE k = 13".to_owned(),
        format!("SELECT SUM(v) FROM load WHERE v >= {} AND k < 50", rows / 2),
        "SELECT COUNT(*) FROM Prescription \
         WHERE overlaps(valid, '{[1997-01-01, 1997-12-31]}'::Element)"
            .to_owned(),
        "SELECT drug, COUNT(*) FROM Prescription \
         WHERE dosage > 1 GROUP BY drug ORDER BY drug"
            .to_owned(),
    ];

    // Reference answers from the forced row executor.
    setup.session.set_vectorized(false);
    let expected: Vec<Vec<Vec<Value>>> = queries
        .iter()
        .map(|q| setup.session.query(q).expect("row query").rows)
        .collect();

    setup.session.set_vectorized(true);
    let before = setup.session.metrics().snapshot().vectorized_batches;
    for (q, want) in queries.iter().zip(&expected) {
        let got = setup.session.query(q).expect("batch query").rows;
        if &got != want {
            eprintln!("vecload: FAIL — row/batch answers diverge for: {q}");
            std::process::exit(1);
        }
    }
    let after = setup.session.metrics().snapshot().vectorized_batches;
    let batches = after - before;
    println!(
        "vecload: {} queries over {rows}+ rows, {batches} column batches, answers match row path",
        queries.len()
    );
    if batches == 0 {
        eprintln!("vecload: FAIL — batch path never taken (exec.batches = 0)");
        std::process::exit(1);
    }
}
