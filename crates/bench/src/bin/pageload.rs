//! Buffer-pool load generator for the paged storage engine.
//!
//! ```text
//! pageload [--rows N] [--page-size N] [--pool-pages N]
//!          [--iters N] [--json PATH] [--data-dir DIR]
//! ```
//!
//! Loads `N` closed-validity rows (history the moment they are
//! written) into a durable database, then:
//!
//! 1. measures the full-scan p50 while every row is still resident
//!    (hot), checkpoints — which spills them all to `pages.db` — and
//!    measures the same scan again (cold, faulting through the
//!    buffer pool), plus the `AS OF` history-read p50 over the same
//!    cold data;
//! 2. verifies the pool bound: resident pages never exceed
//!    `--pool-pages`, and process RSS growth across the cold-fault
//!    sweeps stays under ~2x the configured pool bound (the growth an
//!    *unbounded* cache would show is the whole dataset) — exceeding
//!    the bound exits nonzero;
//! 3. runs a small-update round and checkpoints again, failing unless
//!    the bytes that checkpoint wrote (dirty-page writebacks +
//!    snapshot) are a small fraction of the database bytes.
//!
//! Results land in `BENCH_10.json` (override with `--json`).

use minidb::{Database, DurabilityConfig, SyncMode, Value};
use std::io::Write;
use std::time::Instant;
use tip_blade::TipBlade;

fn usage() -> ! {
    eprintln!(
        "usage: pageload [--rows N] [--page-size N] [--pool-pages N] \
         [--iters N] [--json PATH] [--data-dir DIR]"
    );
    std::process::exit(2);
}

/// Resident set size of this process in bytes (`VmRSS` from
/// `/proc/self/status`); `None` off Linux.
fn rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// p50 of `iters` timed runs of `f`, in microseconds.
fn p50_us(iters: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_micros() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let mut rows = 40_000i64;
    let mut page_size = 4096usize;
    let mut pool_pages = 128usize;
    let mut iters = 9usize;
    let mut json_path = "BENCH_10.json".to_string();
    let mut data_dir: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rows" => {
                rows = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--page-size" => {
                page_size = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--pool-pages" => {
                pool_pages = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--json" => json_path = args.next().unwrap_or_else(|| usage()),
            "--data-dir" => data_dir = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    let dir = match &data_dir {
        Some(d) => std::path::PathBuf::from(d),
        None => std::env::temp_dir().join(format!("pageload-{}", std::process::id())),
    };
    if data_dir.is_none() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    let cfg = DurabilityConfig {
        sync_mode: SyncMode::Off,
        checkpoint_bytes: 0, // explicit checkpoints only
        page_size,
        pool_pages,
        ..DurabilityConfig::default()
    };
    let pool_bound = (pool_pages * page_size) as u64;

    let (db, _) =
        Database::open_with(&dir, cfg, |db| db.install_blade(&TipBlade)).expect("open data dir");
    let s = db.session();
    s.execute("CREATE TABLE load (id INT, pad CHAR(64), during Period)")
        .expect("create table");

    // ----- load (everything stays resident: no checkpoint yet) ------
    eprintln!("pageload: loading {rows} closed-validity rows ({page_size} B pages, {pool_pages}-frame pool)");
    let load_started = Instant::now();
    for i in 0..rows {
        // A period closed decades before NOW: cold at the next spill.
        s.execute_with_params(
            "INSERT INTO load VALUES (:id, :pad, '[1999-01-01, 1999-06-30]')",
            &[
                ("id", Value::Int(i)),
                (
                    "pad",
                    Value::Str("sixty-four-bytes-of-page-resident-pad".into()),
                ),
            ],
        )
        .expect("insert");
    }
    let load_s = load_started.elapsed().as_secs_f64();

    let count_sql = "SELECT COUNT(id) FROM load";
    let expect_count = |r: &minidb::QueryResult| {
        assert_eq!(r.rows[0][0], Value::Int(rows), "full scan sees every row");
    };

    // Hot p50: every row is still in memory — the no-fault bound.
    let hot_p50 = p50_us(iters, || {
        let r = s.query(count_sql).expect("hot scan");
        expect_count(&r);
    });

    // Checkpoint: spills every closed row to pages.db.
    db.checkpoint().expect("spill checkpoint");
    let store = db.paged_store().expect("durable db has a page store");
    let (live_pages, _, _) = store.page_counts();
    let db_bytes = std::fs::metadata(dir.join("pages.db"))
        .map(|m| m.len())
        .unwrap_or(0);

    // Cold-fault p50: the dataset is several times the pool, so every
    // full scan faults ~all pages back through the evicting pool. RSS
    // is sampled around the sweeps: growth is what the fault traffic
    // costs in resident memory.
    let rss0 = rss_bytes();
    let cold_p50 = p50_us(iters, || {
        let r = s.query(count_sql).expect("cold scan");
        expect_count(&r);
    });
    // AS OF pinned at the post-spill commit: a history read whose
    // version holds cold page references, not resident rows.
    let seq_cold = db.commit_seq();
    let asof_sql = format!("SELECT COUNT(id) FROM load AS OF COMMIT {seq_cold}");
    let asof_p50 = p50_us(iters, || {
        let r = s.query(&asof_sql).expect("AS OF scan");
        expect_count(&r);
    });
    let rss1 = rss_bytes();

    let stats = db.bufpool_stats();
    let multiple = live_pages as f64 / pool_pages as f64;
    eprintln!(
        "pageload: {live_pages} cold pages = {multiple:.1}x pool; \
         hot p50 {hot_p50} us, cold-fault p50 {cold_p50} us, AS OF p50 {asof_p50} us"
    );
    eprintln!("pageload: pool stats {stats:?}");

    // ----- small-update round: checkpoint must be O(dirty) -----------
    let wb_before = db.bufpool_stats().writebacks;
    for i in 0..16 {
        s.execute(&format!("UPDATE load SET pad = 'touched' WHERE id = {i}"))
            .expect("small update");
    }
    db.checkpoint().expect("post-update checkpoint");
    let wb_delta = db.bufpool_stats().writebacks - wb_before;
    let snap_bytes = std::fs::metadata(dir.join("snapshot.db"))
        .map(|m| m.len())
        .unwrap_or(0);
    let ckpt_bytes = wb_delta * page_size as u64 + snap_bytes;
    eprintln!(
        "pageload: small-update checkpoint wrote {wb_delta} pages + {snap_bytes} B snapshot \
         = {ckpt_bytes} B vs {db_bytes} B database"
    );

    db.close().expect("clean close");
    if data_dir.is_none() {
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ----- JSON -------------------------------------------------------
    let rss_growth = match (rss0, rss1) {
        (Some(a), Some(b)) => Some(b.saturating_sub(a)),
        _ => None,
    };
    let json = format!(
        "{{\n  \"bench\": \"pageload\",\n  \
         \"note\": \"closed-validity rows spilled to pages.db, full-scan + AS OF sweeps fault them through the evicting pool\",\n  \
         \"rows\": {rows},\n  \"page_size\": {page_size},\n  \"pool_pages\": {pool_pages},\n  \
         \"pool_bound_bytes\": {pool_bound},\n  \"cold_pages\": {live_pages},\n  \
         \"dataset_over_pool\": {multiple:.2},\n  \"load_s\": {load_s:.3},\n  \
         \"hot_scan_p50_us\": {hot_p50},\n  \"cold_fault_p50_us\": {cold_p50},\n  \
         \"asof_p50_us\": {asof_p50},\n  \
         \"pool_hits\": {},\n  \"pool_misses\": {},\n  \"pool_evictions\": {},\n  \
         \"resident_pages\": {},\n  \
         \"rss_growth_bytes\": {},\n  \
         \"update_checkpoint_bytes\": {ckpt_bytes},\n  \"database_bytes\": {db_bytes}\n}}\n",
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.pages,
        rss_growth.map(|v| v.to_string()).unwrap_or_else(|| "null".into()),
    );
    let mut f = std::fs::File::create(&json_path).expect("create json");
    f.write_all(json.as_bytes()).expect("write json");
    println!("pageload: wrote {json_path}");
    print!("{json}");

    // ----- gates ------------------------------------------------------
    let mut failed = false;
    if multiple < 4.0 {
        eprintln!("pageload: FAIL — dataset only {multiple:.1}x the pool (need >= 4x)");
        failed = true;
    }
    if stats.pages > pool_pages as u64 {
        eprintln!(
            "pageload: FAIL — {} resident pages exceed the {pool_pages}-frame pool",
            stats.pages
        );
        failed = true;
    }
    if stats.evictions == 0 {
        eprintln!("pageload: FAIL — a {multiple:.1}x dataset never evicted");
        failed = true;
    }
    // RSS gate: the cold-fault sweeps walked the whole dataset; an
    // unbounded cache would grow by ~database_bytes, a bounded pool by
    // at most its frames (plus allocator slack).
    if let Some(growth) = rss_growth {
        let limit = 2 * pool_bound + 4 * 1024 * 1024;
        if growth > limit {
            eprintln!(
                "pageload: FAIL — RSS grew {growth} B over the cold sweeps \
                 (> 2x pool bound {pool_bound} B + slack)"
            );
            failed = true;
        }
    }
    if ckpt_bytes * 4 > db_bytes {
        eprintln!(
            "pageload: FAIL — small-update checkpoint wrote {ckpt_bytes} B, \
             not \u{226a} the {db_bytes} B database"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
