//! E3 — Element set algebra scaling (paper §3: "algorithms that execute
//! in time linear in the number of periods").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tip_workload::random_resolved_elements;

fn element_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("element_ops");
    for n in [16usize, 256, 4096, 65536] {
        let es = random_resolved_elements(7, 2, n, 36_500);
        let (a, b) = (es[0].clone(), es[1].clone());
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("union", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.union(&b)))
        });
        group.bench_with_input(BenchmarkId::new("intersect", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.intersect(&b)))
        });
        group.bench_with_input(BenchmarkId::new("difference", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.difference(&b)))
        });
        group.bench_with_input(BenchmarkId::new("overlaps", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.overlaps(&b)))
        });
        group.bench_with_input(BenchmarkId::new("normalize", n), &n, |bench, _| {
            let raw: Vec<_> = a.periods().iter().rev().copied().collect();
            bench.iter(|| std::hint::black_box(tip_core::ResolvedElement::normalize(raw.clone())))
        });
    }
    group.finish();
}

criterion_group!(benches, element_ops);
criterion_main!(benches);
