//! E4 — coalescing: TIP's in-DBMS `group_union` aggregate vs the layered
//! stratum's pull-and-merge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tip_bench::{run_layered_coalesce, run_tip_coalesce, setup_layered, setup_tip, sweep_config};

fn coalesce(c: &mut Criterion) {
    let mut group = c.benchmark_group("coalesce");
    group.sample_size(20);
    for n in [200usize, 1000, 4000] {
        let cfg = sweep_config(n);
        let tip = setup_tip(&cfg);
        group.bench_with_input(BenchmarkId::new("tip_group_union", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(run_tip_coalesce(&tip).0))
        });
        let mut layered = setup_layered(&cfg);
        group.bench_with_input(BenchmarkId::new("layered_stratum", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(run_layered_coalesce(&mut layered).0))
        });
        // The (incorrect) naive SUM the paper warns about, for the cost
        // comparison only.
        group.bench_with_input(BenchmarkId::new("naive_sum", n), &n, |bench, _| {
            bench.iter(|| {
                tip.session
                    .query(
                        "SELECT patient, SUM(total_seconds(length(valid))) \
                         FROM Prescription GROUP BY patient",
                    )
                    .unwrap()
                    .rows
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, coalesce);
criterion_main!(benches);
