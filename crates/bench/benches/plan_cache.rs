//! Plan-cache microbenchmarks: the prepare-once/execute-many speedup
//! the cache exists for. Two workloads, each measured both ways:
//!
//! * `unprepared` — classic ad-hoc SQL, a unique statement text per
//!   execution, so every statement pays lex + parse + bind + plan;
//! * `prepared` — one parameterized statement executed with fresh
//!   parameter values, so repeats skip the whole SQL front end.

use criterion::{criterion_group, criterion_main, Criterion};
use minidb::{Database, Value};
use std::sync::Arc;
use tip_blade::{TipBlade, TipTypes};
use tip_core::{Chronon, Period};

fn point_table(n: usize) -> Arc<Database> {
    let db = Database::new();
    let s = db.session();
    s.execute("CREATE TABLE t (id INT, x INT)").unwrap();
    for i in 0..n {
        s.execute_with_params(
            "INSERT INTO t VALUES (:id, :x)",
            &[
                ("id", Value::Int(i as i64)),
                ("x", Value::Int((i * 3) as i64)),
            ],
        )
        .unwrap();
    }
    s.execute("CREATE INDEX ix_t_id ON t(id)").unwrap();
    db
}

fn point_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_cache/point_select");
    let db = point_table(10_000);

    let s = db.session();
    let mut i = 0i64;
    group.bench_function("unprepared", |b| {
        b.iter(|| {
            i = (i + 1) % 10_000;
            s.query(&format!("SELECT x FROM t WHERE id = {i}"))
                .unwrap()
                .rows
                .len()
        })
    });

    let s = db.session();
    let p = s.prepare("SELECT x FROM t WHERE id = :id").unwrap();
    let mut j = 0i64;
    group.bench_function("prepared", |b| {
        b.iter(|| {
            j = (j + 1) % 10_000;
            p.query(&[("id", Value::Int(j))]).unwrap().rows.len()
        })
    });
    group.finish();
}

fn period_table(n: usize) -> (Arc<Database>, TipTypes) {
    let db = Database::new();
    db.install_blade(&TipBlade).unwrap();
    let types = db.with_catalog(TipTypes::from_catalog).unwrap();
    let s = db.session();
    s.execute("CREATE TABLE rx (patient CHAR(20), valid Period)")
        .unwrap();
    for i in 0..n {
        s.execute(&format!(
            "INSERT INTO rx VALUES ('p{i}', '[1999-{:02}-{:02}, 1999-{:02}-{:02}]'::Period)",
            1 + i % 12,
            1 + i % 20,
            1 + i % 12,
            5 + i % 20,
        ))
        .unwrap();
    }
    s.execute("CREATE INDEX ix_rx_valid ON rx(valid)").unwrap();
    (db, types)
}

fn overlaps_param(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_cache/overlaps");
    group.sample_size(40);
    let (db, types) = period_table(2_000);

    let s = db.session();
    let mut i = 0u32;
    group.bench_function("unprepared", |b| {
        b.iter(|| {
            i = (i + 1) % 12;
            s.query(&format!(
                "SELECT patient FROM rx WHERE overlaps(valid, \
                 '[1999-{:02}-03, 1999-{:02}-10]'::Period)",
                1 + i,
                1 + i,
            ))
            .unwrap()
            .rows
            .len()
        })
    });

    let s = db.session();
    let p = s
        .prepare("SELECT patient FROM rx WHERE overlaps(valid, :w)")
        .unwrap();
    let mut j = 0u32;
    group.bench_function("prepared", |b| {
        b.iter(|| {
            j = (j + 1) % 12;
            let lo = Chronon::from_ymd(1999, 1 + j, 3).unwrap();
            let hi = Chronon::from_ymd(1999, 1 + j, 10).unwrap();
            let w = types.period(Period::fixed(lo, hi));
            p.query(&[("w", w)]).unwrap().rows.len()
        })
    });
    group.finish();
}

criterion_group!(benches, point_select, overlaps_param);
criterion_main!(benches);
