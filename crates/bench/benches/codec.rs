//! E8 — the "efficient binary format" (paper §2): binary vs text
//! encode/decode for Element values.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tip_core::{binary, Element};
use tip_workload::random_resolved_elements;

fn codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    for n in [1usize, 10, 100, 1000] {
        let e: Element = random_resolved_elements(11, 1, n, 36_500)[0].clone().into();
        let bin = binary::element_to_vec(&e);
        let txt = e.to_string();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("binary_encode", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(binary::element_to_vec(&e)))
        });
        group.bench_with_input(BenchmarkId::new("binary_decode", n), &n, |bench, _| {
            bench.iter(|| binary::decode_element(&mut bin.as_slice()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("text_encode", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(e.to_string()))
        });
        group.bench_with_input(BenchmarkId::new("text_decode", n), &n, |bench, _| {
            bench.iter(|| txt.parse::<Element>().unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, codec);
criterion_main!(benches);
