//! Ablations of the engine design choices DESIGN.md calls out:
//! index-equality scan vs full scan, hash join vs nested loop, and the
//! temporal-aggregation sweep's scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minidb::{Database, Value};
use tip_core::tagg;
use tip_workload::random_resolved_elements;

fn setup_wide_table(n: usize, with_index: bool) -> std::sync::Arc<Database> {
    let db = Database::new();
    let s = db.session();
    s.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    for i in 0..n {
        s.execute_with_params(
            "INSERT INTO t VALUES (:k, :v)",
            &[
                ("k", Value::Int((i % 100) as i64)),
                ("v", Value::Int(i as i64)),
            ],
        )
        .unwrap();
    }
    if with_index {
        s.execute("CREATE INDEX ix_k ON t(k)").unwrap();
    }
    db
}

fn index_vs_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_vs_scan");
    group.sample_size(30);
    for n in [1_000usize, 10_000] {
        for (label, with_index) in [("full_scan", false), ("index", true)] {
            let db = setup_wide_table(n, with_index);
            let s = db.session();
            group.bench_with_input(BenchmarkId::new(label, n), &n, |bench, _| {
                bench.iter(|| {
                    s.query("SELECT COUNT(*) FROM t WHERE k = 37")
                        .unwrap()
                        .rows
                        .len()
                })
            });
        }
    }
    group.finish();
}

fn hash_vs_nested_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_vs_nested_loop");
    group.sample_size(15);
    for n in [200usize, 800] {
        let db = setup_wide_table(n, false);
        let s = db.session();
        // Equality predicate -> planner picks a hash join.
        group.bench_with_input(BenchmarkId::new("hash_join", n), &n, |bench, _| {
            bench.iter(|| {
                s.query("SELECT COUNT(*) FROM t a, t b WHERE a.v = b.v")
                    .unwrap()
                    .rows
                    .len()
            })
        });
        // An equivalent non-equality form defeats hash-key detection and
        // falls back to a filtered nested loop.
        group.bench_with_input(BenchmarkId::new("nested_loop", n), &n, |bench, _| {
            bench.iter(|| {
                s.query("SELECT COUNT(*) FROM t a, t b WHERE a.v <= b.v AND a.v >= b.v")
                    .unwrap()
                    .rows
                    .len()
            })
        });
    }
    group.finish();
}

fn temporal_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("temporal_aggregation");
    for n in [100usize, 1_000, 10_000] {
        // n overlapping periods drawn from the workload generator.
        let periods: Vec<tip_core::ResolvedPeriod> = random_resolved_elements(3, n, 4, 3650)
            .iter()
            .flat_map(|e| e.periods().to_vec())
            .collect();
        group.bench_with_input(BenchmarkId::new("temporal_count", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(tagg::temporal_count(&periods)).len())
        });
        group.bench_with_input(BenchmarkId::new("at_least_2", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(tagg::at_least(&periods, 2)).period_count())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    index_vs_scan,
    hash_vs_nested_loop,
    temporal_aggregation
);
criterion_main!(benches);
