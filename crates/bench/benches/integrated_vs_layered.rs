//! E5 — the paper's architectural claim: integrated (DataBlade) temporal
//! support vs a TimeDB-style layered translation, on identical workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tip_bench::{
    experiment_now, run_layered_self_join, run_tip_self_join, setup_layered, setup_tip,
    sweep_config, tip_window_sql,
};
use tip_core::{Chronon, ResolvedPeriod};

fn self_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("self_join");
    group.sample_size(20);
    for n in [100usize, 400, 1600] {
        let cfg = sweep_config(n);
        let tip = setup_tip(&cfg);
        group.bench_with_input(BenchmarkId::new("tip", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(run_tip_self_join(&tip).0))
        });
        let mut layered = setup_layered(&cfg);
        group.bench_with_input(BenchmarkId::new("layered", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(run_layered_self_join(&mut layered).0))
        });
    }
    group.finish();
}

fn window_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_selection");
    group.sample_size(20);
    let w = ResolvedPeriod::new(
        Chronon::from_ymd(1998, 1, 1).unwrap(),
        Chronon::from_ymd(1998, 12, 31).unwrap(),
    )
    .unwrap();
    let _ = experiment_now();
    for n in [200usize, 1000, 4000] {
        let cfg = sweep_config(n);
        let tip = setup_tip(&cfg);
        let sql = tip_window_sql(w);
        group.bench_with_input(BenchmarkId::new("tip", n), &n, |bench, _| {
            bench.iter(|| tip.session.query(&sql).unwrap().rows.len())
        });
        let mut layered = setup_layered(&cfg);
        group.bench_with_input(BenchmarkId::new("layered", n), &n, |bench, _| {
            bench.iter(|| {
                layered
                    .overlap_selection("Prescription", &["patient", "drug"], w)
                    .unwrap()
                    .rows
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, self_join, window_selection);
criterion_main!(benches);
