//! Readiness polling over raw OS syscalls.
//!
//! The workspace vendors no libc/mio crate, so this module declares the
//! handful of `extern "C"` entry points the reactor needs: `epoll` on
//! Linux (O(ready) wakeups — the 10k-connection target makes `poll`'s
//! O(registered) per-call scan a real cost), a `poll(2)` fallback on
//! other Unixes, and `setrlimit` so the bench harness can lift the
//! file-descriptor ceiling before opening tens of thousands of sockets.
//!
//! The API is deliberately tiny: register/modify/deregister a raw fd
//! under a `u64` token, and wait for [`Event`]s. Both the server's
//! reactor and `netload`'s multiplexed client driver sit on top of it.

/// Interest in readability.
pub const EV_READ: u32 = 0b01;
/// Interest in writability.
pub const EV_WRITE: u32 = 0b10;

/// One readiness event. `hangup` flags error/EOF conditions the OS
/// reports regardless of registered interest; consumers usually treat
/// it like readability (the next read returns 0 or an error).
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, EV_READ, EV_WRITE};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    // The kernel packs struct epoll_event only on x86/x86_64; every
    // other Linux arch lays it out with natural alignment (16 bytes,
    // 4 bytes of padding after `events`). The repr must match the
    // kernel's per-arch layout or epoll_wait writes events at the
    // wrong stride into `scratch` — so gate packing exactly the way
    // libc does.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const _: () = assert!(
        std::mem::size_of::<EpollEvent>()
            == if cfg!(any(target_arch = "x86", target_arch = "x86_64")) {
                12
            } else {
                16
            }
    );

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    pub struct Poller {
        epfd: i32,
        scratch: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd,
                scratch: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest_to_epoll(interest),
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(())
            }
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let ms = timeout.map_or(-1i32, |d| d.as_millis().min(i32::MAX as u128) as i32);
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.scratch.as_mut_ptr(),
                    self.scratch.len() as i32,
                    ms,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for ev in &self.scratch[..n as usize] {
                let bits = { ev.events };
                let token = { ev.data };
                out.push(Event {
                    token,
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }

    fn interest_to_epoll(interest: u32) -> u32 {
        let mut bits = 0;
        if interest & EV_READ != 0 {
            bits |= EPOLLIN;
        }
        if interest & EV_WRITE != 0 {
            bits |= EPOLLOUT;
        }
        bits
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::{Event, EV_READ, EV_WRITE};
    use std::collections::HashMap;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u32, timeout: i32) -> i32;
    }

    /// Stateless-`poll(2)` fallback: registrations live in a map and
    /// the fd array is rebuilt per wait. O(registered) per call — fine
    /// for the non-Linux dev loop, not for the 10k benchmark.
    pub struct Poller {
        regs: HashMap<RawFd, (u64, u32)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                regs: HashMap::new(),
            })
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
            self.regs.insert(fd, (token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
            self.regs.insert(fd, (token, interest));
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.regs.remove(&fd);
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let mut fds: Vec<PollFd> = self
                .regs
                .iter()
                .map(|(&fd, &(_, interest))| PollFd {
                    fd,
                    events: {
                        let mut e = 0i16;
                        if interest & EV_READ != 0 {
                            e |= POLLIN;
                        }
                        if interest & EV_WRITE != 0 {
                            e |= POLLOUT;
                        }
                        e
                    },
                    revents: 0,
                })
                .collect();
            let ms = timeout.map_or(-1i32, |d| d.as_millis().min(i32::MAX as u128) as i32);
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u32, ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for pfd in &fds {
                if pfd.revents == 0 {
                    continue;
                }
                let token = self.regs[&pfd.fd].0;
                out.push(Event {
                    token,
                    readable: pfd.revents & POLLIN != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    hangup: pfd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
                });
            }
            Ok(())
        }
    }
}

pub use sys::Poller;

#[repr(C)]
struct Rlimit {
    cur: u64,
    max: u64,
}

#[cfg(target_os = "linux")]
const RLIMIT_NOFILE: i32 = 7;
#[cfg(all(unix, not(target_os = "linux")))]
const RLIMIT_NOFILE: i32 = 8;

extern "C" {
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
}

/// Best-effort raise of the open-file soft limit to at least `want`
/// descriptors (also raising the hard limit when the process may).
/// Returns the effective soft limit. A 10k-connection benchmark needs
/// ~2 fds per connection (client + server end) plus slack; the default
/// soft limit of 1024 on many systems would otherwise fail `accept`
/// with EMFILE long before the interesting part.
pub fn raise_nofile_limit(want: u64) -> u64 {
    let mut cur = Rlimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut cur) } != 0 {
        return 0;
    }
    if cur.cur >= want {
        return cur.cur;
    }
    // Try the full ask (root may raise the hard limit too), then fall
    // back to whatever headroom the existing hard limit allows.
    let ambitious = Rlimit {
        cur: want,
        max: cur.max.max(want),
    };
    if unsafe { setrlimit(RLIMIT_NOFILE, &ambitious) } == 0 {
        return want;
    }
    let capped = Rlimit {
        cur: want.min(cur.max),
        max: cur.max,
    };
    if unsafe { setrlimit(RLIMIT_NOFILE, &capped) } == 0 {
        return capped.cur;
    }
    cur.cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Duration;

    #[test]
    fn poller_reports_readability() {
        let (mut a, mut b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut p = Poller::new().unwrap();
        p.register(b.as_raw_fd(), 7, EV_READ).unwrap();

        let mut events = Vec::new();
        p.wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "nothing written yet");

        a.write_all(b"x").unwrap();
        p.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 1);
        p.deregister(b.as_raw_fd()).unwrap();
    }

    #[test]
    fn poller_reports_writability_and_modify() {
        let (a, _b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        let mut p = Poller::new().unwrap();
        p.register(a.as_raw_fd(), 1, EV_READ).unwrap();
        p.modify(a.as_raw_fd(), 1, EV_READ | EV_WRITE).unwrap();
        let mut events = Vec::new();
        p.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));
    }

    #[test]
    fn nofile_limit_is_queryable() {
        // Asking for less than the current limit is a no-op returning
        // the current value; never goes backwards.
        let n = raise_nofile_limit(8);
        assert!(n >= 8);
    }
}
