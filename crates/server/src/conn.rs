//! Per-connection state shared between the reactor and the worker pool.
//!
//! A connection splits in two once its handshake completes: the reactor
//! keeps the read side (socket, frame accumulator) privately, while the
//! [`ConnShared`] here is reachable from both the reactor and whichever
//! worker is servicing the connection's statement queue.
//!
//! **Lock order: `queue` before `out`.** Whenever both mutexes are
//! held, the queue lock is taken first. Park/unpark decisions and the
//! flush that informs them happen inside one queue+out critical
//! section, so a worker deciding to park and the reactor deciding to
//! unpark are linearized by the queue lock — neither can strand a
//! connection with requests queued and nobody scheduled to run them.
//! Taking `out` alone (mid-statement spills, pre-handshake writes) is
//! always allowed.

use minidb::{DbError, Session};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Write};
use std::net::TcpStream;
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;

/// Non-owning write handle to the connection socket — the whole server
/// spends **one** fd per connection. The reactor (or, after detach,
/// the subscriber thread) owns the `TcpStream`; this is just its raw
/// fd. Safety comes from the `out` lock: every write happens under it,
/// and the owner marks the outbox `dead` under that same lock before
/// closing the fd, so a `WriteHalf` can never touch a closed (or
/// kernel-recycled) descriptor.
pub(crate) struct WriteHalf(RawFd);

impl WriteHalf {
    pub(crate) fn new(stream: &TcpStream) -> WriteHalf {
        WriteHalf(stream.as_raw_fd())
    }

    pub(crate) fn write(&self, buf: &[u8]) -> io::Result<usize> {
        extern "C" {
            fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        }
        let n = unsafe { write(self.0, buf.as_ptr(), buf.len()) };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(n as usize)
        }
    }
}

/// One unit of work on a connection's statement queue.
pub(crate) enum Request {
    /// A decoded request frame: tag + body.
    Frame(u8, Vec<u8>),
    /// End of input. `Some(e)` sends a final typed error (malformed
    /// stream); `None` is a clean EOF. Always the queue's last entry.
    Shut(Option<DbError>),
}

/// Outgoing bytes for one connection, flushed opportunistically by
/// whoever holds the lock (worker after a statement, reactor on
/// EPOLLOUT). `sent` is the flushed prefix of `buf`.
pub(crate) struct OutBuf {
    pub buf: Vec<u8>,
    pub sent: usize,
    /// The reactor has (or is about to get) EV_WRITE interest armed.
    pub want_pollout: bool,
    /// Close the socket once the buffer drains.
    pub closing: bool,
    /// The socket died; all further output is discarded.
    pub dead: bool,
}

impl OutBuf {
    pub(crate) fn pending(&self) -> usize {
        self.buf.len() - self.sent
    }
}

/// The statement queue plus the scheduling flags that keep exactly one
/// worker servicing a connection at a time.
pub(crate) struct ReqQueue {
    pub reqs: VecDeque<Request>,
    /// Total body bytes across queued `Frame`s — bounds memory even
    /// when every queued frame is near MAX_FRAME.
    pub queued_bytes: usize,
    /// A worker owns this connection (it is on the run queue or being
    /// serviced). Cleared only by the owning worker.
    pub scheduled: bool,
    /// Output exceeded the write budget: stop servicing until the
    /// reactor drains the outbox below the low-water mark.
    pub parked: bool,
    /// The reactor dropped read interest because the queue is full.
    pub paused_read: bool,
    /// SUBSCRIBE arrived: no further input is parsed as statements.
    pub detached: bool,
}

/// Input-queue byte bounds: stop reading above the high-water mark,
/// resume below the low one. High must exceed MAX_FRAME or a single
/// maximal frame could never be queued.
pub(crate) const INPUT_BYTES_HIGH: usize = 32 << 20;
pub(crate) const INPUT_BYTES_LOW: usize = 16 << 20;

impl ReqQueue {
    /// Queue too full to accept more parsed frames?
    pub(crate) fn is_full(&self, max_pipeline: usize) -> bool {
        self.reqs.len() >= max_pipeline || self.queued_bytes > INPUT_BYTES_HIGH
    }

    /// Drained enough for the reactor to resume reading?
    pub(crate) fn can_resume(&self, max_pipeline: usize) -> bool {
        self.reqs.len() <= max_pipeline / 2 && self.queued_bytes <= INPUT_BYTES_LOW
    }
}

/// Session-scoped execution state. Guarded by a mutex only for `Sync`:
/// the `scheduled` flag already guarantees a single servicer.
pub(crate) struct ExecState {
    pub session: Session,
    /// Server-side prepared statements: wire id → validated SQL.
    pub prepared: HashMap<u64, String>,
    pub next_prepared_id: u64,
}

/// The reactor/worker-shared half of a connection.
pub(crate) struct ConnShared {
    pub id: u64,
    /// Negotiated protocol version.
    pub version: u16,
    /// Write side of the connection socket: the same fd the reactor
    /// owns for reads (nonblocking), not a dup — one fd per connection.
    pub(crate) wstream: WriteHalf,
    pub out: Mutex<OutBuf>,
    pub queue: Mutex<ReqQueue>,
    pub exec: Mutex<ExecState>,
}

impl ConnShared {
    pub(crate) fn new(id: u64, version: u16, stream: &TcpStream, session: Session) -> ConnShared {
        ConnShared {
            id,
            version,
            wstream: WriteHalf::new(stream),
            out: Mutex::new(OutBuf {
                buf: Vec::new(),
                sent: 0,
                want_pollout: false,
                closing: false,
                dead: false,
            }),
            queue: Mutex::new(ReqQueue {
                reqs: VecDeque::new(),
                queued_bytes: 0,
                scheduled: false,
                parked: false,
                paused_read: false,
                detached: false,
            }),
            exec: Mutex::new(ExecState {
                session,
                prepared: HashMap::new(),
                next_prepared_id: 1,
            }),
        }
    }

    /// Mid-statement output spill: append + best-effort flush without a
    /// parking decision (that happens once per statement, at commit).
    /// Takes only the `out` lock, so it never blocks the reactor's
    /// enqueue path.
    pub(crate) fn spill(&self, bytes: &[u8], ctrl: &ControlQueue) {
        let mut out = self.out.lock();
        if out.dead {
            return;
        }
        out.buf.extend_from_slice(bytes);
        flush_locked(&self.wstream, &mut out);
        if out.pending() > 0 && !out.dead && !out.want_pollout {
            out.want_pollout = true;
            drop(out);
            ctrl.push(Control::Pollout(self.id));
        }
    }
}

/// Writes as much of the outbox as the socket will take right now.
/// Never blocks; marks the buffer dead on hard errors. Fully-flushed
/// buffers reset; otherwise the sent prefix is trimmed once it grows
/// past a megabyte so a slowly-draining outbox doesn't pin its history.
pub(crate) fn flush_locked(stream: &WriteHalf, out: &mut OutBuf) {
    if out.dead {
        return;
    }
    while out.sent < out.buf.len() {
        match stream.write(&out.buf[out.sent..]) {
            Ok(0) => {
                out.dead = true;
                break;
            }
            Ok(n) => out.sent += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                out.dead = true;
                break;
            }
        }
    }
    if out.sent == out.buf.len() {
        out.buf.clear();
        out.sent = 0;
    } else if out.sent >= 1 << 20 {
        out.buf.drain(..out.sent);
        out.sent = 0;
    }
}

/// Worker → reactor notifications, drained on each wake.
pub(crate) enum Control {
    /// Arm EV_WRITE interest for this connection: its outbox has
    /// pending bytes the nonblocking flush couldn't place.
    Pollout(u64),
    /// The statement queue drained below the low-water mark: re-parse
    /// buffered frames and re-arm read interest.
    ResumeRead(u64),
    /// The connection is done (BYE, protocol fault, dead socket):
    /// close it once the outbox drains.
    Closing(u64),
    /// SUBSCRIBE accepted: hand the socket to a dedicated replication
    /// feed thread starting at (generation, offset).
    Detach {
        conn: u64,
        generation: u64,
        offset: u64,
    },
}

/// The reactor's mailbox plus the wake pipe that interrupts its poll.
pub(crate) struct ControlQueue {
    inbox: Mutex<Vec<Control>>,
    /// Nonblocking write end of the wake pipe; a full pipe means the
    /// reactor is already guaranteed to wake, so errors are ignored.
    wake_tx: UnixStream,
}

impl ControlQueue {
    pub(crate) fn new(wake_tx: UnixStream) -> ControlQueue {
        ControlQueue {
            inbox: Mutex::new(Vec::new()),
            wake_tx,
        }
    }

    pub(crate) fn push(&self, c: Control) {
        self.inbox.lock().push(c);
        self.wake();
    }

    pub(crate) fn wake(&self) {
        let _ = (&self.wake_tx).write(&[1]);
    }

    /// Swaps the inbox out under the lock; callers process the batch
    /// without holding it (avoids inversion with conn locks).
    pub(crate) fn drain(&self) -> Vec<Control> {
        std::mem::take(&mut *self.inbox.lock())
    }
}
