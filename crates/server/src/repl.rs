//! Replica-side WAL streaming: a background thread that connects to
//! the primary, subscribes from the last applied `(generation, offset)`,
//! applies shipped chunks through the recovery replay path, and acks
//! applied watermarks so the primary can hold commits semi-synchronously.
//!
//! The connection is re-established with jittered exponential backoff
//! on any failure; a torn mid-chunk stream discards the partial frame
//! and resumes from the applier's committed position, so the replica's
//! state is byte-identical to one that never lost the stream.

use minidb::{Database, ReplicaApplier};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant, SystemTime};
use tip_client::protocol::{self, req, resp, Hello};

/// Reconnect backoff: `BASE * 2^attempt` capped at `MAX`, plus jitter.
const BACKOFF_BASE: Duration = Duration::from_millis(100);
const BACKOFF_MAX: Duration = Duration::from_secs(2);

/// How long the drain pass keeps reading already-sent frames after a
/// stop/promote request before letting go of the socket.
const DRAIN_WINDOW: Duration = Duration::from_millis(500);

/// A running replication stream. Dropping it stops the thread; use
/// [`ReplicationClient::stop_and_drain`] for an orderly promotion.
pub struct ReplicationClient {
    db: Arc<Database>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ReplicationClient {
    /// Starts streaming from `primary` (a `host:port` address) into
    /// `db`, which should already be marked read-only.
    pub fn start(db: &Arc<Database>, primary: impl Into<String>) -> ReplicationClient {
        let primary = primary.into();
        let stop = Arc::new(AtomicBool::new(false));
        let t_db = Arc::clone(db);
        let t_stop = Arc::clone(&stop);
        let thread = thread::Builder::new()
            .name("tip-repl-client".to_string())
            .spawn(move || run(t_db, &primary, &t_stop))
            .expect("spawn replication client thread");
        ReplicationClient {
            db: Arc::clone(db),
            stop,
            thread: Some(thread),
        }
    }

    /// Promotion step one: stop the stream after draining every frame
    /// the primary already sent (tolerating a dead primary), and return
    /// the newest primary commit sequence this node has applied.
    pub fn stop_and_drain(mut self) -> u64 {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.db.repl_stats().last_seq()
    }
}

impl Drop for ReplicationClient {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Why one subscription attempt ended.
enum StreamEnd {
    /// Stop was requested and the stream has been drained.
    Stop,
    /// Connection failed or died; reconnect from the applier's
    /// position. `progressed` is true when this stream applied at least
    /// one frame before dying — a healthy long-lived stream that tore,
    /// not a primary that keeps refusing us.
    Lost { progressed: bool },
}

fn run(db: Arc<Database>, primary: &str, stop: &AtomicBool) {
    let mut applier = ReplicaApplier::new(&db);
    let mut attempt: u32 = 0;
    while !stop.load(Ordering::SeqCst) {
        match stream_once(&db, primary, &mut applier, stop) {
            StreamEnd::Stop => break,
            StreamEnd::Lost { progressed } => {
                // Anything mid-frame is a torn chunk: drop it and let
                // the next subscription resume at the committed offset.
                applier.discard_partial();
                db.repl_stats().record_reconnect();
                if progressed {
                    // The stream was working before it died: reconnect
                    // eagerly instead of inheriting the backoff ramp of
                    // every disconnect over this replica's lifetime.
                    attempt = 0;
                }
                backoff_sleep(attempt, stop);
                attempt = attempt.saturating_add(1);
            }
        }
    }
}

/// One full subscription: handshake, SUBSCRIBE at the applier's
/// position, then apply/ack until the stream dies or stop is requested.
fn stream_once(
    db: &Arc<Database>,
    primary: &str,
    applier: &mut ReplicaApplier,
    stop: &AtomicBool,
) -> StreamEnd {
    let lost = |progressed| StreamEnd::Lost { progressed };
    let Ok(mut stream) = TcpStream::connect(primary) else {
        return lost(false);
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));

    let hello = Hello {
        version: protocol::VERSION,
        now_unix: None,
    };
    if send(&mut stream, req::HELLO, &protocol::encode_hello(&hello)).is_err() {
        return lost(false);
    }
    let negotiated = match protocol::read_frame(&mut stream) {
        Ok((resp::HELLO_OK, body)) => match protocol::decode_hello_ok(&body) {
            Ok((version, _banner)) => version,
            Err(_) => return lost(false),
        },
        Ok(_) | Err(_) => return lost(false),
    };
    if negotiated < 6 {
        eprintln!(
            "tip-server: primary {primary} speaks protocol v{negotiated}, replication needs v6"
        );
        return lost(false);
    }

    let (generation, offset) = applier.position();
    if send(
        &mut stream,
        req::SUBSCRIBE,
        &protocol::encode_subscribe(generation, offset),
    )
    .is_err()
    {
        return lost(false);
    }

    // Catch-up snapshot pieces accumulate here until `is_last`.
    let mut snap_buf: Vec<u8> = Vec::new();
    let mut progressed = false;
    loop {
        if stop.load(Ordering::SeqCst) {
            drain(&mut stream, applier, db);
            return StreamEnd::Stop;
        }
        // Short peek so stop requests are noticed while idle; the full
        // read timeout applies once a frame starts arriving.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
        let mut first = [0u8; 1];
        match stream.peek(&mut first) {
            Ok(0) => return lost(progressed),
            Ok(_) => {}
            Err(e) if would_block(&e) => continue,
            Err(_) => return lost(progressed),
        }
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let (tag, body) = match protocol::read_frame(&mut stream) {
            Ok(f) => f,
            Err(_) => return lost(progressed),
        };
        if !apply_frame(db, applier, &mut stream, &mut snap_buf, tag, &body) {
            return lost(progressed);
        }
        progressed = true;
    }
}

/// Applies one replication frame. Returns `false` when the stream must
/// be abandoned and re-established.
fn apply_frame(
    db: &Arc<Database>,
    applier: &mut ReplicaApplier,
    stream: &mut TcpStream,
    snap_buf: &mut Vec<u8>,
    tag: u8,
    body: &[u8],
) -> bool {
    match tag {
        resp::SNAPSHOT_CHUNK => {
            let Ok((generation, is_last, bytes)) = protocol::decode_snapshot_chunk(body) else {
                return false;
            };
            snap_buf.extend_from_slice(&bytes);
            if is_last {
                let whole = std::mem::take(snap_buf);
                if let Err(e) = applier.reset_to_snapshot(generation, &whole) {
                    eprintln!("tip-server: snapshot catch-up failed: {e}");
                    return false;
                }
            }
            true
        }
        resp::WAL_CHUNK => {
            let Ok((gen, offset, watermark, bytes)) = protocol::decode_wal_chunk(body) else {
                return false;
            };
            // The chunk must continue exactly where the stream left
            // off: the applier's committed position plus any buffered
            // partial-transaction tail. A mismatch means primary-side
            // accounting skew or frame reordering — fail fast and
            // resubscribe from the committed position instead of
            // corrupting state (or dying later on a confusing CRC or
            // decode error).
            let (want_gen, committed) = applier.position();
            let want_offset = committed + applier.buffered() as u64;
            if gen != want_gen || offset != want_offset {
                eprintln!(
                    "tip-server: replication stream discontinuity: chunk at \
                     ({gen}, {offset}), expected ({want_gen}, {want_offset}); resubscribing"
                );
                return false;
            }
            if let Err(e) = applier.feed(&bytes) {
                // Corrupt frame: resync from the committed position (the
                // primary re-reads the log from disk on resubscribe).
                eprintln!("tip-server: replication apply failed: {e}");
                return false;
            }
            // `watermark > 0` means these bytes reach the primary's
            // durable frontier; once every commit in them is applied
            // (nothing buffered), the replica can vouch for them.
            if watermark > 0 && applier.is_drained() {
                let (generation, offset) = applier.position();
                db.repl_stats().set_last_seq(watermark);
                if send(
                    stream,
                    req::REPL_ACK,
                    &protocol::encode_repl_ack(generation, offset, watermark),
                )
                .is_err()
                {
                    return false;
                }
            }
            true
        }
        resp::ERROR => {
            if let Ok(e) = protocol::decode_error(body) {
                eprintln!("tip-server: primary refused replication: {e}");
            }
            false
        }
        _ => false,
    }
}

/// Final pass after a stop/promote request: keep applying frames the
/// primary already sent until the socket runs dry (or the window
/// closes). A dead primary — the promotion case — just runs dry fast.
fn drain(stream: &mut TcpStream, applier: &mut ReplicaApplier, db: &Arc<Database>) {
    let deadline = Instant::now() + DRAIN_WINDOW;
    let mut snap_buf: Vec<u8> = Vec::new();
    while Instant::now() < deadline {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
        let mut first = [0u8; 1];
        match stream.peek(&mut first) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        match protocol::read_frame(stream) {
            Ok((tag, body)) => {
                if !apply_frame(db, applier, stream, &mut snap_buf, tag, &body) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    applier.discard_partial();
}

fn would_block(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn send(stream: &mut TcpStream, tag: u8, body: &[u8]) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(5 + body.len());
    protocol::write_frame(&mut frame, tag, body)?;
    stream.write_all(&frame)
}

/// Sleeps `BASE * 2^attempt` (capped) plus up to 50% jitter, waking
/// early on stop. The jitter source is the wall clock's subsecond
/// nanos — enough to decorrelate reconnect storms without a PRNG.
fn backoff_sleep(attempt: u32, stop: &AtomicBool) {
    let base = BACKOFF_BASE
        .saturating_mul(1u32 << attempt.min(5))
        .min(BACKOFF_MAX);
    let nanos = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| u64::from(d.subsec_nanos()))
        .unwrap_or(0);
    let jitter = Duration::from_millis(nanos % (base.as_millis() as u64 / 2).max(1));
    let deadline = Instant::now() + base + jitter;
    while Instant::now() < deadline {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        thread::sleep(Duration::from_millis(20));
    }
}
