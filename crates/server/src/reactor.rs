//! The reactor: one thread owning the listener, every connection
//! socket, and a wake pipe, dispatching readiness events.
//!
//! Reads are nonblocking and feed a per-connection
//! [`FrameAccumulator`]; complete frames enqueue onto the connection's
//! statement queue and the connection is scheduled onto the worker
//! pool. Writes the workers couldn't complete drain here under
//! EPOLLOUT. Admission is an atomic reserve against `live_count`
//! (over-cap connections get the typed BUSY after their HELLO, exactly
//! as before), and graceful shutdown drains queued statements before
//! closing anything.

use crate::conn::{flush_locked, ConnShared, Control, ControlQueue, Request};
use crate::net::{Event, Poller, EV_READ, EV_WRITE};
use crate::worker::RunQueue;
use crate::{retire_metrics, serve_subscriber, Shared};
use minidb::DbError;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use tip_client::protocol::{self, req, resp, FrameAccumulator};

const LISTENER_TOKEN: u64 = u64::MAX;
const WAKE_TOKEN: u64 = u64::MAX - 1;

/// Idle/stall sweep cadence.
const SWEEP_INTERVAL: Duration = Duration::from_secs(2);

/// A connection as the reactor sees it. Pre-handshake output (HELLO_OK
/// errors, BUSY) goes through `pre_out`; once `Ready`, all output
/// lives in the shared outbox.
struct ConnIo {
    /// Connection id — doubles as the poller token.
    id: u64,
    stream: TcpStream,
    acc: FrameAccumulator,
    phase: Phase,
    interest: u32,
    /// EV_READ currently wanted (false once paused, detached, or EOF).
    reading: bool,
    /// No further input will ever be consumed (EOF, fault, detach).
    input_done: bool,
    pre_out: Vec<u8>,
    pre_sent: usize,
    /// Close as soon as `pre_out` drains (pre-handshake rejects).
    close_after_flush: bool,
    last_activity: Instant,
}

enum Phase {
    /// Waiting for HELLO.
    Handshake,
    /// Over the connection cap: drain one frame, answer BUSY, close.
    Reject,
    /// Negotiated; statements flow through the queue/worker machinery.
    Ready(Arc<ConnShared>),
}

pub(crate) fn run_reactor(
    listener: TcpListener,
    wake_rx: UnixStream,
    shared: Arc<Shared>,
    runq: Arc<RunQueue>,
    ctrl: Arc<ControlQueue>,
) {
    let mut poller = match Poller::new() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("tip-server: reactor poller init failed: {e}");
            return;
        }
    };
    let _ = wake_rx.set_nonblocking(true);
    if poller
        .register(listener.as_raw_fd(), LISTENER_TOKEN, EV_READ)
        .is_err()
        || poller
            .register(wake_rx.as_raw_fd(), WAKE_TOKEN, EV_READ)
            .is_err()
    {
        eprintln!("tip-server: reactor registration failed");
        return;
    }

    let mut listener = Some(listener);
    let mut conns: HashMap<u64, ConnIo> = HashMap::new();
    let mut events: Vec<Event> = Vec::new();
    let mut draining = false;
    let mut drain_deadline = Instant::now();
    let mut last_sweep = Instant::now();

    loop {
        let timeout = if draining {
            Duration::from_millis(10)
        } else {
            Duration::from_millis(500)
        };
        events.clear();
        let _ = poller.wait(&mut events, Some(timeout));

        for ev in events.iter().copied() {
            match ev.token {
                WAKE_TOKEN => drain_wake(&wake_rx),
                LISTENER_TOKEN => {
                    if let Some(l) = listener.as_ref() {
                        accept_burst(l, &mut conns, &mut poller, &shared);
                    }
                }
                id => handle_conn_event(id, ev, &mut conns, &mut poller, &shared, &runq, &ctrl),
            }
        }

        for c in ctrl.drain() {
            handle_control(c, &mut conns, &mut poller, &shared, &runq, draining);
        }

        if shared.shutdown.load(Ordering::SeqCst) && !draining {
            draining = true;
            drain_deadline = Instant::now() + shared.cfg.drain_timeout;
            if let Some(l) = listener.take() {
                let _ = poller.deregister(l.as_raw_fd());
            }
            begin_drain(&mut conns, &mut poller, &shared);
        }

        if draining {
            let force = Instant::now() >= drain_deadline;
            reap_drained(&mut conns, &mut poller, &shared, force);
            if conns.is_empty() {
                break;
            }
            continue;
        }

        if last_sweep.elapsed() >= SWEEP_INTERVAL {
            sweep(&mut conns, &mut poller, &shared);
            last_sweep = Instant::now();
        }
    }
}

fn drain_wake(wake_rx: &UnixStream) {
    let mut buf = [0u8; 256];
    while let Ok(n) = (&*wake_rx).read(&mut buf) {
        if n < buf.len() {
            break;
        }
    }
}

fn accept_burst(
    listener: &TcpListener,
    conns: &mut HashMap<u64, ConnIo>,
    poller: &mut Poller,
    shared: &Arc<Shared>,
) {
    loop {
        let (stream, _peer) = match listener.accept() {
            Ok(x) => x,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(_) => break,
        };
        shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        // Atomic admission: reserve the slot, roll back on reject. The
        // reactor is single-threaded, but keeping the reserve atomic
        // means other admitters (none today) can never overshoot.
        let slot = shared.live_count.fetch_add(1, Ordering::SeqCst);
        let phase = if slot >= shared.cfg.max_connections {
            shared.live_count.fetch_sub(1, Ordering::SeqCst);
            shared.stats.busy_rejects.fetch_add(1, Ordering::Relaxed);
            Phase::Reject
        } else {
            Phase::Handshake
        };
        let admitted = matches!(phase, Phase::Handshake);
        let id = shared.next_conn_id.fetch_add(1, Ordering::SeqCst);
        let io = ConnIo {
            id,
            stream,
            acc: FrameAccumulator::new(),
            phase,
            interest: EV_READ,
            reading: true,
            input_done: false,
            pre_out: Vec::new(),
            pre_sent: 0,
            close_after_flush: false,
            last_activity: Instant::now(),
        };
        if poller.register(io.stream.as_raw_fd(), id, EV_READ).is_err() {
            if admitted {
                shared.live_count.fetch_sub(1, Ordering::SeqCst);
            }
            continue;
        }
        conns.insert(id, io);
    }
}

fn handle_conn_event(
    id: u64,
    ev: Event,
    conns: &mut HashMap<u64, ConnIo>,
    poller: &mut Poller,
    shared: &Arc<Shared>,
    runq: &Arc<RunQueue>,
    ctrl: &Arc<ControlQueue>,
) {
    let close = {
        let Some(io) = conns.get_mut(&id) else {
            return;
        };
        io.last_activity = Instant::now();
        let mut close = false;
        if ev.writable {
            close = on_writable(io, poller, shared, runq);
        }
        if !close && (ev.readable || ev.hangup) {
            if io.reading {
                close = on_readable(io, id, poller, shared, runq, ctrl);
            } else if ev.hangup {
                // Level-triggered HUP on a connection we've stopped
                // reading would spin forever: close it outright.
                close = true;
            }
        }
        close
    };
    if close {
        close_conn(id, conns, poller, shared);
    }
}

/// Flushes what the socket will take. Returns true when the connection
/// should close now (dead socket, or a close-after-flush completed).
fn on_writable(
    io: &mut ConnIo,
    poller: &mut Poller,
    shared: &Arc<Shared>,
    runq: &Arc<RunQueue>,
) -> bool {
    match &io.phase {
        Phase::Handshake | Phase::Reject => flush_pre(io, poller),
        Phase::Ready(conn) => {
            let conn = Arc::clone(conn);
            let mut sched = false;
            let (dead, pending, closing) = {
                let mut q = conn.queue.lock();
                let mut out = conn.out.lock();
                flush_locked(&conn.wstream, &mut out);
                let pending = out.pending();
                if pending == 0 {
                    out.want_pollout = false;
                }
                // Unpark under queue→out: linearized with the worker's
                // park decision.
                if q.parked && (out.dead || pending <= shared.cfg.write_budget / 2) {
                    q.parked = false;
                    if !q.reqs.is_empty() && !q.scheduled && !out.dead {
                        q.scheduled = true;
                        sched = true;
                    }
                }
                (out.dead, pending, out.closing)
            };
            if sched {
                runq.push(Arc::clone(&conn));
            }
            if dead || (closing && pending == 0) {
                return true;
            }
            if pending == 0 && io.interest & EV_WRITE != 0 {
                set_interest(io, poller, io.interest & !EV_WRITE);
            }
            false
        }
    }
}

/// Drains `pre_out` (handshake/reject output). Returns true to close.
fn flush_pre(io: &mut ConnIo, poller: &mut Poller) -> bool {
    while io.pre_sent < io.pre_out.len() {
        match (&io.stream).write(&io.pre_out[io.pre_sent..]) {
            Ok(0) => return true,
            Ok(n) => io.pre_sent += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    if io.pre_sent == io.pre_out.len() {
        io.pre_out.clear();
        io.pre_sent = 0;
        if io.close_after_flush {
            return true;
        }
        if io.interest & EV_WRITE != 0 {
            set_interest(io, poller, io.interest & !EV_WRITE);
        }
    } else if io.interest & EV_WRITE == 0 {
        set_interest(io, poller, io.interest | EV_WRITE);
    }
    false
}

/// Reads until the socket would block, parsing frames as they
/// complete. Returns true when the connection should close now.
fn on_readable(
    io: &mut ConnIo,
    id: u64,
    poller: &mut Poller,
    shared: &Arc<Shared>,
    runq: &Arc<RunQueue>,
    ctrl: &Arc<ControlQueue>,
) -> bool {
    let mut buf = [0u8; 16384];
    loop {
        if !io.reading {
            return false;
        }
        match (&io.stream).read(&mut buf) {
            Ok(0) => return handle_eof(io, poller, runq),
            Ok(n) => {
                io.acc.extend(&buf[..n]);
                if parse_input(io, id, poller, shared, runq, ctrl) {
                    return true;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Hard read error: close with nothing sent, as before.
                return true;
            }
        }
    }
}

/// EOF at the transport. Pre-handshake connections close immediately;
/// ready connections finish their queued statements first.
fn handle_eof(io: &mut ConnIo, poller: &mut Poller, runq: &Arc<RunQueue>) -> bool {
    io.reading = false;
    io.input_done = true;
    match &io.phase {
        Phase::Handshake | Phase::Reject => true,
        Phase::Ready(conn) => {
            let conn = Arc::clone(conn);
            // A half-closed socket stays EPOLLIN-ready forever under
            // level triggering; without this drop the reactor would
            // busy-spin until the queued statements drain.
            set_interest(io, poller, io.interest & !EV_READ);
            enqueue_shut(&conn, None, runq);
            false
        }
    }
}

/// Parses every complete frame the accumulator holds, phase-aware.
/// Returns true when the connection should close immediately.
fn parse_input(
    io: &mut ConnIo,
    id: u64,
    poller: &mut Poller,
    shared: &Arc<Shared>,
    runq: &Arc<RunQueue>,
    ctrl: &Arc<ControlQueue>,
) -> bool {
    loop {
        match &io.phase {
            Phase::Reject => {
                // Drain the client's HELLO first: closing a socket with
                // unread data RSTs the peer before it can read BUSY.
                match io.acc.next_frame() {
                    Ok(None) => return false,
                    Ok(Some(_)) | Err(_) => {
                        let msg = format!(
                            "server busy: at its limit of {} connections",
                            shared.cfg.max_connections
                        );
                        queue_pre_frame(io, resp::BUSY, &protocol::encode_busy(&msg));
                        io.close_after_flush = true;
                        io.reading = false;
                        io.input_done = true;
                        // Any bytes the client sends after its HELLO
                        // would otherwise keep EPOLLIN asserted and
                        // spin the reactor while BUSY drains.
                        set_interest(io, poller, io.interest & !EV_READ);
                        return flush_pre(io, poller);
                    }
                }
            }
            Phase::Handshake => match io.acc.next_frame() {
                Ok(None) => return false,
                Ok(Some((req::HELLO, body))) => {
                    if let Some(close) = finish_handshake(io, id, &body, poller, shared, ctrl) {
                        return close;
                    }
                    // Ready now: loop to parse any pipelined frames that
                    // arrived in the same packet as the HELLO.
                }
                Ok(Some((_, _))) | Err(_) => {
                    return pre_error(
                        io,
                        poller,
                        &DbError::unavailable("handshake failed: expected HELLO"),
                    );
                }
            },
            Phase::Ready(conn) => {
                let conn = Arc::clone(conn);
                // Backpressure: a full queue pauses reading; the worker
                // sends ResumeRead when it drains past the low-water
                // mark.
                {
                    let mut q = conn.queue.lock();
                    if q.detached {
                        io.reading = false;
                        io.input_done = true;
                        set_interest(io, poller, io.interest & !EV_READ);
                        return false;
                    }
                    if q.is_full(shared.cfg.max_pipeline) {
                        if !q.paused_read {
                            q.paused_read = true;
                            shared.stats.read_pauses.fetch_add(1, Ordering::Relaxed);
                        }
                        io.reading = false;
                        set_interest(io, poller, io.interest & !EV_READ);
                        return false;
                    }
                }
                match io.acc.next_frame() {
                    Ok(None) => return false,
                    Err(why) => {
                        enqueue_shut(
                            &conn,
                            Some(DbError::unavailable(format!("malformed frame: {why}"))),
                            runq,
                        );
                        io.reading = false;
                        io.input_done = true;
                        set_interest(io, poller, io.interest & !EV_READ);
                        return false;
                    }
                    Ok(Some((tag, body))) => {
                        let detach = tag == req::SUBSCRIBE && conn.version >= 6;
                        enqueue_frame(&conn, tag, body, detach, shared, runq);
                        if detach {
                            // The socket now belongs to the replication
                            // feed; leave unread bytes in the
                            // accumulator for the subscriber thread.
                            io.reading = false;
                            io.input_done = true;
                            set_interest(io, poller, io.interest & !EV_READ);
                            return false;
                        }
                    }
                }
            }
        }
    }
}

/// Negotiates the HELLO and promotes the connection to `Ready`.
/// `Some(close)` reports a terminal outcome; `None` means promoted.
fn finish_handshake(
    io: &mut ConnIo,
    id: u64,
    body: &[u8],
    poller: &mut Poller,
    shared: &Arc<Shared>,
    ctrl: &Arc<ControlQueue>,
) -> Option<bool> {
    let hello = match protocol::decode_hello(body) {
        Ok(h) => h,
        Err(e) => return Some(pre_error(io, poller, &e)),
    };
    // Version negotiation: speak the highest version both sides (and
    // the configured cap) understand, refusing peers older than we can
    // serve.
    let ceiling = protocol::VERSION.min(shared.cfg.max_protocol_version);
    let negotiated = hello.version.min(ceiling);
    if negotiated < protocol::MIN_VERSION {
        return Some(pre_error(
            io,
            poller,
            &DbError::unavailable(format!(
                "unsupported protocol version {} (server speaks {}..={})",
                hello.version,
                protocol::MIN_VERSION,
                ceiling
            )),
        ));
    }
    let mut session = shared.db.session();
    session.set_now_unix(hello.now_unix);
    shared.live.lock().insert(id, session.metrics());
    // The write half shares the reactor's fd (no dup): one fd per
    // connection is what lets a 20k rlimit carry 10k clients with both
    // ends of the loopback in one fd table.
    let conn = Arc::new(ConnShared::new(id, negotiated, &io.stream, session));

    // HELLO_OK is the first frame on the shared outbox.
    let mut frame = Vec::new();
    let _ = protocol::write_frame(
        &mut frame,
        resp::HELLO_OK,
        &protocol::encode_hello_ok(negotiated, &shared.cfg.banner),
    );
    conn.spill(&frame, ctrl);
    if conn.out.lock().dead {
        retire_metrics(id, shared);
        return Some(true);
    }
    io.phase = Phase::Ready(conn);
    None
}

/// Queues a pre-handshake error frame and schedules close-after-flush.
/// Returns true when the connection can close right now.
fn pre_error(io: &mut ConnIo, poller: &mut Poller, e: &DbError) -> bool {
    // Pre-negotiation the peer's version is unknown, so the error
    // encodes at the current layout.
    queue_pre_frame(io, resp::ERROR, &protocol::encode_error(e));
    io.close_after_flush = true;
    io.reading = false;
    io.input_done = true;
    set_interest(io, poller, io.interest & !EV_READ);
    flush_pre(io, poller)
}

fn queue_pre_frame(io: &mut ConnIo, tag: u8, body: &[u8]) {
    let _ = protocol::write_frame(&mut io.pre_out, tag, body);
}

/// Enqueues a parsed frame and schedules the connection if no worker
/// owns it (and it isn't parked).
fn enqueue_frame(
    conn: &Arc<ConnShared>,
    tag: u8,
    body: Vec<u8>,
    detach: bool,
    shared: &Arc<Shared>,
    runq: &Arc<RunQueue>,
) {
    let mut sched = false;
    {
        let mut q = conn.queue.lock();
        if q.scheduled || !q.reqs.is_empty() {
            shared.stats.pipelined.fetch_add(1, Ordering::Relaxed);
        }
        q.queued_bytes += body.len();
        q.reqs.push_back(Request::Frame(tag, body));
        if detach {
            q.detached = true;
        }
        if !q.scheduled && !q.parked {
            q.scheduled = true;
            sched = true;
        }
    }
    if sched {
        runq.push(Arc::clone(conn));
    }
}

/// Enqueues the terminal `Shut` request (EOF or protocol fault).
fn enqueue_shut(conn: &Arc<ConnShared>, err: Option<DbError>, runq: &Arc<RunQueue>) {
    let mut sched = false;
    {
        let mut q = conn.queue.lock();
        if q.detached {
            return;
        }
        q.reqs.push_back(Request::Shut(err));
        if !q.scheduled && !q.parked {
            q.scheduled = true;
            sched = true;
        }
    }
    if sched {
        runq.push(Arc::clone(conn));
    }
}

fn handle_control(
    c: Control,
    conns: &mut HashMap<u64, ConnIo>,
    poller: &mut Poller,
    shared: &Arc<Shared>,
    runq: &Arc<RunQueue>,
    draining: bool,
) {
    match c {
        Control::Pollout(id) => {
            if let Some(io) = conns.get_mut(&id) {
                if io.interest & EV_WRITE == 0 {
                    set_interest(io, poller, io.interest | EV_WRITE);
                }
            }
        }
        Control::ResumeRead(id) => {
            let close = {
                let Some(io) = conns.get_mut(&id) else { return };
                resume_read(io, id, poller, shared, runq, draining)
            };
            if close {
                close_conn(id, conns, poller, shared);
            }
        }
        Control::Closing(id) => {
            let close = {
                let Some(io) = conns.get_mut(&id) else { return };
                if let Phase::Ready(conn) = &io.phase {
                    let out = conn.out.lock();
                    if out.dead || out.pending() == 0 {
                        true
                    } else {
                        // Flush the farewell under EPOLLOUT, then close.
                        drop(out);
                        if io.interest & EV_WRITE == 0 {
                            set_interest(io, poller, io.interest | EV_WRITE);
                        }
                        false
                    }
                } else {
                    true
                }
            };
            if close {
                close_conn(id, conns, poller, shared);
            }
        }
        Control::Detach {
            conn: id,
            generation,
            offset,
        } => {
            let mut handed_off = false;
            if let Some(io) = conns.remove(&id) {
                let _ = poller.deregister(io.stream.as_raw_fd());
                // Subscribers stop counting against the client cap the
                // moment they detach; they hold a subscriber slot
                // instead (reserved by the worker).
                shared.live_count.fetch_sub(1, Ordering::SeqCst);
                if let Phase::Ready(conn) = io.phase {
                    let residual = io.acc.into_residual();
                    spawn_subscriber(io.stream, conn, residual, generation, offset, shared);
                    handed_off = true;
                }
            }
            if !handed_off {
                // The connection died (sweep, hangup, dead socket)
                // between the worker reserving its subscriber slot and
                // this Detach draining; release the slot or the
                // effective max_subscribers cap shrinks forever.
                shared.stats.subscribers.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// Re-parses buffered frames after the worker drained the queue, then
/// re-arms read interest unless input already ended.
fn resume_read(
    io: &mut ConnIo,
    id: u64,
    poller: &mut Poller,
    shared: &Arc<Shared>,
    runq: &Arc<RunQueue>,
    draining: bool,
) -> bool {
    if io.input_done {
        return false;
    }
    io.reading = true;
    // The accumulator may hold complete frames we refused to parse
    // while the queue was full; surface them before touching the
    // socket.
    if parse_input_resume(io, id, poller, shared, runq) {
        return true;
    }
    if io.reading && !draining && io.interest & EV_READ == 0 {
        set_interest(io, poller, io.interest | EV_READ);
    }
    if draining {
        io.reading = false;
    }
    false
}

/// Ready-phase-only re-parse (resume path): the connection is already
/// negotiated, so the handshake arms of `parse_input` cannot fire.
fn parse_input_resume(
    io: &mut ConnIo,
    _id: u64,
    poller: &mut Poller,
    shared: &Arc<Shared>,
    runq: &Arc<RunQueue>,
) -> bool {
    let Phase::Ready(conn) = &io.phase else {
        return false;
    };
    let conn = Arc::clone(conn);
    loop {
        {
            let mut q = conn.queue.lock();
            if q.detached {
                io.reading = false;
                io.input_done = true;
                return false;
            }
            if q.is_full(shared.cfg.max_pipeline) {
                if !q.paused_read {
                    q.paused_read = true;
                    shared.stats.read_pauses.fetch_add(1, Ordering::Relaxed);
                }
                io.reading = false;
                return false;
            }
        }
        match io.acc.next_frame() {
            Ok(None) => return false,
            Err(why) => {
                enqueue_shut(
                    &conn,
                    Some(DbError::unavailable(format!("malformed frame: {why}"))),
                    runq,
                );
                io.reading = false;
                io.input_done = true;
                set_interest(io, poller, io.interest & !EV_READ);
                return false;
            }
            Ok(Some((tag, body))) => {
                let detach = tag == req::SUBSCRIBE && conn.version >= 6;
                enqueue_frame(&conn, tag, body, detach, shared, runq);
                if detach {
                    io.reading = false;
                    io.input_done = true;
                    return false;
                }
            }
        }
    }
}

fn set_interest(io: &mut ConnIo, poller: &mut Poller, interest: u32) {
    if io.interest == interest {
        return;
    }
    // Interest must never go empty while registered (epoll would sit
    // silent but still deliver HUP; poll would report nothing): an
    // interest-less connection stays registered with zero events,
    // which both backends treat as "wait for hangup only".
    let fd = io.stream.as_raw_fd();
    if poller.modify(fd, io.id, interest).is_ok() {
        io.interest = interest;
    }
}

fn close_conn(
    id: u64,
    conns: &mut HashMap<u64, ConnIo>,
    poller: &mut Poller,
    shared: &Arc<Shared>,
) {
    let Some(io) = conns.remove(&id) else { return };
    let _ = poller.deregister(io.stream.as_raw_fd());
    let _ = io.stream.shutdown(Shutdown::Both);
    if let Phase::Ready(conn) = &io.phase {
        conn.out.lock().dead = true;
        retire_metrics(id, shared);
        shared.live_count.fetch_sub(1, Ordering::SeqCst);
    } else if matches!(io.phase, Phase::Handshake) {
        shared.live_count.fetch_sub(1, Ordering::SeqCst);
    }
    // Reject-phase connections never held a slot.
}

/// Hands a detached connection to a dedicated replication-feed thread:
/// flush whatever the pipelined responses left behind, replay residual
/// input frames, then run the blocking subscriber loop.
fn spawn_subscriber(
    stream: TcpStream,
    conn: Arc<ConnShared>,
    residual: Vec<u8>,
    generation: u64,
    offset: u64,
    shared: &Arc<Shared>,
) {
    let thread_shared = Arc::clone(shared);
    let id = conn.id;
    let handle = thread::Builder::new()
        .name(format!("tip-server-sub-{id}"))
        .spawn(move || {
            subscriber_main(stream, conn, residual, generation, offset, &thread_shared);
            // Single cleanup point for every subscriber_main exit —
            // including the early returns before serve_subscriber. A
            // residual REPL_ACK may have registered this conn in the
            // hub; leaving it would stall every primary write for the
            // full ack timeout.
            thread_shared.repl.unregister(id);
            retire_metrics(id, &thread_shared);
            thread_shared
                .stats
                .subscribers
                .fetch_sub(1, Ordering::SeqCst);
        });
    match handle {
        Ok(h) => shared.sub_threads.lock().push(h),
        Err(_) => {
            retire_metrics(id, shared);
            shared.stats.subscribers.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn subscriber_main(
    mut stream: TcpStream,
    conn: Arc<ConnShared>,
    residual: Vec<u8>,
    generation: u64,
    offset: u64,
    shared: &Arc<Shared>,
) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    // Responses to statements pipelined ahead of SUBSCRIBE must hit the
    // wire before the first feed frame.
    let leftover = {
        let mut out = conn.out.lock();
        if out.dead {
            return;
        }
        let bytes = out.buf[out.sent..].to_vec();
        out.buf.clear();
        out.sent = 0;
        bytes
    };
    if !leftover.is_empty() && stream.write_all(&leftover).is_err() {
        return;
    }
    // Input that arrived coalesced behind SUBSCRIBE: early REPL_ACKs
    // count; anything else ends the feed.
    let mut acc = FrameAccumulator::new();
    acc.extend(&residual);
    loop {
        match acc.next_frame() {
            Ok(None) => break,
            Ok(Some((req::REPL_ACK, body))) => match protocol::decode_repl_ack(&body) {
                Ok((_gen, _off, watermark)) => shared.repl.note_ack(conn.id, watermark),
                Err(_) => return,
            },
            Ok(Some(_)) | Err(_) => return,
        }
    }
    serve_subscriber(
        &mut stream,
        conn.id,
        conn.version,
        shared,
        generation,
        offset,
    );
}

/// Shutdown entry: stop reading everywhere, close pre-handshake
/// connections, and let queued statements + outboxes drain.
fn begin_drain(conns: &mut HashMap<u64, ConnIo>, poller: &mut Poller, shared: &Arc<Shared>) {
    let ids: Vec<u64> = conns.keys().copied().collect();
    for id in ids {
        let done = {
            let io = conns.get_mut(&id).unwrap();
            io.reading = false;
            io.input_done = true;
            if io.interest & EV_READ != 0 {
                set_interest(io, poller, io.interest & !EV_READ);
            }
            !matches!(io.phase, Phase::Ready(_))
        };
        if done {
            close_conn(id, conns, poller, shared);
        }
    }
}

/// Closes every connection whose queue and outbox have drained; with
/// `force`, closes everything.
fn reap_drained(
    conns: &mut HashMap<u64, ConnIo>,
    poller: &mut Poller,
    shared: &Arc<Shared>,
    force: bool,
) {
    let ids: Vec<u64> = conns.keys().copied().collect();
    for id in ids {
        let done = {
            let io = conns.get(&id).unwrap();
            if force {
                true
            } else {
                match &io.phase {
                    Phase::Ready(conn) => {
                        let q = conn.queue.lock();
                        let out = conn.out.lock();
                        out.dead || (q.reqs.is_empty() && !q.scheduled && out.pending() == 0)
                    }
                    _ => true,
                }
            }
        };
        if done {
            close_conn(id, conns, poller, shared);
        }
    }
}

/// Periodic stall sweep: handshakes that never complete, mid-frame
/// stalls, and outboxes nobody drains all get closed after their
/// timeout. Idle connections at a frame boundary live forever, exactly
/// like the old per-thread peek loop.
fn sweep(conns: &mut HashMap<u64, ConnIo>, poller: &mut Poller, shared: &Arc<Shared>) {
    let mut doomed: Vec<u64> = Vec::new();
    for (&id, io) in conns.iter() {
        let idle = io.last_activity.elapsed();
        match &io.phase {
            Phase::Handshake | Phase::Reject => {
                if idle > shared.cfg.read_timeout {
                    doomed.push(id);
                }
            }
            Phase::Ready(conn) => {
                if io.acc.has_partial() && !io.input_done && idle > shared.cfg.read_timeout {
                    doomed.push(id);
                    continue;
                }
                let out = conn.out.lock();
                if out.pending() > 0 && idle > shared.cfg.write_timeout {
                    doomed.push(id);
                }
            }
        }
    }
    for id in doomed {
        close_conn(id, conns, poller, shared);
    }
}
