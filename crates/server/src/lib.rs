//! # tip-server — an event-driven wire-protocol server for TIP
//!
//! The paper's Figure 1 places client applications *across a network*
//! from the TIP-enabled database server. This crate supplies that
//! missing tier: a readiness-driven TCP server owning one shared
//! [`Database`], serving many concurrent sessions over the
//! length-prefixed binary protocol defined in [`tip_client::protocol`].
//!
//! Design points:
//!
//! * **reactor + worker pool** — a single nonblocking event loop
//!   ([`reactor`]) owns every socket and decodes frames into
//!   per-connection statement queues; a fixed pool of workers sized to
//!   cores executes statements and commits responses to per-connection
//!   outboxes. Clients may **pipeline**: many in-flight statements per
//!   connection, answered in order, flushed with one write per
//!   readiness event;
//! * **per-connection session state** — each connection gets its own
//!   [`Session`], so NOW overrides and metrics are isolated exactly as
//!   they are for in-process sessions;
//! * **admission control and backpressure** — connection slots are
//!   reserved atomically (over-cap peers get a typed BUSY), statement
//!   queues are bounded (reads pause at the high-water mark), and a
//!   slow client whose outbox exceeds the write budget is *parked*
//!   instead of pinning a worker;
//! * **robustness** — malformed frames kill only the offending
//!   connection, stalled handshakes and unread outboxes are swept on a
//!   timeout, and shutdown drains queued statements before the process
//!   lets go of the database;
//! * **observability** — a `SERVER_METRICS` request aggregates every
//!   live session's counters plus those of already-closed sessions via
//!   [`MetricsSnapshot::absorb`]; [`Server::stats`] exposes the
//!   reactor's own counters (accepts, rejects, parks, pipelining).

use minidb::{Database, DbError, DbResult, MetricsSnapshot, QueryMetrics};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};
use tip_blade::TipTypes;
use tip_client::protocol::{self, req, resp};

mod conn;
pub mod net;
mod reactor;
pub mod repl;
mod worker;

use conn::ControlQueue;
use worker::RunQueue;

/// Tuning knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connections at or over this limit are rejected with BUSY.
    /// Replication subscribers stop counting against it once detached
    /// (see `max_subscribers`).
    pub max_connections: usize,
    /// How long a connection may sit mid-frame (or mid-handshake)
    /// before the stall sweep closes it. Idle connections at a frame
    /// boundary are never timed out.
    pub read_timeout: Duration,
    /// How long an unread outbox may sit with pending bytes before the
    /// stall sweep closes the connection.
    pub write_timeout: Duration,
    /// Rows per ROW_BATCH frame when streaming result sets.
    pub rows_per_batch: usize,
    /// Free-form banner returned in HELLO_OK.
    pub banner: String,
    /// Highest protocol version this server will negotiate down to.
    /// Defaults to [`protocol::VERSION`]; set it to 2 to exercise the
    /// client's graceful fallback for pre-prepared-statement peers.
    pub max_protocol_version: u16,
    /// Worker threads executing statements; 0 means auto (at least 2,
    /// otherwise the machine's available parallelism).
    pub workers: usize,
    /// In-flight statements one connection may queue before the server
    /// stops reading from it (pipelining depth bound).
    pub max_pipeline: usize,
    /// Outbox bytes a connection may accumulate before it is parked
    /// until the client drains responses.
    pub write_budget: usize,
    /// Replication subscribers this node will feed concurrently; they
    /// hold subscriber slots, not client-connection slots.
    pub max_subscribers: usize,
    /// How long shutdown waits for queued statements and outboxes to
    /// drain before force-closing connections.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            rows_per_batch: 256,
            banner: "tip-server".to_string(),
            max_protocol_version: protocol::VERSION,
            workers: 0,
            max_pipeline: 128,
            write_budget: 256 * 1024,
            max_subscribers: 8,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

impl ServerConfig {
    /// The worker-pool size `workers: 0` resolves to.
    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        let cores = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        cores.max(2)
    }
}

/// How often the replication subscriber loop wakes to check for
/// shutdown or new WAL.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Handler invoked by an admin PROMOTE frame: performs the
/// node-specific promotion and returns the last commit sequence the
/// node had applied when it took over.
type PromoteFn = Box<dyn Fn() -> DbResult<u64> + Send + Sync>;

/// Tracks the highest commit sequence each connected WAL subscriber has
/// acknowledged, so committing statements can hold their success frame
/// until every replica has the bytes (semi-synchronous replication).
///
/// A subscriber only appears in the table once it acks for the first
/// time: a replica still streaming its catch-up snapshot must not stall
/// the primary's writes for the full ack timeout on every commit.
///
/// **Durability window** — this scheme is best-effort semi-sync, not a
/// zero-loss guarantee. Two windows exist in which a write is
/// acknowledged to the client without replica coverage: (1) between a
/// replica's SUBSCRIBE and its *first* REPL_ACK (snapshot catch-up),
/// writes wait on nobody; (2) a replica stalled past
/// [`REPL_ACK_TIMEOUT`] stops delaying commits — availability wins
/// over strictness. A primary crash inside either window can lose
/// writes that were acked but not yet shipped; the promotion test's
/// zero-loss result holds because it acks through a registered, live
/// replica. A strict mode (register at SUBSCRIBE, fail writes instead
/// of timing out) is a deliberate non-goal for now and is documented
/// as such in DESIGN.md §10.
pub(crate) struct ReplHub {
    /// conn_id → highest watermark acked by that subscriber.
    acked: StdMutex<HashMap<u64, u64>>,
    advanced: Condvar,
}

impl ReplHub {
    fn new() -> ReplHub {
        ReplHub {
            acked: StdMutex::new(HashMap::new()),
            advanced: Condvar::new(),
        }
    }

    pub(crate) fn note_ack(&self, conn_id: u64, watermark: u64) {
        let mut m = self.acked.lock().unwrap();
        let slot = m.entry(conn_id).or_insert(0);
        *slot = (*slot).max(watermark);
        self.advanced.notify_all();
    }

    fn unregister(&self, conn_id: u64) {
        self.acked.lock().unwrap().remove(&conn_id);
        self.advanced.notify_all();
    }

    fn is_empty(&self) -> bool {
        self.acked.lock().unwrap().is_empty()
    }

    /// The slowest subscriber's acked watermark, if any have acked.
    fn min_acked(&self) -> Option<u64> {
        self.acked.lock().unwrap().values().copied().min()
    }

    /// Blocks until every registered subscriber has acked at least
    /// `target`, no subscribers remain, or the timeout lapses —
    /// availability wins over strict semi-sync.
    fn wait_acked(&self, target: u64, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        let mut m = self.acked.lock().unwrap();
        loop {
            if m.values().all(|&w| w >= target) {
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let (guard, _) = self.advanced.wait_timeout(m, deadline - now).unwrap();
            m = guard;
        }
    }
}

/// Reactor/worker counters, all monotonic except `subscribers`.
pub(crate) struct StatsInner {
    pub(crate) accepted: AtomicU64,
    pub(crate) busy_rejects: AtomicU64,
    pub(crate) park_events: AtomicU64,
    pub(crate) read_pauses: AtomicU64,
    pub(crate) pipelined: AtomicU64,
    /// Currently-attached replication subscribers.
    pub(crate) subscribers: AtomicUsize,
}

/// A point-in-time snapshot of the server's own counters (distinct
/// from the per-session query metrics).
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Connections accepted (including ones later rejected with BUSY).
    pub accepted: u64,
    /// Connections answered with BUSY because the cap was reached.
    pub busy_rejects: u64,
    /// Times a connection was parked for exceeding the write budget.
    pub park_events: u64,
    /// Times reading from a connection paused on a full statement queue.
    pub read_pauses: u64,
    /// Frames enqueued while the connection already had work in flight
    /// — a direct measure of client pipelining.
    pub pipelined: u64,
    /// Replication subscribers currently attached.
    pub subscribers: usize,
}

pub(crate) struct Shared {
    pub(crate) db: Arc<Database>,
    pub(crate) types: TipTypes,
    pub(crate) cfg: ServerConfig,
    pub(crate) shutdown: AtomicBool,
    /// Live connections' metric registries, keyed by connection id.
    pub(crate) live: Mutex<HashMap<u64, Arc<QueryMetrics>>>,
    /// Folded-in counters of connections that already closed.
    retired: Mutex<MetricsSnapshot>,
    pub(crate) live_count: AtomicUsize,
    pub(crate) next_conn_id: AtomicU64,
    /// Per-subscriber replication ack state (primary role).
    pub(crate) repl: ReplHub,
    /// Promotion handler (replica role); `None` on a plain primary.
    pub(crate) promote: StdMutex<Option<PromoteFn>>,
    pub(crate) stats: StatsInner,
    /// Detached replication-feed threads, joined at shutdown.
    pub(crate) sub_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    /// Server-wide counters: every closed session plus every live one.
    pub(crate) fn server_metrics(&self) -> MetricsSnapshot {
        let mut total = self.retired.lock().clone();
        for metrics in self.live.lock().values() {
            total.absorb(&metrics.snapshot());
        }
        total
    }
}

/// Removes a finished connection's metrics from the live table,
/// folding its counters into the retired total. Connection-slot
/// accounting is the caller's business (the reactor frees client slots
/// at close; subscriber slots are freed when the feed thread exits).
pub(crate) fn retire_metrics(conn_id: u64, shared: &Shared) {
    if let Some(metrics) = shared.live.lock().remove(&conn_id) {
        shared.retired.lock().absorb(&metrics.snapshot());
    }
}

/// A running server. Dropping it (or calling [`Server::shutdown`])
/// stops accepting, drains queued statements, and joins every thread.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    reactor_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
    runq: Arc<RunQueue>,
    ctrl: Arc<ControlQueue>,
}

impl Server {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts
    /// accepting connections against `db`, which must already have the
    /// TIP blade installed.
    pub fn bind(
        addr: impl ToSocketAddrs,
        db: &Arc<Database>,
        cfg: ServerConfig,
    ) -> DbResult<Server> {
        let types = db.with_catalog(TipTypes::from_catalog)?;
        let listener = TcpListener::bind(addr)
            .map_err(|e| DbError::unavailable(format!("bind failed: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| DbError::unavailable(format!("local_addr failed: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| DbError::unavailable(format!("set_nonblocking failed: {e}")))?;
        let (wake_tx, wake_rx) = UnixStream::pair()
            .map_err(|e| DbError::unavailable(format!("wake pipe failed: {e}")))?;
        wake_tx
            .set_nonblocking(true)
            .map_err(|e| DbError::unavailable(format!("wake pipe failed: {e}")))?;

        let shared = Arc::new(Shared {
            db: Arc::clone(db),
            types,
            cfg,
            shutdown: AtomicBool::new(false),
            live: Mutex::new(HashMap::new()),
            retired: Mutex::new(MetricsSnapshot::default()),
            live_count: AtomicUsize::new(0),
            next_conn_id: AtomicU64::new(1),
            repl: ReplHub::new(),
            promote: StdMutex::new(None),
            stats: StatsInner {
                accepted: AtomicU64::new(0),
                busy_rejects: AtomicU64::new(0),
                park_events: AtomicU64::new(0),
                read_pauses: AtomicU64::new(0),
                pipelined: AtomicU64::new(0),
                subscribers: AtomicUsize::new(0),
            },
            sub_threads: Mutex::new(Vec::new()),
        });
        let runq = Arc::new(RunQueue::new());
        let ctrl = Arc::new(ControlQueue::new(wake_tx));

        let mut worker_threads = Vec::new();
        for i in 0..shared.cfg.resolved_workers() {
            let shared = Arc::clone(&shared);
            let runq = Arc::clone(&runq);
            let ctrl = Arc::clone(&ctrl);
            let handle = thread::Builder::new()
                .name(format!("tip-server-worker-{i}"))
                .spawn(move || worker::worker_loop(shared, runq, ctrl))
                .map_err(|e| DbError::unavailable(format!("spawn failed: {e}")))?;
            worker_threads.push(handle);
        }

        let reactor_shared = Arc::clone(&shared);
        let reactor_runq = Arc::clone(&runq);
        let reactor_ctrl = Arc::clone(&ctrl);
        let reactor_thread = thread::Builder::new()
            .name("tip-server-reactor".to_string())
            .spawn(move || {
                reactor::run_reactor(
                    listener,
                    wake_rx,
                    reactor_shared,
                    reactor_runq,
                    reactor_ctrl,
                )
            })
            .map_err(|e| DbError::unavailable(format!("spawn failed: {e}")))?;

        Ok(Server {
            shared,
            local_addr,
            reactor_thread: Some(reactor_thread),
            worker_threads,
            runq,
            ctrl,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of client connections currently being served (detached
    /// replication subscribers excluded).
    pub fn connection_count(&self) -> usize {
        self.shared.live_count.load(Ordering::SeqCst)
    }

    /// Server-wide metrics: all closed sessions plus all live ones.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.server_metrics()
    }

    /// The reactor's own counters: admissions, rejects, backpressure
    /// events, and observed pipelining.
    pub fn stats(&self) -> ServerStats {
        let s = &self.shared.stats;
        ServerStats {
            accepted: s.accepted.load(Ordering::Relaxed),
            busy_rejects: s.busy_rejects.load(Ordering::Relaxed),
            park_events: s.park_events.load(Ordering::Relaxed),
            read_pauses: s.read_pauses.load(Ordering::Relaxed),
            pipelined: s.pipelined.load(Ordering::Relaxed),
            subscribers: s.subscribers.load(Ordering::SeqCst),
        }
    }

    /// Installs the handler an admin PROMOTE frame invokes. The handler
    /// drains this node's replication stream, opens the WAL for append,
    /// and returns the last commit sequence applied before takeover.
    pub fn set_promote_handler(&self, f: impl Fn() -> DbResult<u64> + Send + Sync + 'static) {
        *self.shared.promote.lock().unwrap() = Some(Box::new(f));
    }

    /// Stops accepting, drains queued statements (bounded by
    /// `drain_timeout`), and joins all threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.ctrl.wake();
        if let Some(t) = self.reactor_thread.take() {
            let _ = t.join();
        }
        self.runq.stop();
        for w in std::mem::take(&mut self.worker_threads) {
            let _ = w.join();
        }
        loop {
            let drained: Vec<JoinHandle<()>> = std::mem::take(&mut *self.shared.sub_threads.lock());
            if drained.is_empty() {
                break;
            }
            for t in drained {
                let _ = t.join();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Sends one frame as a single write (length, tag and body assembled
/// first so the kernel sees whole frames). Used by the blocking
/// replication-feed path; client traffic goes through the outboxes.
fn send(stream: &mut TcpStream, tag: u8, body: &[u8]) -> io::Result<()> {
    let mut frame = Vec::with_capacity(5 + body.len());
    protocol::write_frame(&mut frame, tag, body)?;
    stream.write_all(&frame)
}

/// Version-aware error frame: codes newer than the negotiated protocol
/// (e.g. `ReadOnly`, v6) degrade to ones the peer can decode.
fn send_error_v(stream: &mut TcpStream, version: u16, e: &DbError) -> io::Result<()> {
    send(stream, resp::ERROR, &protocol::encode_error_for(e, version))
}

/// Folds node-wide gauge state (WAL, MVCC, replication) into a metrics
/// snapshot before it goes on the wire. On the primary the newest known
/// applied sequence is its own durable frontier — clients use it as the
/// read-your-writes floor when fanning reads across replicas.
pub(crate) fn overlay_node_state(snap: &mut MetricsSnapshot, shared: &Shared) {
    snap.overlay_wal(&shared.db.wal_stats());
    snap.overlay_mvcc(shared.db.mvcc_versions(), shared.db.snapshots_pinned());
    let mut r = shared.db.repl_stats().snapshot();
    if let Some(p) = shared.db.wal_progress() {
        r.last_seq = r.last_seq.max(p.seq);
    }
    snap.overlay_repl(&r);
    snap.overlay_bufpool(&shared.db.bufpool_stats());
}

/// How long a committing statement waits for every acking replica to
/// cover the durable watermark before acknowledging the client anyway.
const REPL_ACK_TIMEOUT: Duration = Duration::from_secs(2);

/// Committed WAL bytes carried by one WAL_CHUNK, and the piece size for
/// snapshot catch-up — both well under [`protocol::MAX_FRAME`].
const REPL_CHUNK_MAX: usize = 1 << 20;

/// Semi-synchronous replication: hold a write's success frame until
/// every subscriber that has ever acked covers the current durable
/// watermark. Bounded by [`REPL_ACK_TIMEOUT`] so a stalled replica
/// degrades latency, not availability.
pub(crate) fn wait_replicas_acked(shared: &Shared) {
    if shared.repl.is_empty() {
        return;
    }
    if let Some(p) = shared.db.wal_progress() {
        shared.repl.wait_acked(p.seq, REPL_ACK_TIMEOUT);
    }
}

/// What the subscriber poll saw between chunk shipments.
enum SubFrame {
    /// Nothing waiting; go ship more WAL.
    Idle,
    /// REPL_ACK: the replica has applied through this watermark.
    Ack(u64),
    /// BYE, a dead socket, or a frame a subscriber must not send.
    Done,
}

/// Non-blocking-ish poll for a subscriber frame: a 1 ms peek, then a
/// full frame read only once bytes have started arriving.
fn try_subscriber_frame(stream: &mut TcpStream, shared: &Shared) -> SubFrame {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(1)));
    let mut first = [0u8; 1];
    match stream.peek(&mut first) {
        Ok(0) => return SubFrame::Done,
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            return SubFrame::Idle;
        }
        Err(_) => return SubFrame::Done,
    }
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    match protocol::read_frame(stream) {
        Ok((req::REPL_ACK, body)) => match protocol::decode_repl_ack(&body) {
            Ok((_gen, _offset, watermark)) => SubFrame::Ack(watermark),
            Err(_) => SubFrame::Done,
        },
        Ok(_) | Err(_) => SubFrame::Done,
    }
}

/// Runs a replication subscriber to completion: catch-up (snapshot if
/// the requested generation is gone), then continuous WAL tailing with
/// heartbeats, draining REPL_ACKs between shipments. The socket runs
/// blocking on a dedicated thread — the feed is a long-lived
/// sequential stream, a poor fit for the statement reactor, and
/// subscribers hold their own slot class so they can't starve client
/// admission.
pub(crate) fn serve_subscriber(
    stream: &mut TcpStream,
    conn_id: u64,
    version: u16,
    shared: &Shared,
    mut generation: u64,
    mut offset: u64,
) {
    let db = &shared.db;
    let stats = db.repl_stats();
    // Highest watermark the replica has been told about; heartbeats
    // fire only when the durable frontier moves past it.
    let mut last_watermark_sent = 0u64;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match try_subscriber_frame(stream, shared) {
            SubFrame::Idle => {}
            SubFrame::Ack(watermark) => {
                shared.repl.note_ack(conn_id, watermark);
                if let (Some(p), Some(min)) = (db.wal_progress(), shared.repl.min_acked()) {
                    stats.set_lag(p.seq.saturating_sub(min));
                }
                // Drain queued acks before shipping more bytes.
                continue;
            }
            SubFrame::Done => break,
        }
        match db.repl_log_read(generation, offset, REPL_CHUNK_MAX) {
            Err(e) => {
                let _ = send_error_v(stream, version, &e);
                break;
            }
            Ok(minidb::LogRead::Restart) => {
                // The generation the replica wants is gone (it predates
                // the latest checkpoint): resync from the snapshot.
                let (snap_gen, bytes) = match db.repl_snapshot() {
                    Ok(x) => x,
                    Err(e) => {
                        let _ = send_error_v(stream, version, &e);
                        break;
                    }
                };
                let mut start = 0;
                let mut failed = false;
                loop {
                    let end = (start + REPL_CHUNK_MAX).min(bytes.len());
                    let is_last = end == bytes.len();
                    let body =
                        protocol::encode_snapshot_chunk(snap_gen, is_last, &bytes[start..end]);
                    if send(stream, resp::SNAPSHOT_CHUNK, &body).is_err() {
                        failed = true;
                        break;
                    }
                    stats.record_chunk((end - start) as u64);
                    if is_last {
                        break;
                    }
                    start = end;
                }
                if failed {
                    break;
                }
                generation = snap_gen;
                offset = minidb::wal::record::LOG_HEADER_LEN as u64;
            }
            Ok(minidb::LogRead::Chunk { bytes, watermark }) => {
                if !bytes.is_empty() {
                    let body = protocol::encode_wal_chunk(generation, offset, watermark, &bytes);
                    if send(stream, resp::WAL_CHUNK, &body).is_err() {
                        break;
                    }
                    offset += bytes.len() as u64;
                    stats.record_chunk(bytes.len() as u64);
                    if watermark > 0 {
                        last_watermark_sent = last_watermark_sent.max(watermark);
                        stats.set_last_seq(watermark);
                    }
                } else if watermark > last_watermark_sent {
                    // Caught up, but the durable frontier moved (e.g.
                    // commits the replica already has bytes for were
                    // just fsynced): heartbeat so it can ack them.
                    let body = protocol::encode_wal_chunk(generation, offset, watermark, &[]);
                    if send(stream, resp::WAL_CHUNK, &body).is_err() {
                        break;
                    }
                    last_watermark_sent = watermark;
                    stats.set_last_seq(watermark);
                } else if let Some(p) = db.wal_progress() {
                    // Fully caught up: sleep until the WAL moves. The
                    // short timeout keeps ack draining responsive.
                    let _ = db.wal_progress_wait(&p, POLL_INTERVAL);
                } else {
                    thread::sleep(POLL_INTERVAL);
                }
            }
        }
    }
    // Hub unregistration happens in the caller's cleanup (the
    // subscriber thread wrapper), which also covers exits taken
    // before this function is ever reached.
}
