//! # tip-server — a concurrent wire-protocol server for TIP
//!
//! The paper's Figure 1 places client applications *across a network*
//! from the TIP-enabled database server. This crate supplies that
//! missing tier: a multi-threaded TCP server owning one shared
//! [`Database`], serving many concurrent sessions over the
//! length-prefixed binary protocol defined in [`tip_client::protocol`].
//!
//! Design points:
//!
//! * **one thread per connection**, all sharing the `Arc<Database>` —
//!   concurrency control is the engine's own catalog/storage locks;
//! * **per-connection session state** — each connection gets its own
//!   [`Session`], so NOW overrides and metrics are isolated exactly as
//!   they are for in-process sessions;
//! * **robustness** — read/write timeouts on every socket, a
//!   max-connections limit answered with a typed BUSY reject, malformed
//!   frames kill only the offending connection, and shutdown drains
//!   in-flight statements before the process lets go of the database;
//! * **observability** — a `SERVER_METRICS` request aggregates every
//!   live session's counters plus those of already-closed sessions via
//!   [`MetricsSnapshot::absorb`].

use minidb::{
    Database, DbError, DbResult, MetricsSnapshot, QueryMetrics, Session, StatementOutcome, Value,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};
use tip_blade::TipTypes;
use tip_client::protocol::{self, req, resp};

pub mod repl;

/// Tuning knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connections at or over this limit are rejected with BUSY.
    pub max_connections: usize,
    /// Socket read timeout once a frame has started arriving.
    pub read_timeout: Duration,
    /// Socket write timeout for response frames.
    pub write_timeout: Duration,
    /// Rows per ROW_BATCH frame when streaming result sets.
    pub rows_per_batch: usize,
    /// Free-form banner returned in HELLO_OK.
    pub banner: String,
    /// Highest protocol version this server will negotiate down to.
    /// Defaults to [`protocol::VERSION`]; set it to 2 to exercise the
    /// client's graceful fallback for pre-prepared-statement peers.
    pub max_protocol_version: u16,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            rows_per_batch: 256,
            banner: "tip-server".to_string(),
            max_protocol_version: protocol::VERSION,
        }
    }
}

/// How often idle connections and the accept loop wake up to check for
/// shutdown.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Handler invoked by an admin PROMOTE frame: performs the
/// node-specific promotion and returns the last commit sequence the
/// node had applied when it took over.
type PromoteFn = Box<dyn Fn() -> DbResult<u64> + Send + Sync>;

/// Tracks the highest commit sequence each connected WAL subscriber has
/// acknowledged, so committing statements can hold their success frame
/// until every replica has the bytes (semi-synchronous replication).
///
/// A subscriber only appears in the table once it acks for the first
/// time: a replica still streaming its catch-up snapshot must not stall
/// the primary's writes for the full ack timeout on every commit.
///
/// **Durability window** — this scheme is best-effort semi-sync, not a
/// zero-loss guarantee. Two windows exist in which a write is
/// acknowledged to the client without replica coverage: (1) between a
/// replica's SUBSCRIBE and its *first* REPL_ACK (snapshot catch-up),
/// writes wait on nobody; (2) a replica stalled past
/// [`REPL_ACK_TIMEOUT`] stops delaying commits — availability wins
/// over strictness. A primary crash inside either window can lose
/// writes that were acked but not yet shipped; the promotion test's
/// zero-loss result holds because it acks through a registered, live
/// replica. A strict mode (register at SUBSCRIBE, fail writes instead
/// of timing out) is a deliberate non-goal for now and is documented
/// as such in DESIGN.md §10.
struct ReplHub {
    /// conn_id → highest watermark acked by that subscriber.
    acked: StdMutex<HashMap<u64, u64>>,
    advanced: Condvar,
}

impl ReplHub {
    fn new() -> ReplHub {
        ReplHub {
            acked: StdMutex::new(HashMap::new()),
            advanced: Condvar::new(),
        }
    }

    fn note_ack(&self, conn_id: u64, watermark: u64) {
        let mut m = self.acked.lock().unwrap();
        let slot = m.entry(conn_id).or_insert(0);
        *slot = (*slot).max(watermark);
        self.advanced.notify_all();
    }

    fn unregister(&self, conn_id: u64) {
        self.acked.lock().unwrap().remove(&conn_id);
        self.advanced.notify_all();
    }

    fn is_empty(&self) -> bool {
        self.acked.lock().unwrap().is_empty()
    }

    /// The slowest subscriber's acked watermark, if any have acked.
    fn min_acked(&self) -> Option<u64> {
        self.acked.lock().unwrap().values().copied().min()
    }

    /// Blocks until every registered subscriber has acked at least
    /// `target`, no subscribers remain, or the timeout lapses —
    /// availability wins over strict semi-sync.
    fn wait_acked(&self, target: u64, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        let mut m = self.acked.lock().unwrap();
        loop {
            if m.values().all(|&w| w >= target) {
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let (guard, _) = self.advanced.wait_timeout(m, deadline - now).unwrap();
            m = guard;
        }
    }
}

struct Shared {
    db: Arc<Database>,
    types: TipTypes,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    /// Live connections' metric registries, keyed by connection id.
    live: Mutex<HashMap<u64, Arc<QueryMetrics>>>,
    /// Folded-in counters of connections that already closed.
    retired: Mutex<MetricsSnapshot>,
    live_count: AtomicUsize,
    next_conn_id: AtomicU64,
    /// Per-subscriber replication ack state (primary role).
    repl: ReplHub,
    /// Promotion handler (replica role); `None` on a plain primary.
    promote: StdMutex<Option<PromoteFn>>,
}

impl Shared {
    /// Server-wide counters: every closed session plus every live one.
    fn server_metrics(&self) -> MetricsSnapshot {
        let mut total = self.retired.lock().clone();
        for metrics in self.live.lock().values() {
            total.absorb(&metrics.snapshot());
        }
        total
    }
}

/// A running server. Dropping it (or calling [`Server::shutdown`])
/// stops accepting, drains in-flight statements, and joins every
/// worker thread.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts
    /// accepting connections against `db`, which must already have the
    /// TIP blade installed.
    pub fn bind(
        addr: impl ToSocketAddrs,
        db: &Arc<Database>,
        cfg: ServerConfig,
    ) -> DbResult<Server> {
        let types = db.with_catalog(TipTypes::from_catalog)?;
        let listener = TcpListener::bind(addr)
            .map_err(|e| DbError::unavailable(format!("bind failed: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| DbError::unavailable(format!("local_addr failed: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| DbError::unavailable(format!("set_nonblocking failed: {e}")))?;

        let shared = Arc::new(Shared {
            db: Arc::clone(db),
            types,
            cfg,
            shutdown: AtomicBool::new(false),
            live: Mutex::new(HashMap::new()),
            retired: Mutex::new(MetricsSnapshot::default()),
            live_count: AtomicUsize::new(0),
            next_conn_id: AtomicU64::new(1),
            repl: ReplHub::new(),
            promote: StdMutex::new(None),
        });
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_shared = Arc::clone(&shared);
        let accept_workers = Arc::clone(&workers);
        let accept_thread = thread::Builder::new()
            .name("tip-server-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared, accept_workers))
            .map_err(|e| DbError::unavailable(format!("spawn failed: {e}")))?;

        Ok(Server {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of connections currently being served.
    pub fn connection_count(&self) -> usize {
        self.shared.live_count.load(Ordering::SeqCst)
    }

    /// Server-wide metrics: all closed sessions plus all live ones.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.server_metrics()
    }

    /// Installs the handler an admin PROMOTE frame invokes. The handler
    /// drains this node's replication stream, opens the WAL for append,
    /// and returns the last commit sequence applied before takeover.
    pub fn set_promote_handler(&self, f: impl Fn() -> DbResult<u64> + Send + Sync + 'static) {
        *self.shared.promote.lock().unwrap() = Some(Box::new(f));
    }

    /// Stops accepting, lets in-flight statements finish, and joins all
    /// threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        loop {
            let drained: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock());
            if drained.is_empty() {
                break;
            }
            for w in drained {
                let _ = w.join();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Reap finished workers so the handle list stays small.
                workers.lock().retain(|w| !w.is_finished());

                if shared.live_count.load(Ordering::SeqCst) >= shared.cfg.max_connections {
                    reject_busy(stream, &shared);
                    continue;
                }
                shared.live_count.fetch_add(1, Ordering::SeqCst);
                let conn_id = shared.next_conn_id.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(&shared);
                let handle = thread::Builder::new()
                    .name(format!("tip-server-conn-{conn_id}"))
                    .spawn(move || {
                        serve_connection(stream, conn_id, &conn_shared);
                        retire_connection(conn_id, &conn_shared);
                    });
                match handle {
                    Ok(h) => workers.lock().push(h),
                    Err(_) => {
                        shared.live_count.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Removes a finished connection from the live table, folding its
/// counters into the retired total.
fn retire_connection(conn_id: u64, shared: &Shared) {
    if let Some(metrics) = shared.live.lock().remove(&conn_id) {
        shared.retired.lock().absorb(&metrics.snapshot());
    }
    shared.live_count.fetch_sub(1, Ordering::SeqCst);
}

/// Sends one frame as a single write (length, tag and body assembled
/// first so the kernel sees whole frames).
fn send(stream: &mut TcpStream, tag: u8, body: &[u8]) -> io::Result<()> {
    let mut frame = Vec::with_capacity(5 + body.len());
    protocol::write_frame(&mut frame, tag, body)?;
    stream.write_all(&frame)
}

/// Pre-negotiation error path (handshake failures): the peer's version
/// is unknown, so the error encodes at the current layout. Post-
/// handshake paths use [`send_error_v`] for version-aware narrowing.
fn send_error(stream: &mut TcpStream, e: &DbError) -> io::Result<()> {
    send(stream, resp::ERROR, &protocol::encode_error(e))
}

/// Version-aware error frame: codes newer than the negotiated protocol
/// (e.g. `ReadOnly`, v6) degrade to ones the peer can decode.
fn send_error_v(stream: &mut TcpStream, version: u16, e: &DbError) -> io::Result<()> {
    send(stream, resp::ERROR, &protocol::encode_error_for(e, version))
}

/// Over-capacity reject: a typed BUSY frame, then close. The socket is
/// made blocking first (it inherits the listener's non-blocking flag on
/// some platforms).
fn reject_busy(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    // Drain the client's HELLO first: closing a socket with unread data
    // RSTs the peer before it can read the BUSY frame.
    let _ = protocol::read_frame(&mut stream);
    let msg = format!(
        "server busy: at its limit of {} connections",
        shared.cfg.max_connections
    );
    let _ = send(&mut stream, resp::BUSY, &protocol::encode_busy(&msg));
}

/// Outcome of waiting for the next request frame.
enum NextFrame {
    Frame(u8, Vec<u8>),
    /// Peer closed at a frame boundary, or the stream died.
    Closed,
    /// The server is shutting down; no new statement was started.
    Shutdown,
    /// The stream is malformed beyond recovery.
    Malformed(String),
}

/// Waits for the next frame, polling in short intervals while idle so a
/// shutdown request is noticed quickly, then switching to the full read
/// timeout once the frame starts arriving.
fn next_frame(stream: &mut TcpStream, shared: &Shared) -> NextFrame {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return NextFrame::Shutdown;
        }
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
        let mut first = [0u8; 1];
        match stream.peek(&mut first) {
            Ok(0) => return NextFrame::Closed,
            Ok(_) => break,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return NextFrame::Closed,
        }
    }
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    match protocol::read_frame(stream) {
        Ok((tag, body)) => NextFrame::Frame(tag, body),
        Err(e) if e.kind() == io::ErrorKind::InvalidData => NextFrame::Malformed(e.to_string()),
        Err(_) => NextFrame::Closed,
    }
}

/// Runs one connection to completion: handshake, then the request loop.
/// Any protocol fault ends only this connection; the database and every
/// other session are untouched.
fn serve_connection(mut stream: TcpStream, conn_id: u64, shared: &Shared) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));

    // --- handshake -----------------------------------------------------
    let hello = match next_frame(&mut stream, shared) {
        NextFrame::Frame(req::HELLO, body) => match protocol::decode_hello(&body) {
            Ok(h) => h,
            Err(e) => {
                let _ = send_error(&mut stream, &e);
                return;
            }
        },
        NextFrame::Frame(_, _) | NextFrame::Malformed(_) => {
            let _ = send_error(
                &mut stream,
                &DbError::unavailable("handshake failed: expected HELLO"),
            );
            return;
        }
        NextFrame::Closed | NextFrame::Shutdown => return,
    };
    // Version negotiation: speak the highest version both sides (and the
    // configured cap) understand, refusing peers older than we can serve.
    let ceiling = protocol::VERSION.min(shared.cfg.max_protocol_version);
    let negotiated = hello.version.min(ceiling);
    if negotiated < protocol::MIN_VERSION {
        let _ = send_error(
            &mut stream,
            &DbError::unavailable(format!(
                "unsupported protocol version {} (server speaks {}..={})",
                hello.version,
                protocol::MIN_VERSION,
                ceiling
            )),
        );
        return;
    }

    let mut session = shared.db.session();
    session.set_now_unix(hello.now_unix);
    shared.live.lock().insert(conn_id, session.metrics());

    if send(
        &mut stream,
        resp::HELLO_OK,
        &protocol::encode_hello_ok(negotiated, &shared.cfg.banner),
    )
    .is_err()
    {
        return;
    }

    let mut conn = Conn {
        id: conn_id,
        session,
        version: negotiated,
        prepared: HashMap::new(),
        next_prepared_id: 1,
    };

    // --- request loop --------------------------------------------------
    loop {
        match next_frame(&mut stream, shared) {
            NextFrame::Frame(tag, body) => {
                if !dispatch(&mut stream, &mut conn, shared, tag, &body) {
                    return;
                }
            }
            NextFrame::Malformed(why) => {
                let _ = send_error(
                    &mut stream,
                    &DbError::unavailable(format!("malformed frame: {why}")),
                );
                return;
            }
            NextFrame::Closed | NextFrame::Shutdown => return,
        }
    }
}

/// Per-connection state threaded through the request loop.
struct Conn {
    /// Connection id — keys this connection's replication-ack slot.
    id: u64,
    session: Session,
    /// Negotiated protocol version for this connection.
    version: u16,
    /// Server-side prepared statements: id → validated SQL text. The
    /// engine's plan cache does the heavy lifting; this table only maps
    /// wire ids back to statement text.
    prepared: HashMap<u64, String>,
    next_prepared_id: u64,
}

/// Prepared statements one connection may hold open at once.
const MAX_PREPARED_PER_CONN: usize = 256;

/// Handles one request frame. Returns `false` when the connection must
/// close (BYE, protocol violation, or a dead socket).
fn dispatch(
    stream: &mut TcpStream,
    conn: &mut Conn,
    shared: &Shared,
    tag: u8,
    body: &[u8],
) -> bool {
    match tag {
        req::STMT => {
            let stmt = match protocol::decode_stmt(body, &shared.types) {
                Ok(s) => s,
                Err(e) => {
                    // Undecodable statement: the stream itself is suspect.
                    let _ = send_error_v(stream, conn.version, &e);
                    return false;
                }
            };
            run_statement(stream, conn, shared, &stmt.sql, &stmt.params)
        }
        req::PREPARE if conn.version >= 3 => {
            let sql = match protocol::decode_prepare(body) {
                Ok(s) => s,
                Err(e) => {
                    let _ = send_error_v(stream, conn.version, &e);
                    return false;
                }
            };
            if conn.prepared.len() >= MAX_PREPARED_PER_CONN {
                let e = DbError::unavailable(format!(
                    "too many prepared statements (limit {MAX_PREPARED_PER_CONN}); close some first"
                ));
                return send_error_v(stream, conn.version, &e).is_ok();
            }
            // Validate the text now so EXECUTE_PREPARED never trips a
            // parse error; planning stays lazy in the engine's cache.
            match conn.session.prepare(&sql) {
                // A bad statement is a statement-level error, not a
                // protocol fault: the connection stays up.
                Err(e) => send_error_v(stream, conn.version, &e).is_ok(),
                Ok(_) => {
                    let id = conn.next_prepared_id;
                    conn.next_prepared_id += 1;
                    conn.prepared.insert(id, sql);
                    send(stream, resp::PREPARED_OK, &protocol::encode_prepared_ok(id)).is_ok()
                }
            }
        }
        req::EXECUTE_PREPARED if conn.version >= 3 => {
            let (id, params) = match protocol::decode_execute_prepared(body, &shared.types) {
                Ok(x) => x,
                Err(e) => {
                    let _ = send_error_v(stream, conn.version, &e);
                    return false;
                }
            };
            let Some(sql) = conn.prepared.get(&id).cloned() else {
                let e = DbError::NotFound {
                    kind: "prepared statement",
                    name: id.to_string(),
                };
                return send_error_v(stream, conn.version, &e).is_ok();
            };
            run_statement(stream, conn, shared, &sql, &params)
        }
        req::CLOSE_PREPARED if conn.version >= 3 => {
            match protocol::decode_close_prepared(body) {
                Ok(id) => {
                    // Idempotent: closing an unknown id is a no-op.
                    conn.prepared.remove(&id);
                    send(stream, resp::DONE, &[]).is_ok()
                }
                Err(e) => {
                    let _ = send_error_v(stream, conn.version, &e);
                    false
                }
            }
        }
        req::SET_NOW => match protocol::decode_set_now(body) {
            Ok(now) => {
                conn.session.set_now_unix(now);
                send(stream, resp::DONE, &[]).is_ok()
            }
            Err(e) => {
                let _ = send_error_v(stream, conn.version, &e);
                false
            }
        },
        req::SESSION_STATS => {
            let mut snap = conn.session.metrics().snapshot();
            overlay_node_state(&mut snap, shared);
            let body = protocol::encode_metrics_for(&snap, conn.version);
            send(stream, resp::METRICS, &body).is_ok()
        }
        req::SERVER_METRICS => {
            let mut snap = shared.server_metrics();
            overlay_node_state(&mut snap, shared);
            let body = protocol::encode_metrics_for(&snap, conn.version);
            send(stream, resp::METRICS, &body).is_ok()
        }
        req::SUBSCRIBE if conn.version >= 6 => {
            match protocol::decode_subscribe(body) {
                Ok((generation, offset)) => {
                    // The connection becomes a one-way replication feed;
                    // when the subscriber loop ends, so does the
                    // connection.
                    serve_subscriber(stream, conn, shared, generation, offset);
                }
                Err(e) => {
                    let _ = send_error_v(stream, conn.version, &e);
                }
            }
            false
        }
        req::PROMOTE if conn.version >= 6 => {
            let handler = shared.promote.lock().unwrap();
            match handler.as_ref() {
                None => {
                    let e = DbError::unavailable("this node is not a replica: nothing to promote");
                    send_error_v(stream, conn.version, &e).is_ok()
                }
                Some(f) => match f() {
                    Ok(_applied_seq) => send(stream, resp::DONE, &[]).is_ok(),
                    Err(e) => send_error_v(stream, conn.version, &e).is_ok(),
                },
            }
        }
        req::BYE => false,
        other => {
            let _ = send_error_v(
                stream,
                conn.version,
                &DbError::unavailable(format!("unexpected request tag {other:#04x}")),
            );
            false
        }
    }
}

/// Folds node-wide gauge state (WAL, MVCC, replication) into a metrics
/// snapshot before it goes on the wire. On the primary the newest known
/// applied sequence is its own durable frontier — clients use it as the
/// read-your-writes floor when fanning reads across replicas.
fn overlay_node_state(snap: &mut MetricsSnapshot, shared: &Shared) {
    snap.overlay_wal(&shared.db.wal_stats());
    snap.overlay_mvcc(shared.db.mvcc_versions(), shared.db.snapshots_pinned());
    let mut r = shared.db.repl_stats().snapshot();
    if let Some(p) = shared.db.wal_progress() {
        r.last_seq = r.last_seq.max(p.seq);
    }
    snap.overlay_repl(&r);
}

/// How long a committing statement waits for every acking replica to
/// cover the durable watermark before acknowledging the client anyway.
const REPL_ACK_TIMEOUT: Duration = Duration::from_secs(2);

/// Committed WAL bytes carried by one WAL_CHUNK, and the piece size for
/// snapshot catch-up — both well under [`protocol::MAX_FRAME`].
const REPL_CHUNK_MAX: usize = 1 << 20;

/// Semi-synchronous replication: hold a write's success frame until
/// every subscriber that has ever acked covers the current durable
/// watermark. Bounded by [`REPL_ACK_TIMEOUT`] so a stalled replica
/// degrades latency, not availability.
fn wait_replicas_acked(shared: &Shared) {
    if shared.repl.is_empty() {
        return;
    }
    if let Some(p) = shared.db.wal_progress() {
        shared.repl.wait_acked(p.seq, REPL_ACK_TIMEOUT);
    }
}

/// Executes one statement and streams its outcome; shared by STMT and
/// EXECUTE_PREPARED. Statement-level errors keep the connection up.
fn run_statement(
    stream: &mut TcpStream,
    conn: &mut Conn,
    shared: &Shared,
    sql: &str,
    params: &[(String, Value)],
) -> bool {
    let params: Vec<(&str, Value)> = params
        .iter()
        .map(|(n, v)| (n.as_str(), v.clone()))
        .collect();
    match conn.session.execute_with_params(sql, &params) {
        Err(e) => send_error_v(stream, conn.version, &e).is_ok(),
        Ok(StatementOutcome::Done) => {
            wait_replicas_acked(shared);
            send(stream, resp::DONE, &[]).is_ok()
        }
        Ok(StatementOutcome::Affected(n)) => {
            wait_replicas_acked(shared);
            send(stream, resp::AFFECTED, &protocol::encode_affected(n as u64)).is_ok()
        }
        Ok(StatementOutcome::Rows(result)) => stream_rows(stream, shared, &result),
    }
}

/// What the subscriber poll saw between chunk shipments.
enum SubFrame {
    /// Nothing waiting; go ship more WAL.
    Idle,
    /// REPL_ACK: the replica has applied through this watermark.
    Ack(u64),
    /// BYE, a dead socket, or a frame a subscriber must not send.
    Done,
}

/// Non-blocking-ish poll for a subscriber frame: a 1 ms peek, then a
/// full frame read only once bytes have started arriving.
fn try_subscriber_frame(stream: &mut TcpStream, shared: &Shared) -> SubFrame {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(1)));
    let mut first = [0u8; 1];
    match stream.peek(&mut first) {
        Ok(0) => return SubFrame::Done,
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            return SubFrame::Idle;
        }
        Err(_) => return SubFrame::Done,
    }
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    match protocol::read_frame(stream) {
        Ok((req::REPL_ACK, body)) => match protocol::decode_repl_ack(&body) {
            Ok((_gen, _offset, watermark)) => SubFrame::Ack(watermark),
            Err(_) => SubFrame::Done,
        },
        Ok(_) | Err(_) => SubFrame::Done,
    }
}

/// Runs a replication subscriber to completion: catch-up (snapshot if
/// the requested generation is gone), then continuous WAL tailing with
/// heartbeats, draining REPL_ACKs between shipments. The connection is
/// dedicated to the feed once SUBSCRIBE arrives.
fn serve_subscriber(
    stream: &mut TcpStream,
    conn: &Conn,
    shared: &Shared,
    mut generation: u64,
    mut offset: u64,
) {
    let db = &shared.db;
    let stats = db.repl_stats();
    // Highest watermark the replica has been told about; heartbeats
    // fire only when the durable frontier moves past it.
    let mut last_watermark_sent = 0u64;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match try_subscriber_frame(stream, shared) {
            SubFrame::Idle => {}
            SubFrame::Ack(watermark) => {
                shared.repl.note_ack(conn.id, watermark);
                if let (Some(p), Some(min)) = (db.wal_progress(), shared.repl.min_acked()) {
                    stats.set_lag(p.seq.saturating_sub(min));
                }
                // Drain queued acks before shipping more bytes.
                continue;
            }
            SubFrame::Done => break,
        }
        match db.repl_log_read(generation, offset, REPL_CHUNK_MAX) {
            Err(e) => {
                let _ = send_error_v(stream, conn.version, &e);
                break;
            }
            Ok(minidb::LogRead::Restart) => {
                // The generation the replica wants is gone (it predates
                // the latest checkpoint): resync from the snapshot.
                let (snap_gen, bytes) = match db.repl_snapshot() {
                    Ok(x) => x,
                    Err(e) => {
                        let _ = send_error_v(stream, conn.version, &e);
                        break;
                    }
                };
                let mut start = 0;
                let mut failed = false;
                loop {
                    let end = (start + REPL_CHUNK_MAX).min(bytes.len());
                    let is_last = end == bytes.len();
                    let body =
                        protocol::encode_snapshot_chunk(snap_gen, is_last, &bytes[start..end]);
                    if send(stream, resp::SNAPSHOT_CHUNK, &body).is_err() {
                        failed = true;
                        break;
                    }
                    stats.record_chunk((end - start) as u64);
                    if is_last {
                        break;
                    }
                    start = end;
                }
                if failed {
                    break;
                }
                generation = snap_gen;
                offset = minidb::wal::record::LOG_HEADER_LEN as u64;
            }
            Ok(minidb::LogRead::Chunk { bytes, watermark }) => {
                if !bytes.is_empty() {
                    let body = protocol::encode_wal_chunk(generation, offset, watermark, &bytes);
                    if send(stream, resp::WAL_CHUNK, &body).is_err() {
                        break;
                    }
                    offset += bytes.len() as u64;
                    stats.record_chunk(bytes.len() as u64);
                    if watermark > 0 {
                        last_watermark_sent = last_watermark_sent.max(watermark);
                        stats.set_last_seq(watermark);
                    }
                } else if watermark > last_watermark_sent {
                    // Caught up, but the durable frontier moved (e.g.
                    // commits the replica already has bytes for were
                    // just fsynced): heartbeat so it can ack them.
                    let body = protocol::encode_wal_chunk(generation, offset, watermark, &[]);
                    if send(stream, resp::WAL_CHUNK, &body).is_err() {
                        break;
                    }
                    last_watermark_sent = watermark;
                    stats.set_last_seq(watermark);
                } else if let Some(p) = db.wal_progress() {
                    // Fully caught up: sleep until the WAL moves. The
                    // short timeout keeps ack draining responsive.
                    let _ = db.wal_progress_wait(&p, POLL_INTERVAL);
                } else {
                    thread::sleep(POLL_INTERVAL);
                }
            }
        }
    }
    shared.repl.unregister(conn.id);
}

/// Slack left under [`protocol::MAX_FRAME`] for the frame length
/// prefix, the tag byte, and headroom against off-by-a-few drift.
const FRAME_SLACK: usize = 1024;

/// Streams a materialized result set: header, row batches, trailer.
///
/// Batches close on whichever bound hits first: `rows_per_batch` rows,
/// or the byte budget that keeps every frame under
/// [`protocol::MAX_FRAME`] — a result set of huge rows splits into many
/// small-count batches instead of killing the connection with an
/// oversized frame. A single row too large for any frame is a
/// statement-level error (the client gets a typed ERROR mid-stream and
/// the connection survives).
fn stream_rows(stream: &mut TcpStream, shared: &Shared, result: &minidb::QueryResult) -> bool {
    let display = |v: &Value| shared.db.with_catalog(|c| c.display_value(v));
    let header = protocol::encode_rows_header(&result.columns, &shared.types);
    if send(stream, resp::ROWS_HEADER, &header).is_err() {
        return false;
    }
    let max_rows = shared.cfg.rows_per_batch.max(1);
    let budget = protocol::MAX_FRAME - FRAME_SLACK;
    let mut batch = protocol::RowBatchBuilder::new(budget);
    for row in &result.rows {
        match batch.push(row, &display) {
            protocol::RowPush::Added => {}
            protocol::RowPush::BatchFull => {
                if send(stream, resp::ROW_BATCH, &batch.finish()).is_err() {
                    return false;
                }
                batch = protocol::RowBatchBuilder::new(budget);
                // A row that fails even a fresh batch is unshippable.
                if let protocol::RowPush::RowTooBig(bytes) = batch.push(row, &display) {
                    return row_too_big(stream, bytes);
                }
            }
            protocol::RowPush::RowTooBig(bytes) => return row_too_big(stream, bytes),
        }
        if batch.rows() >= max_rows {
            if send(stream, resp::ROW_BATCH, &batch.finish()).is_err() {
                return false;
            }
            batch = protocol::RowBatchBuilder::new(budget);
        }
    }
    if !batch.is_empty() && send(stream, resp::ROW_BATCH, &batch.finish()).is_err() {
        return false;
    }
    // An empty result still sends header + trailer so the client sees
    // column names.
    send(stream, resp::ROWS_DONE, &[]).is_ok()
}

/// Mid-stream refusal of a row no frame can carry: a typed ERROR ends
/// the result set, and the connection stays usable.
fn row_too_big(stream: &mut TcpStream, bytes: usize) -> bool {
    let e = DbError::exec(format!(
        "row of {bytes} bytes exceeds the {} byte frame limit",
        protocol::MAX_FRAME
    ));
    send_error(stream, &e).is_ok()
}
