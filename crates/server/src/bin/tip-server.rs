//! Stand-alone TIP server.
//!
//! ```text
//! tip-server [--listen ADDR] [--max-connections N] [--workers N]
//!            [--max-subscribers N] [--demo]
//!            [--data-dir DIR] [--sync MODE] [--checkpoint-bytes N]
//!            [--mvcc-retention N] [--page-size N] [--pool-pages N]
//!            [--replicate-from ADDR]
//! tip-server --promote ADDR
//! ```
//!
//! `--workers` sizes the statement-execution pool (0 = one per core);
//! `--max-subscribers` caps replication subscribers, which hold
//! dedicated streaming threads and do not count against
//! `--max-connections`.
//!
//! `--demo` pre-populates the shared database with the synthetic
//! medical workload so a `tip-browser-cli connect <addr>` in another
//! terminal has something to query.
//!
//! `--data-dir DIR` runs durable: the database recovers from `DIR` on
//! startup (snapshot + WAL replay) and logs every committed statement.
//! `--sync` picks the fsync policy (`every-commit` [default], `off`, or
//! `interval:MILLIS`); `--checkpoint-bytes N` sets the log size that
//! triggers a checkpoint (0 disables size-triggered checkpoints);
//! `--mvcc-retention N` sets how many published commits stay readable
//! for AS OF queries; `--page-size N` sets the cold-page size in bytes
//! (512..=32768, a multiple of 8) and `--pool-pages N` bounds how many
//! such pages the buffer pool keeps resident — together they cap the
//! memory historical rows can occupy regardless of database size.
//!
//! `--replicate-from ADDR` starts this server as a read-only replica of
//! the primary at `ADDR`: it streams the primary's WAL, serves reads
//! (writes are rejected with a typed error naming the primary), and
//! accepts an admin PROMOTE frame to take over as primary. When
//! `--data-dir` is also given the directory is *not* opened at startup;
//! it becomes the promoted node's durable home.
//!
//! `--promote ADDR` is the matching admin verb: send the PROMOTE frame
//! to the replica at `ADDR` and exit (0 on success).
//!
//! A durable server (or a replica) also reads stdin: a `quit` line
//! performs a clean shutdown (stop accepting, final checkpoint) — the
//! hook integration tests use to distinguish clean shutdown from a kill.

use minidb::{Database, DbError, DurabilityConfig, SyncMode};
use std::io::BufRead;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tip_blade::{TipBlade, TipTypes};
use tip_server::repl::ReplicationClient;
use tip_server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: tip-server [--listen ADDR] [--max-connections N] [--workers N] \
         [--max-subscribers N] [--demo] \
         [--data-dir DIR] [--sync off|every-commit|interval:MS] [--checkpoint-bytes N] \
         [--mvcc-retention N] [--page-size N] [--pool-pages N] \
         [--replicate-from ADDR] | --promote ADDR"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut listen = "127.0.0.1:7474".to_string();
    let mut cfg = ServerConfig::default();
    let mut demo = false;
    let mut data_dir: Option<String> = None;
    let mut replicate_from: Option<String> = None;
    let mut durability = DurabilityConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = args.next().unwrap_or_else(|| usage()),
            "--max-connections" => {
                cfg.max_connections = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--workers" => {
                cfg.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--max-subscribers" => {
                cfg.max_subscribers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--demo" => demo = true,
            "--promote" => {
                let addr = args.next().unwrap_or_else(|| usage());
                return match tip_client::promote_replica(&addr) {
                    Ok(()) => {
                        eprintln!("tip-server: {addr} promoted to primary");
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("tip-server: promote {addr} failed: {e}");
                        ExitCode::FAILURE
                    }
                };
            }
            "--data-dir" => data_dir = Some(args.next().unwrap_or_else(|| usage())),
            "--replicate-from" => replicate_from = Some(args.next().unwrap_or_else(|| usage())),
            "--sync" => {
                durability.sync_mode = args
                    .next()
                    .and_then(|v| SyncMode::parse(&v))
                    .unwrap_or_else(|| usage())
            }
            "--checkpoint-bytes" => {
                durability.checkpoint_bytes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--mvcc-retention" => {
                durability.mvcc_retention = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--page-size" => {
                durability.page_size = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--pool-pages" => {
                durability.pool_pages = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    // A replica never opens the data directory at startup: its state
    // comes from the primary's snapshot + WAL stream. The directory (if
    // given) is reserved for the durable life it starts at promotion.
    let db: Arc<Database> = match (&replicate_from, &data_dir) {
        (None, Some(dir)) => {
            match Database::open_with(dir, durability.clone(), |db| db.install_blade(&TipBlade)) {
                Ok((db, report)) => {
                    eprintln!("tip-server: recovered {dir}: {}", report.summary());
                    db
                }
                Err(e) => {
                    eprintln!("tip-server: recovery of {dir} failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => {
            let db = Database::new();
            db.install_blade(&TipBlade)
                .expect("fresh database accepts the blade");
            db.set_mvcc_retention(durability.mvcc_retention);
            db
        }
    };

    if demo && replicate_from.is_some() {
        eprintln!("demo: a replica takes its data from the primary, skipping load");
        demo = false;
    }

    // A recovered directory may already hold the demo tables; loading
    // them twice would fail on CREATE TABLE, so only seed an empty db.
    let have_tables = db.with_storage(|s| !s.table_names().is_empty());
    if demo && have_tables {
        eprintln!("demo: data directory already populated, skipping load");
    } else if demo {
        let session = db.session();
        let types = db
            .with_catalog(TipTypes::from_catalog)
            .expect("blade just installed");
        let medical = tip_workload::generate(&tip_workload::MedicalConfig::default());
        match tip_workload::populate_tip(&session, types, &medical) {
            Ok(n) => eprintln!("demo: loaded {n} prescriptions"),
            Err(e) => {
                eprintln!("demo load failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // One fd per admitted connection plus listener/wake/log slack; the
    // default 1024 soft limit would cap admission far below the knob.
    tip_server::net::raise_nofile_limit(cfg.max_connections as u64 + 512);

    let server = match Server::bind(listen.as_str(), &db, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tip-server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut server = server;

    if let Some(primary) = &replicate_from {
        db.set_read_only(primary.clone());
        let client = Mutex::new(Some(ReplicationClient::start(&db, primary.clone())));
        let promote_db = Arc::clone(&db);
        let promote_dir = data_dir.clone();
        let promote_cfg = durability.clone();
        let was_primary = primary.clone();
        server.set_promote_handler(move || {
            // Stop the stream exactly once; if durability attachment
            // below fails, a PROMOTE retry skips straight back to it.
            if let Some(c) = client.lock().unwrap().take() {
                c.stop_and_drain();
            } else if promote_db.read_only_primary().is_none() {
                return Err(DbError::unavailable("this node was already promoted"));
            }
            // Durability before writes: until the WAL is open for
            // append the node must keep refusing writes, so a failed
            // attach leaves it read-only (fails closed) instead of
            // accepting writes that would never be logged.
            if let Some(dir) = &promote_dir {
                promote_db.attach_durability(dir, promote_cfg.clone())?;
            }
            promote_db.clear_read_only();
            let applied = promote_db.repl_stats().last_seq();
            eprintln!(
                "tip-server: promoted (was replicating {was_primary}); last applied seq {applied}"
            );
            Ok(applied)
        });
        eprintln!("tip-server: replica of {primary}");
    }

    eprintln!("tip-server listening on {}", server.local_addr());

    if data_dir.is_some() || replicate_from.is_some() {
        // Watch stdin for a clean-shutdown request while serving. EOF
        // (stdin closed, e.g. daemonized) just parks.
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            match line {
                Ok(l) if l.trim() == "quit" => {
                    eprintln!("tip-server: clean shutdown requested");
                    server.shutdown();
                    if let Err(e) = db.close() {
                        eprintln!("tip-server: final checkpoint failed: {e}");
                        return ExitCode::FAILURE;
                    }
                    return ExitCode::SUCCESS;
                }
                Ok(_) => {}
                Err(_) => break,
            }
        }
    }

    // Serve until the process is killed; connections are handled on
    // their own threads.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
