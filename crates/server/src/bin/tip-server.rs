//! Stand-alone TIP server.
//!
//! ```text
//! tip-server [--listen ADDR] [--max-connections N] [--demo]
//!            [--data-dir DIR] [--sync MODE] [--checkpoint-bytes N]
//! ```
//!
//! `--demo` pre-populates the shared database with the synthetic
//! medical workload so a `tip-browser-cli connect <addr>` in another
//! terminal has something to query.
//!
//! `--data-dir DIR` runs durable: the database recovers from `DIR` on
//! startup (snapshot + WAL replay) and logs every committed statement.
//! `--sync` picks the fsync policy (`every-commit` [default], `off`, or
//! `interval:MILLIS`); `--checkpoint-bytes N` sets the log size that
//! triggers a checkpoint (0 disables size-triggered checkpoints).
//!
//! A durable server also reads stdin: a `quit` line performs a clean
//! shutdown (stop accepting, final checkpoint) — the hook integration
//! tests use to distinguish clean shutdown from a kill.

use minidb::{Database, DurabilityConfig, SyncMode};
use std::io::BufRead;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use tip_blade::{TipBlade, TipTypes};
use tip_server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: tip-server [--listen ADDR] [--max-connections N] [--demo] \
         [--data-dir DIR] [--sync off|every-commit|interval:MS] [--checkpoint-bytes N]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut listen = "127.0.0.1:7474".to_string();
    let mut cfg = ServerConfig::default();
    let mut demo = false;
    let mut data_dir: Option<String> = None;
    let mut durability = DurabilityConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = args.next().unwrap_or_else(|| usage()),
            "--max-connections" => {
                cfg.max_connections = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--demo" => demo = true,
            "--data-dir" => data_dir = Some(args.next().unwrap_or_else(|| usage())),
            "--sync" => {
                durability.sync_mode = args
                    .next()
                    .and_then(|v| SyncMode::parse(&v))
                    .unwrap_or_else(|| usage())
            }
            "--checkpoint-bytes" => {
                durability.checkpoint_bytes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let db: Arc<Database> = match &data_dir {
        Some(dir) => match Database::open_with(dir, durability, |db| db.install_blade(&TipBlade)) {
            Ok((db, report)) => {
                eprintln!("tip-server: recovered {dir}: {}", report.summary());
                db
            }
            Err(e) => {
                eprintln!("tip-server: recovery of {dir} failed: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let db = Database::new();
            db.install_blade(&TipBlade)
                .expect("fresh database accepts the blade");
            db
        }
    };

    // A recovered directory may already hold the demo tables; loading
    // them twice would fail on CREATE TABLE, so only seed an empty db.
    let have_tables = db.with_storage(|s| !s.table_names().is_empty());
    if demo && have_tables {
        eprintln!("demo: data directory already populated, skipping load");
    } else if demo {
        let session = db.session();
        let types = db
            .with_catalog(TipTypes::from_catalog)
            .expect("blade just installed");
        let medical = tip_workload::generate(&tip_workload::MedicalConfig::default());
        match tip_workload::populate_tip(&session, types, &medical) {
            Ok(n) => eprintln!("demo: loaded {n} prescriptions"),
            Err(e) => {
                eprintln!("demo load failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut server = match Server::bind(listen.as_str(), &db, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tip-server: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("tip-server listening on {}", server.local_addr());

    if data_dir.is_some() {
        // Durable mode: watch stdin for a clean-shutdown request while
        // serving. EOF (stdin closed, e.g. daemonized) just parks.
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            match line {
                Ok(l) if l.trim() == "quit" => {
                    eprintln!("tip-server: clean shutdown requested");
                    server.shutdown();
                    if let Err(e) = db.close() {
                        eprintln!("tip-server: final checkpoint failed: {e}");
                        return ExitCode::FAILURE;
                    }
                    return ExitCode::SUCCESS;
                }
                Ok(_) => {}
                Err(_) => break,
            }
        }
    }

    // Serve until the process is killed; connections are handled on
    // their own threads.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
