//! Stand-alone TIP server.
//!
//! ```text
//! tip-server [--listen ADDR] [--max-connections N] [--demo]
//! ```
//!
//! `--demo` pre-populates the shared database with the synthetic
//! medical workload so a `tip-browser-cli connect <addr>` in another
//! terminal has something to query.

use minidb::Database;
use std::process::ExitCode;
use std::time::Duration;
use tip_blade::{TipBlade, TipTypes};
use tip_server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!("usage: tip-server [--listen ADDR] [--max-connections N] [--demo]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut listen = "127.0.0.1:7474".to_string();
    let mut cfg = ServerConfig::default();
    let mut demo = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = args.next().unwrap_or_else(|| usage()),
            "--max-connections" => {
                cfg.max_connections = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--demo" => demo = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let db = Database::new();
    db.install_blade(&TipBlade)
        .expect("fresh database accepts the blade");

    if demo {
        let session = db.session();
        let types = db
            .with_catalog(TipTypes::from_catalog)
            .expect("blade just installed");
        let medical = tip_workload::generate(&tip_workload::MedicalConfig::default());
        match tip_workload::populate_tip(&session, types, &medical) {
            Ok(n) => eprintln!("demo: loaded {n} prescriptions"),
            Err(e) => {
                eprintln!("demo load failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let server = match Server::bind(listen.as_str(), &db, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tip-server: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("tip-server listening on {}", server.local_addr());

    // Serve until the process is killed; connections are handled on
    // their own threads.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
