//! The fixed worker pool: executes queued statements and commits their
//! responses to the connection outbox.
//!
//! Workers never touch sockets in a blocking way — every response is
//! encoded into a local buffer, appended to the connection's outbox
//! under the queue→out locks, and flushed as far as the nonblocking
//! socket allows. A connection whose outbox exceeds the write budget
//! is *parked* (descheduled) rather than letting a stalled client pin
//! a worker; the reactor unparks it when EPOLLOUT drains the buffer.

use crate::conn::{flush_locked, ConnShared, Control, ControlQueue, Request};
use crate::{wait_replicas_acked, Shared};
use minidb::{DbError, StatementOutcome, Value};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use tip_client::protocol::{self, req, resp};

/// Prepared statements one connection may hold open at once.
const MAX_PREPARED_PER_CONN: usize = 256;

/// Emitter buffers larger than this spill to the outbox mid-statement,
/// bounding the duplicate copy while a huge result set streams.
const SPILL_BYTES: usize = 1 << 20;

/// Connections with runnable work, consumed by the worker pool.
pub(crate) struct RunQueue {
    inner: StdMutex<RunQueueInner>,
    ready: Condvar,
}

struct RunQueueInner {
    queue: VecDeque<Arc<ConnShared>>,
    stop: bool,
}

impl RunQueue {
    pub(crate) fn new() -> RunQueue {
        RunQueue {
            inner: StdMutex::new(RunQueueInner {
                queue: VecDeque::new(),
                stop: false,
            }),
            ready: Condvar::new(),
        }
    }

    pub(crate) fn push(&self, conn: Arc<ConnShared>) {
        self.inner.lock().unwrap().queue.push_back(conn);
        self.ready.notify_one();
    }

    /// Blocks for the next runnable connection. Even after `stop`,
    /// remaining work is handed out — `None` only once the queue is
    /// empty *and* stopped, so shutdown drains queued statements.
    pub(crate) fn pop(&self) -> Option<Arc<ConnShared>> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if let Some(conn) = g.queue.pop_front() {
                return Some(conn);
            }
            if g.stop {
                return None;
            }
            g = self.ready.wait(g).unwrap();
        }
    }

    pub(crate) fn stop(&self) {
        self.inner.lock().unwrap().stop = true;
        self.ready.notify_all();
    }
}

/// What servicing one request decided about the connection's future.
enum Action {
    /// Keep servicing the queue.
    Continue,
    /// Close once the outbox drains (BYE, protocol fault, Shut).
    Close,
    /// Hand the connection to a replication subscriber thread.
    Detach { generation: u64, offset: u64 },
}

/// Response frames for the statement in flight, flushed to the outbox
/// at the statement's commit point (or spilled early when large).
struct Emitter<'a> {
    conn: &'a ConnShared,
    ctrl: &'a ControlQueue,
    buf: Vec<u8>,
}

impl<'a> Emitter<'a> {
    fn new(conn: &'a ConnShared, ctrl: &'a ControlQueue) -> Emitter<'a> {
        Emitter {
            conn,
            ctrl,
            buf: Vec::new(),
        }
    }

    fn frame(&mut self, tag: u8, body: &[u8]) {
        protocol::write_frame(&mut self.buf, tag, body)
            .expect("response frames stay under MAX_FRAME by construction");
    }

    fn error(&mut self, version: u16, e: &DbError) {
        self.frame(resp::ERROR, &protocol::encode_error_for(e, version));
    }

    /// Mid-stream spill for large result sets.
    fn spill_if_large(&mut self) {
        if self.buf.len() >= SPILL_BYTES {
            self.conn.spill(&self.buf, self.ctrl);
            self.buf.clear();
        }
    }
}

pub(crate) fn worker_loop(shared: Arc<Shared>, runq: Arc<RunQueue>, ctrl: Arc<ControlQueue>) {
    while let Some(conn) = runq.pop() {
        service(&shared, &ctrl, &conn);
    }
}

/// Services one connection's queue until it empties, parks, closes, or
/// detaches. Exactly one worker runs this per connection at a time
/// (the `scheduled` flag), so statement order per connection is the
/// arrival order — the pipelining guarantee.
///
/// Pipelined statements are drained as a batch: their responses
/// accumulate in one emitter buffer and commit to the socket in a
/// single append + flush, so a burst of N small statements costs one
/// write syscall, not N.
fn service(shared: &Arc<Shared>, ctrl: &ControlQueue, conn: &Arc<ConnShared>) {
    loop {
        let mut em = Emitter::new(conn, ctrl);
        let mut action = Action::Continue;
        let mut processed = false;
        loop {
            let request = {
                let mut q = conn.queue.lock();
                match q.reqs.pop_front() {
                    Some(r) => {
                        if let Request::Frame(_, body) = &r {
                            q.queued_bytes = q.queued_bytes.saturating_sub(body.len());
                        }
                        Some(r)
                    }
                    None => {
                        if !processed {
                            q.scheduled = false;
                            return;
                        }
                        None
                    }
                }
            };
            let Some(request) = request else { break };
            processed = true;
            action = match request {
                Request::Frame(tag, body) => dispatch(shared, conn, &mut em, tag, &body),
                Request::Shut(err) => {
                    if let Some(e) = err {
                        em.error(conn.version, &e);
                    }
                    Action::Close
                }
            };
            // Close/Detach end the batch; so does a buffer big enough
            // that holding more responses back stops paying for itself.
            if !matches!(action, Action::Continue) || em.buf.len() >= SPILL_BYTES {
                break;
            }
        }

        // Commit point: append + flush + park decision are atomic under
        // queue→out so the reactor's unpark path can't race us into a
        // stranded connection.
        let mut q = conn.queue.lock();
        let mut out = conn.out.lock();
        if !out.dead && !em.buf.is_empty() {
            out.buf.extend_from_slice(&em.buf);
        }
        flush_locked(&conn.wstream, &mut out);
        if out.dead {
            q.scheduled = false;
            drop(out);
            drop(q);
            ctrl.push(Control::Closing(conn.id));
            return;
        }
        let pending = out.pending();
        let mut need_pollout = false;
        if pending > 0 && !out.want_pollout {
            out.want_pollout = true;
            need_pollout = true;
        }
        match action {
            Action::Close => {
                out.closing = true;
                q.scheduled = false;
                drop(out);
                drop(q);
                ctrl.push(Control::Closing(conn.id));
                return;
            }
            Action::Detach { generation, offset } => {
                q.scheduled = false;
                q.detached = true;
                drop(out);
                drop(q);
                ctrl.push(Control::Detach {
                    conn: conn.id,
                    generation,
                    offset,
                });
                return;
            }
            Action::Continue => {}
        }
        let mut resume = false;
        let mut parked = false;
        if pending > shared.cfg.write_budget {
            q.parked = true;
            q.scheduled = false;
            parked = true;
            shared.stats.park_events.fetch_add(1, Ordering::Relaxed);
        } else if q.paused_read && q.can_resume(shared.cfg.max_pipeline) {
            q.paused_read = false;
            resume = true;
        }
        drop(out);
        drop(q);
        if need_pollout {
            ctrl.push(Control::Pollout(conn.id));
        }
        if resume {
            ctrl.push(Control::ResumeRead(conn.id));
        }
        if parked {
            return;
        }
    }
}

/// Handles one request frame, emitting response frames. Mirrors the
/// pre-reactor dispatch arm for arm: the same errors close (or keep)
/// the connection, byte for byte.
fn dispatch(
    shared: &Arc<Shared>,
    conn: &Arc<ConnShared>,
    em: &mut Emitter<'_>,
    tag: u8,
    body: &[u8],
) -> Action {
    let version = conn.version;
    match tag {
        req::STMT => {
            let stmt = match protocol::decode_stmt(body, &shared.types) {
                Ok(s) => s,
                Err(e) => {
                    // Undecodable statement: the stream itself is suspect.
                    em.error(version, &e);
                    return Action::Close;
                }
            };
            run_statement(shared, conn, em, &stmt.sql, &stmt.params)
        }
        req::PREPARE if version >= 3 => {
            let sql = match protocol::decode_prepare(body) {
                Ok(s) => s,
                Err(e) => {
                    em.error(version, &e);
                    return Action::Close;
                }
            };
            let mut exec = conn.exec.lock();
            if exec.prepared.len() >= MAX_PREPARED_PER_CONN {
                let e = DbError::unavailable(format!(
                    "too many prepared statements (limit {MAX_PREPARED_PER_CONN}); close some first"
                ));
                em.error(version, &e);
                return Action::Continue;
            }
            // Validate the text now so EXECUTE_PREPARED never trips a
            // parse error; planning stays lazy in the engine's cache.
            match exec.session.prepare(&sql) {
                // A bad statement is a statement-level error, not a
                // protocol fault: the connection stays up.
                Err(e) => em.error(version, &e),
                Ok(_) => {
                    let id = exec.next_prepared_id;
                    exec.next_prepared_id += 1;
                    exec.prepared.insert(id, sql);
                    em.frame(resp::PREPARED_OK, &protocol::encode_prepared_ok(id));
                }
            }
            Action::Continue
        }
        req::EXECUTE_PREPARED if version >= 3 => {
            let (id, params) = match protocol::decode_execute_prepared(body, &shared.types) {
                Ok(x) => x,
                Err(e) => {
                    em.error(version, &e);
                    return Action::Close;
                }
            };
            let sql = conn.exec.lock().prepared.get(&id).cloned();
            let Some(sql) = sql else {
                let e = DbError::NotFound {
                    kind: "prepared statement",
                    name: id.to_string(),
                };
                em.error(version, &e);
                return Action::Continue;
            };
            run_statement(shared, conn, em, &sql, &params)
        }
        req::CLOSE_PREPARED if version >= 3 => match protocol::decode_close_prepared(body) {
            Ok(id) => {
                // Idempotent: closing an unknown id is a no-op.
                conn.exec.lock().prepared.remove(&id);
                em.frame(resp::DONE, &[]);
                Action::Continue
            }
            Err(e) => {
                em.error(version, &e);
                Action::Close
            }
        },
        req::SET_NOW => match protocol::decode_set_now(body) {
            Ok(now) => {
                conn.exec.lock().session.set_now_unix(now);
                em.frame(resp::DONE, &[]);
                Action::Continue
            }
            Err(e) => {
                em.error(version, &e);
                Action::Close
            }
        },
        req::SESSION_STATS => {
            let mut snap = conn.exec.lock().session.metrics().snapshot();
            crate::overlay_node_state(&mut snap, shared);
            em.frame(resp::METRICS, &protocol::encode_metrics_for(&snap, version));
            Action::Continue
        }
        req::SERVER_METRICS => {
            let mut snap = shared.server_metrics();
            crate::overlay_node_state(&mut snap, shared);
            em.frame(resp::METRICS, &protocol::encode_metrics_for(&snap, version));
            Action::Continue
        }
        req::SUBSCRIBE if version >= 6 => match protocol::decode_subscribe(body) {
            Ok((generation, offset)) => {
                // Reserve a subscriber slot atomically; subscribers have
                // their own cap and do not count against client
                // admission once detached.
                let prev = shared.stats.subscribers.fetch_add(1, Ordering::SeqCst);
                if prev >= shared.cfg.max_subscribers {
                    shared.stats.subscribers.fetch_sub(1, Ordering::SeqCst);
                    let e = DbError::unavailable(format!(
                        "too many replication subscribers (limit {})",
                        shared.cfg.max_subscribers
                    ));
                    em.error(version, &e);
                    return Action::Close;
                }
                Action::Detach { generation, offset }
            }
            Err(e) => {
                em.error(version, &e);
                Action::Close
            }
        },
        req::PROMOTE if version >= 6 => {
            let handler = shared.promote.lock().unwrap();
            match handler.as_ref() {
                None => {
                    let e = DbError::unavailable("this node is not a replica: nothing to promote");
                    em.error(version, &e);
                }
                Some(f) => match f() {
                    Ok(_applied_seq) => em.frame(resp::DONE, &[]),
                    Err(e) => em.error(version, &e),
                },
            }
            Action::Continue
        }
        req::BYE => Action::Close,
        other => {
            em.error(
                version,
                &DbError::unavailable(format!("unexpected request tag {other:#04x}")),
            );
            Action::Close
        }
    }
}

/// Executes one statement and emits its outcome; shared by STMT and
/// EXECUTE_PREPARED. Statement-level errors keep the connection up.
fn run_statement(
    shared: &Arc<Shared>,
    conn: &Arc<ConnShared>,
    em: &mut Emitter<'_>,
    sql: &str,
    params: &[(String, Value)],
) -> Action {
    let params: Vec<(&str, Value)> = params
        .iter()
        .map(|(n, v)| (n.as_str(), v.clone()))
        .collect();
    let outcome = conn.exec.lock().session.execute_with_params(sql, &params);
    match outcome {
        Err(e) => em.error(conn.version, &e),
        Ok(StatementOutcome::Done) => {
            wait_replicas_acked(shared);
            em.frame(resp::DONE, &[]);
        }
        Ok(StatementOutcome::Affected(n)) => {
            wait_replicas_acked(shared);
            em.frame(resp::AFFECTED, &protocol::encode_affected(n as u64));
        }
        Ok(StatementOutcome::Rows(result)) => stream_rows(shared, em, &result),
    }
    Action::Continue
}

/// Slack left under [`protocol::MAX_FRAME`] for the frame length
/// prefix, the tag byte, and headroom against off-by-a-few drift.
const FRAME_SLACK: usize = 1024;

/// Emits a materialized result set: header, row batches, trailer.
///
/// Batches close on whichever bound hits first: `rows_per_batch` rows,
/// or the byte budget that keeps every frame under
/// [`protocol::MAX_FRAME`]. A single row too large for any frame is a
/// statement-level error (the client gets a typed ERROR mid-stream and
/// the connection survives). Large sets spill to the outbox as they
/// encode, so the worker-side copy stays bounded.
fn stream_rows(shared: &Arc<Shared>, em: &mut Emitter<'_>, result: &minidb::QueryResult) {
    let display = |v: &Value| shared.db.with_catalog(|c| c.display_value(v));
    let header = protocol::encode_rows_header(&result.columns, &shared.types);
    em.frame(resp::ROWS_HEADER, &header);
    let max_rows = shared.cfg.rows_per_batch.max(1);
    let budget = protocol::MAX_FRAME - FRAME_SLACK;
    let mut batch = protocol::RowBatchBuilder::new(budget);
    for row in &result.rows {
        match batch.push(row, &display) {
            protocol::RowPush::Added => {}
            protocol::RowPush::BatchFull => {
                em.frame(resp::ROW_BATCH, &batch.finish());
                em.spill_if_large();
                batch = protocol::RowBatchBuilder::new(budget);
                // A row that fails even a fresh batch is unshippable.
                if let protocol::RowPush::RowTooBig(bytes) = batch.push(row, &display) {
                    row_too_big(em, bytes);
                    return;
                }
            }
            protocol::RowPush::RowTooBig(bytes) => {
                row_too_big(em, bytes);
                return;
            }
        }
        if batch.rows() >= max_rows {
            em.frame(resp::ROW_BATCH, &batch.finish());
            em.spill_if_large();
            batch = protocol::RowBatchBuilder::new(budget);
        }
    }
    if !batch.is_empty() {
        em.frame(resp::ROW_BATCH, &batch.finish());
    }
    // An empty result still sends header + trailer so the client sees
    // column names.
    em.frame(resp::ROWS_DONE, &[]);
}

/// Mid-stream refusal of a row no frame can carry: a typed ERROR ends
/// the result set, and the connection stays usable. Encoded at the
/// current layout (not version-narrowed) exactly as before.
fn row_too_big(em: &mut Emitter<'_>, bytes: usize) {
    let e = DbError::exec(format!(
        "row of {bytes} bytes exceeds the {} byte frame limit",
        protocol::MAX_FRAME
    ));
    em.frame(resp::ERROR, &protocol::encode_error(&e));
}
