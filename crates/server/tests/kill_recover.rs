//! End-to-end crash durability: a real `tip-server` process in durable
//! mode is SIGKILLed mid-load; a restart on the same data directory must
//! serve every row the dead server acknowledged. A second leg exercises
//! the clean-shutdown path (`quit` on stdin → final checkpoint).

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use tip_client::{Connection, HostValue};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tip-killrec-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct ServerProc {
    child: Child,
    addr: String,
    /// Kept open: closing it would EOF the server's stdin watcher.
    stdin: std::process::ChildStdin,
}

/// Spawns the real `tip-server` binary in durable mode and waits for its
/// "listening on" line.
fn spawn_server(dir: &std::path::Path, sync: &str) -> ServerProc {
    spawn_with_args(&[
        "--listen",
        "127.0.0.1:0",
        "--data-dir",
        dir.to_str().unwrap(),
        "--sync",
        sync,
    ])
}

/// Spawns a read-only replica streaming from `primary`; `dir` becomes
/// its durable home if it is ever promoted.
fn spawn_replica(dir: &std::path::Path, primary: &str) -> ServerProc {
    spawn_with_args(&[
        "--listen",
        "127.0.0.1:0",
        "--replicate-from",
        primary,
        "--data-dir",
        dir.to_str().unwrap(),
    ])
}

fn spawn_with_args(args: &[&str]) -> ServerProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tip-server"))
        .args(args)
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tip-server");
    let stdin = child.stdin.take().unwrap();
    let stderr = child.stderr.take().unwrap();
    let mut lines = BufReader::new(stderr).lines();
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        assert!(
            Instant::now() < deadline,
            "server never reported an address"
        );
        let line = lines
            .next()
            .expect("server stderr closed before listening")
            .unwrap();
        if let Some(addr) = line.strip_prefix("tip-server listening on ") {
            break addr.trim().to_owned();
        }
    };
    // Drain the rest of stderr in the background so the server never
    // blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    ServerProc { child, addr, stdin }
}

fn connect(addr: &str) -> Connection {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match Connection::connect(addr) {
            Ok(c) => return c,
            Err(e) => {
                assert!(Instant::now() < deadline, "connect {addr}: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

fn fetch_ids(conn: &Connection) -> Vec<i64> {
    let mut rows = conn.query("SELECT id FROM acked ORDER BY id", &[]).unwrap();
    let mut out = Vec::new();
    while rows.next() {
        out.push(rows.get_int(0).unwrap());
    }
    out
}

#[test]
fn kill_nine_loses_no_acknowledged_row() {
    let dir = scratch("kill9");
    let mut acked: Vec<i64> = Vec::new();
    {
        let server = spawn_server(&dir, "every-commit");
        let conn = connect(&server.addr);
        conn.execute("CREATE TABLE acked (id INT, payload CHAR(32))", &[])
            .unwrap();
        // Load rows one committed statement at a time; every returned
        // execute() is an acknowledgement the row is durable.
        for i in 0..120i64 {
            conn.execute(
                "INSERT INTO acked VALUES (:id, 'payload-for-this-row')",
                &[("id", HostValue::Int(i))],
            )
            .unwrap();
            acked.push(i);
        }
        // SIGKILL mid-life: no flush, no checkpoint, no goodbye.
        let mut server = server;
        server.child.kill().unwrap();
        server.child.wait().unwrap();
    }

    let server = spawn_server(&dir, "every-commit");
    let conn = connect(&server.addr);
    assert_eq!(
        fetch_ids(&conn),
        acked,
        "restart must serve every acknowledged row"
    );
    // The recovered server is live, not read-only.
    conn.execute(
        "INSERT INTO acked VALUES (:id, 'after-recovery')",
        &[("id", HostValue::Int(999))],
    )
    .unwrap();
    let m = conn.server_metrics().unwrap();
    assert!(
        m.wal_replayed > 0,
        "METRICS over the wire reports the replay: {m:?}"
    );
    assert!(m.wal_appends > 0 && m.wal_fsyncs > 0, "{m:?}");
    let mut server = server;
    server.child.kill().unwrap();
    server.child.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The failover guarantee: SIGKILL the primary mid-load, promote the
/// replica, and every write the primary acknowledged must be readable
/// on the promoted node — which then accepts writes as the new primary.
#[test]
fn kill_primary_promote_replica_loses_no_acknowledged_row() {
    let pdir = scratch("promo-primary");
    let rdir = scratch("promo-replica");
    let mut primary = spawn_server(&pdir, "every-commit");
    let replica = spawn_replica(&rdir, &primary.addr);

    let conn = connect(&primary.addr);
    conn.execute("CREATE TABLE acked (id INT, payload CHAR(32))", &[])
        .unwrap();

    // Wait for the replica to finish catch-up (it can serve the table)
    // so it is registered for semi-synchronous acks before the writes
    // the test counts on.
    let rconn = connect(&replica.addr);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if rconn.query("SELECT id FROM acked", &[]).is_ok() {
            break;
        }
        assert!(Instant::now() < deadline, "replica never caught up");
        std::thread::sleep(Duration::from_millis(50));
    }
    // A replica refuses writes with a typed error naming the primary.
    let err = rconn
        .execute("INSERT INTO acked VALUES (1, 'nope')", &[])
        .unwrap_err();
    assert!(
        err.to_string().contains(&primary.addr),
        "read-only error names the primary: {err}"
    );

    // Every returned execute() is the primary's acknowledgement — under
    // semi-synchronous shipping the replica has the bytes too.
    let mut acked: Vec<i64> = Vec::new();
    for i in 0..120i64 {
        conn.execute(
            "INSERT INTO acked VALUES (:id, 'payload-for-this-row')",
            &[("id", HostValue::Int(i))],
        )
        .unwrap();
        acked.push(i);
    }

    // SIGKILL the primary mid-life, then fail over.
    primary.child.kill().unwrap();
    primary.child.wait().unwrap();
    tip_client::promote_replica(&replica.addr).unwrap();

    let pconn = connect(&replica.addr);
    assert_eq!(
        fetch_ids(&pconn),
        acked,
        "every write acked before the kill is on the promoted node"
    );
    // The promoted node is a primary now: writes succeed and its METRICS
    // report how far the replication stream had applied.
    pconn
        .execute(
            "INSERT INTO acked VALUES (:id, 'after-promotion')",
            &[("id", HostValue::Int(999))],
        )
        .unwrap();
    let m = pconn.server_metrics().unwrap();
    assert!(
        m.repl_last_seq > 0,
        "promoted node reports applied replication sequence: {m:?}"
    );
    let mut replica = replica;
    replica.child.kill().unwrap();
    replica.child.wait().unwrap();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn clean_shutdown_checkpoints_and_restarts_without_replay() {
    let dir = scratch("clean");
    {
        let mut server = spawn_server(&dir, "every-commit");
        let conn = connect(&server.addr);
        conn.execute("CREATE TABLE acked (id INT, payload CHAR(32))", &[])
            .unwrap();
        for i in 0..25i64 {
            conn.execute(
                "INSERT INTO acked VALUES (:id, 'x')",
                &[("id", HostValue::Int(i))],
            )
            .unwrap();
        }
        drop(conn);
        writeln!(server.stdin, "quit").unwrap();
        server.stdin.flush().unwrap();
        let status = server.child.wait().unwrap();
        assert!(status.success(), "clean shutdown exits zero: {status:?}");
    }

    let server = spawn_server(&dir, "every-commit");
    let conn = connect(&server.addr);
    assert_eq!(fetch_ids(&conn), (0..25).collect::<Vec<_>>());
    let m = conn.server_metrics().unwrap();
    assert_eq!(
        m.wal_replayed, 0,
        "a checkpointed directory needs no replay: {m:?}"
    );
    let mut server = server;
    server.child.kill().unwrap();
    server.child.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
