//! Backpressure: a stalled client must park its connection instead of
//! occupying a worker, and pipelined statements behind the stall must
//! still run — in order — once the client drains.

use minidb::{Database, Value};
use std::io::Read;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tip_blade::{TipBlade, TipTypes};
use tip_client::protocol::{self, req, resp, Hello};
use tip_client::Connection;
use tip_server::{Server, ServerConfig};

/// Rows big enough that the full result cannot fit in loopback socket
/// buffers: the outbox must spill past the write budget and park.
const BIG_ROWS: usize = 1500;
const BIG_PAYLOAD: usize = 8000;

fn big_server_with(cfg: ServerConfig) -> (Server, Arc<Database>) {
    let db = Database::new();
    db.install_blade(&TipBlade).unwrap();
    let server = Server::bind("127.0.0.1:0", &db, cfg).unwrap();
    let conn = Connection::connect(server.local_addr()).unwrap();
    conn.execute("CREATE TABLE big (k INT, v CHAR(8000))", &[])
        .unwrap();
    conn.execute("CREATE TABLE one (n INT)", &[]).unwrap();
    conn.execute("INSERT INTO one VALUES (7)", &[]).unwrap();
    let payload = "x".repeat(BIG_PAYLOAD);
    for k in 0..BIG_ROWS {
        conn.execute(
            "INSERT INTO big VALUES (:k, :v)",
            &[
                ("k", tip_client::HostValue::Int(k as i64)),
                ("v", tip_client::HostValue::Str(payload.clone())),
            ],
        )
        .unwrap();
    }
    (server, db)
}

fn big_server() -> (Server, Arc<Database>) {
    big_server_with(ServerConfig {
        workers: 1,
        write_budget: 64 * 1024,
        ..Default::default()
    })
}

fn hello(stream: &mut TcpStream) {
    protocol::write_frame(
        stream,
        req::HELLO,
        &protocol::encode_hello(&Hello {
            version: protocol::VERSION,
            now_unix: None,
        }),
    )
    .unwrap();
    let (tag, _) = protocol::read_frame(stream).unwrap();
    assert_eq!(tag, resp::HELLO_OK);
}

#[test]
fn slow_reader_parks_and_worker_stays_free() {
    let (server, db) = big_server();
    let types = db.with_catalog(TipTypes::from_catalog).unwrap();
    let display = |_: &Value| String::new();

    // Connection A: ask for ~12 MB of rows plus a pipelined follow-up,
    // then stop reading entirely.
    let mut slow = TcpStream::connect(server.local_addr()).unwrap();
    slow.set_nodelay(true).unwrap();
    hello(&mut slow);
    let mut wire = Vec::new();
    protocol::write_frame(
        &mut wire,
        req::STMT,
        &protocol::encode_stmt("SELECT k, v FROM big", &[], &display),
    )
    .unwrap();
    protocol::write_frame(
        &mut wire,
        req::STMT,
        &protocol::encode_stmt("SELECT n FROM one", &[], &display),
    )
    .unwrap();
    slow.write_all(&wire).unwrap();

    // The single worker must park A once its outbox exceeds the write
    // budget, not sit in a blocking send.
    let deadline = Instant::now() + Duration::from_secs(20);
    while server.stats().park_events == 0 {
        assert!(
            Instant::now() < deadline,
            "connection never parked; stats = {:?}",
            server.stats()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // With A parked, the only worker must be free to serve other
    // connections immediately.
    let other = Connection::connect(server.local_addr()).unwrap();
    for _ in 0..20 {
        let mut rows = other.query("SELECT n FROM one", &[]).unwrap();
        assert!(rows.next());
        assert_eq!(rows.get_int(0).unwrap(), 7);
    }

    let stats = server.stats();
    assert!(stats.park_events >= 1, "expected park events: {stats:?}");
    assert!(
        stats.pipelined >= 1,
        "A's second statement should count as pipelined: {stats:?}"
    );

    // Now drain A: every big row arrives intact, then the pipelined
    // statement's response — ordering preserved across the park.
    let (tag, body) = protocol::read_frame(&mut slow).unwrap();
    assert_eq!(tag, resp::ROWS_HEADER);
    let cols = protocol::decode_rows_header(&body, &types).unwrap();
    assert_eq!(cols.len(), 2);
    let mut seen = 0usize;
    loop {
        let (tag, body) = protocol::read_frame(&mut slow).unwrap();
        match tag {
            resp::ROW_BATCH => {
                for row in protocol::decode_row_batch(&body, 2, &types).unwrap() {
                    match &row[1] {
                        Value::Str(s) => assert_eq!(s.trim_end().len(), BIG_PAYLOAD),
                        other => panic!("expected string payload, got {other:?}"),
                    }
                    seen += 1;
                }
            }
            resp::ROWS_DONE => break,
            other => panic!("unexpected tag {other:#04x}"),
        }
    }
    assert_eq!(seen, BIG_ROWS);

    let (tag, body) = protocol::read_frame(&mut slow).unwrap();
    assert_eq!(tag, resp::ROWS_HEADER);
    protocol::decode_rows_header(&body, &types).unwrap();
    let (tag, body) = protocol::read_frame(&mut slow).unwrap();
    assert_eq!(tag, resp::ROW_BATCH);
    let rows = protocol::decode_row_batch(&body, 1, &types).unwrap();
    assert_eq!(rows, vec![vec![Value::Int(7)]]);
    let (tag, _) = protocol::read_frame(&mut slow).unwrap();
    assert_eq!(tag, resp::ROWS_DONE);

    // Clean close.
    protocol::write_frame(&mut slow, req::BYE, &[]).unwrap();
    let mut rest = [0u8; 8];
    assert_eq!(slow.read(&mut rest).unwrap(), 0);
}

#[test]
fn half_closed_unread_client_is_reclaimed_by_stall_sweep() {
    // A client that pipelines a statement, half-closes its write side
    // (shutdown(SHUT_WR)), and never reads the response must be closed
    // by the write-stall sweep. Before the EOF path dropped its read
    // interest, the level-triggered readiness spin refreshed
    // last_activity forever, so the sweep never fired and the
    // connection (and its multi-megabyte outbox) leaked.
    let (server, _db) = big_server_with(ServerConfig {
        workers: 1,
        write_budget: 64 * 1024,
        write_timeout: Duration::from_secs(2),
        ..Default::default()
    });

    let mut slow = TcpStream::connect(server.local_addr()).unwrap();
    slow.set_nodelay(true).unwrap();
    hello(&mut slow);
    let display = |_: &Value| String::new();
    let mut wire = Vec::new();
    protocol::write_frame(
        &mut wire,
        req::STMT,
        &protocol::encode_stmt("SELECT k, v FROM big", &[], &display),
    )
    .unwrap();
    slow.write_all(&wire).unwrap();
    slow.shutdown(std::net::Shutdown::Write).unwrap();

    // ~12 MB of unread rows cannot fit in loopback buffers, so the
    // outbox stays pending and the sweep must doom the connection once
    // write_timeout lapses. Generous deadline: timeout + sweep cadence
    // + slack.
    let deadline = Instant::now() + Duration::from_secs(20);
    while server.connection_count() > 0 {
        assert!(
            Instant::now() < deadline,
            "half-closed unread connection was never reclaimed; stats = {:?}",
            server.stats()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn pipeline_queue_cap_pauses_reads_without_losing_statements() {
    // A tiny pipeline cap: flooding more statements than the queue
    // holds must pause reading (backpressure), never drop or reorder.
    let db = Database::new();
    db.install_blade(&TipBlade).unwrap();
    let cfg = ServerConfig {
        workers: 1,
        max_pipeline: 4,
        ..Default::default()
    };
    let server = Server::bind("127.0.0.1:0", &db, cfg).unwrap();
    let setup = Connection::connect(server.local_addr()).unwrap();
    setup.execute("CREATE TABLE t (n INT)", &[]).unwrap();

    let display = |_: &Value| String::new();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    hello(&mut stream);

    const N: usize = 64;
    let mut wire = Vec::new();
    for i in 0..N {
        protocol::write_frame(
            &mut wire,
            req::STMT,
            &protocol::encode_stmt(&format!("INSERT INTO t VALUES ({i})"), &[], &display),
        )
        .unwrap();
    }
    stream.write_all(&wire).unwrap();

    // All 64 responses come back, in order, despite the 4-deep queue.
    for _ in 0..N {
        let (tag, body) = protocol::read_frame(&mut stream).unwrap();
        assert_eq!(tag, resp::AFFECTED);
        assert_eq!(protocol::decode_affected(&body).unwrap(), 1);
    }

    let mut rows = setup.query("SELECT n FROM t", &[]).unwrap();
    let mut count = 0;
    while rows.next() {
        count += 1;
    }
    assert_eq!(count, N);
    assert!(
        server.stats().read_pauses >= 1,
        "flood should have paused reads: {:?}",
        server.stats()
    );
}
