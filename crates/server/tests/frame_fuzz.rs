//! Socket-level frame-reassembly fuzz: the same pipelined request
//! stream (HELLO, PREPARE, EXECUTE_PREPARED, STMT, BYE) is delivered
//! split at every byte boundary, byte-at-a-time, and fully coalesced.
//! The nonblocking decoder must produce identical responses no matter
//! how the kernel fragments reads.

use minidb::{Database, Value};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use tip_blade::{TipBlade, TipTypes};
use tip_client::protocol::{self, req, resp, Hello};
use tip_client::Connection;
use tip_server::{Server, ServerConfig};

fn fuzz_server() -> (Server, Arc<Database>) {
    let db = Database::new();
    db.install_blade(&TipBlade).unwrap();
    let server = Server::bind("127.0.0.1:0", &db, ServerConfig::default()).unwrap();
    let conn = Connection::connect(server.local_addr()).unwrap();
    conn.execute("CREATE TABLE kv (k INT, v CHAR(10))", &[])
        .unwrap();
    conn.execute("INSERT INTO kv VALUES (1, 'one')", &[])
        .unwrap();
    conn.execute("INSERT INTO kv VALUES (2, 'two')", &[])
        .unwrap();
    (server, db)
}

/// The canonical pipelined request stream: everything a client would
/// send over the connection's whole life, as one byte string.
fn request_stream() -> Vec<u8> {
    let display = |_: &Value| String::new();
    let mut wire = Vec::new();
    protocol::write_frame(
        &mut wire,
        req::HELLO,
        &protocol::encode_hello(&Hello {
            version: protocol::VERSION,
            now_unix: None,
        }),
    )
    .unwrap();
    protocol::write_frame(
        &mut wire,
        req::PREPARE,
        &protocol::encode_prepare("SELECT v FROM kv WHERE k = :k"),
    )
    .unwrap();
    protocol::write_frame(
        &mut wire,
        req::EXECUTE_PREPARED,
        &protocol::encode_execute_prepared(1, &[("k", Value::Int(1))], &display),
    )
    .unwrap();
    protocol::write_frame(
        &mut wire,
        req::STMT,
        &protocol::encode_stmt(
            "SELECT v FROM kv WHERE k = :k",
            &[("k", Value::Int(2))],
            &display,
        ),
    )
    .unwrap();
    protocol::write_frame(&mut wire, req::BYE, &[]).unwrap();
    wire
}

/// Reads the full response stream and checks every frame: HELLO_OK,
/// PREPARED_OK(1), then rows "one", then rows "two", then EOF.
fn verify_responses(stream: &mut TcpStream, types: &TipTypes) {
    let (tag, _) = protocol::read_frame(stream).unwrap();
    assert_eq!(tag, resp::HELLO_OK, "expected HELLO_OK");

    let (tag, body) = protocol::read_frame(stream).unwrap();
    assert_eq!(tag, resp::PREPARED_OK, "expected PREPARED_OK");
    assert_eq!(protocol::decode_prepared_ok(&body).unwrap(), 1);

    for expect in ["one", "two"] {
        let (tag, body) = protocol::read_frame(stream).unwrap();
        assert_eq!(tag, resp::ROWS_HEADER, "expected ROWS_HEADER");
        let cols = protocol::decode_rows_header(&body, types).unwrap();
        assert_eq!(cols.len(), 1);

        let mut got = Vec::new();
        loop {
            let (tag, body) = protocol::read_frame(stream).unwrap();
            match tag {
                resp::ROW_BATCH => {
                    got.extend(protocol::decode_row_batch(&body, 1, types).unwrap());
                }
                resp::ROWS_DONE => break,
                other => panic!("unexpected tag {other:#04x} in row stream"),
            }
        }
        assert_eq!(got.len(), 1);
        match &got[0][0] {
            Value::Str(s) => assert_eq!(s.trim_end(), expect),
            other => panic!("expected string row, got {other:?}"),
        }
    }

    // BYE: the server closes cleanly, no further frames.
    let mut rest = [0u8; 16];
    assert_eq!(stream.read(&mut rest).unwrap(), 0, "expected EOF after BYE");
}

fn run_trial(addr: SocketAddr, wire: &[u8], cuts: &[usize], types: &TipTypes) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut prev = 0;
    for &cut in cuts {
        stream.write_all(&wire[prev..cut]).unwrap();
        prev = cut;
    }
    stream.write_all(&wire[prev..]).unwrap();
    verify_responses(&mut stream, types);
}

#[test]
fn stream_split_at_every_byte_boundary() {
    let (server, db) = fuzz_server();
    let types = db.with_catalog(TipTypes::from_catalog).unwrap();
    let wire = request_stream();

    // Fully coalesced: one write carrying five frames.
    run_trial(server.local_addr(), &wire, &[], &types);

    // Every two-part split. Boundary cuts exercise coalesced trailing
    // frames; mid-frame cuts exercise partial-header and partial-body
    // resumption in the accumulator.
    for cut in 1..wire.len() {
        run_trial(server.local_addr(), &wire, &[cut], &types);
    }
}

#[test]
fn stream_delivered_byte_at_a_time() {
    let (server, db) = fuzz_server();
    let types = db.with_catalog(TipTypes::from_catalog).unwrap();
    let wire = request_stream();
    let cuts: Vec<usize> = (1..wire.len()).collect();
    run_trial(server.local_addr(), &wire, &cuts, &types);
}

#[test]
fn interleaved_split_points() {
    // Three-part splits at staggered offsets: both cuts land inside
    // different frames of the same stream.
    let (server, db) = fuzz_server();
    let types = db.with_catalog(TipTypes::from_catalog).unwrap();
    let wire = request_stream();
    let n = wire.len();
    for first in [1, 2, 3, 5, n / 4, n / 3] {
        for second in [n / 2, n / 2 + 1, 2 * n / 3, n - 2, n - 1] {
            if first < second {
                run_trial(server.local_addr(), &wire, &[first, second], &types);
            }
        }
    }
}
