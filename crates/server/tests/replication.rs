//! Replication integration: a loopback primary with live replicas.
//!
//! * streaming end-to-end: commits on the primary become readable on a
//!   replica, writes on the replica are refused with a typed error, and
//!   both sides export replication counters;
//! * torn-stream handling: the replication connection is killed
//!   mid-WAL_CHUNK through a byte-cutting proxy; the replica must
//!   discard the partial chunk, reconnect, resume from its last applied
//!   position, and end up byte-identical to an uninterrupted replica.

use minidb::{Database, DbError, DurabilityConfig, SyncMode};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tip_blade::TipBlade;
use tip_client::Connection;
use tip_server::repl::ReplicationClient;
use tip_server::{Server, ServerConfig};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tip-repl-{}-{}-{name}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_primary(dir: &std::path::Path) -> (Arc<Database>, Server) {
    let cfg = DurabilityConfig {
        sync_mode: SyncMode::EveryCommit,
        ..DurabilityConfig::default()
    };
    let (db, _) = Database::open_with(dir, cfg, |db| db.install_blade(&TipBlade)).unwrap();
    let server = Server::bind("127.0.0.1:0", &db, ServerConfig::default()).unwrap();
    (db, server)
}

/// An in-process read-only replica streaming from `primary_addr`.
fn replica_of(primary_addr: &str) -> (Arc<Database>, Server, ReplicationClient) {
    let db = Database::new();
    db.install_blade(&TipBlade).unwrap();
    db.set_read_only(primary_addr);
    let server = Server::bind("127.0.0.1:0", &db, ServerConfig::default()).unwrap();
    let client = ReplicationClient::start(&db, primary_addr);
    (db, server, client)
}

/// Waits until the replica has applied at least through `seq`.
fn wait_applied(db: &Arc<Database>, seq: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while db.repl_stats().last_seq() < seq {
        assert!(
            Instant::now() < deadline,
            "replica stalled at seq {} (want {seq})",
            db.repl_stats().last_seq()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn replica_streams_commits_and_serves_reads() {
    let dir = scratch("stream");
    let (pdb, pserver) = durable_primary(&dir);
    let paddr = pserver.local_addr().to_string();
    let (rdb, rserver, _client) = replica_of(&paddr);

    let conn = Connection::connect(&paddr).unwrap();
    conn.execute("CREATE TABLE t (id INT, note CHAR(24))", &[])
        .unwrap();
    for i in 0..50 {
        conn.execute(&format!("INSERT INTO t VALUES ({i}, 'note-{i}')"), &[])
            .unwrap();
    }
    let target = pdb.wal_progress().unwrap().seq;
    wait_applied(&rdb, target);

    // Reads on the replica see the primary's committed rows.
    let rconn = Connection::connect(rserver.local_addr().to_string()).unwrap();
    let mut rows = rconn.query("SELECT id FROM t ORDER BY id", &[]).unwrap();
    let mut n = 0;
    while rows.next() {
        assert_eq!(rows.get_int(0).unwrap(), n);
        n += 1;
    }
    assert_eq!(n, 50);

    // Writes are refused with a typed error naming the primary.
    let err = rconn
        .execute("INSERT INTO t VALUES (99, 'x')", &[])
        .unwrap_err();
    match &err {
        DbError::ReadOnly { primary } => assert_eq!(primary, &paddr),
        other => panic!("expected ReadOnly, got {other}"),
    }

    // Replication counters on both ends, over the wire and locally.
    let pm = conn.server_metrics().unwrap();
    assert!(pm.repl_chunks_shipped > 0, "{pm:?}");
    assert!(pm.repl_bytes_shipped > 0, "{pm:?}");
    assert!(pm.repl_last_seq >= target, "{pm:?}");
    let rm = rconn.server_metrics().unwrap();
    assert!(rm.repl_last_seq >= target, "{rm:?}");

    drop(rserver);
    drop(pserver);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replicated_transport_pins_open_transactions_to_primary() {
    let dir = scratch("txn-route");
    let (pdb, pserver) = durable_primary(&dir);
    let paddr = pserver.local_addr().to_string();
    let (rdb, rserver, _client) = replica_of(&paddr);
    let raddr = rserver.local_addr().to_string();

    let conn = Connection::connect_replicated(&paddr, &[raddr.as_str()]).unwrap();
    conn.execute("CREATE TABLE t (id INT, note CHAR(24))", &[])
        .unwrap();
    for i in 0..10 {
        conn.execute(&format!("INSERT INTO t VALUES ({i}, 'note-{i}')"), &[])
            .unwrap();
    }
    let target = pdb.wal_progress().unwrap().seq;
    wait_applied(&rdb, target);

    // Open a transaction and write inside it: the uncommitted row
    // exists only in the primary session's workspace.
    conn.execute("BEGIN", &[]).unwrap();
    conn.execute("INSERT INTO t VALUES (100, 'uncommitted')", &[])
        .unwrap();

    // The in-transaction read must see the workspace row, so it has to
    // run on the primary. The lag floor cannot catch this case — an
    // uncommitted write never moves the durable frontier, so a fully
    // caught-up replica would happily serve 10 rows of stale state.
    let before = rserver.metrics().selects;
    let mut rows = conn.query("SELECT id FROM t ORDER BY id", &[]).unwrap();
    let mut n = 0;
    let mut saw_workspace_row = false;
    while rows.next() {
        saw_workspace_row |= rows.get_int(0).unwrap() == 100;
        n += 1;
    }
    assert_eq!(n, 11, "in-transaction read must include the workspace row");
    assert!(saw_workspace_row);
    assert_eq!(
        rserver.metrics().selects,
        before,
        "no replica may serve a read while the transaction is open"
    );

    conn.execute("COMMIT", &[]).unwrap();
    let target = pdb.wal_progress().unwrap().seq;
    wait_applied(&rdb, target);

    // Transaction closed: reads fan back out to the caught-up replica.
    let mut rows = conn.query("SELECT id FROM t WHERE id = 100", &[]).unwrap();
    assert!(rows.next());
    assert_eq!(rows.get_int(0).unwrap(), 100);
    assert!(
        rserver.metrics().selects > before,
        "post-commit reads fan out to replicas again"
    );

    // ROLLBACK closes the transaction client-side too.
    conn.execute("BEGIN", &[]).unwrap();
    conn.execute("ROLLBACK", &[]).unwrap();
    let before = rserver.metrics().selects;
    let mut rows = conn.query("SELECT id FROM t WHERE id = 0", &[]).unwrap();
    assert!(rows.next());
    assert!(
        rserver.metrics().selects > before,
        "post-rollback reads fan out to replicas again"
    );

    drop(rserver);
    drop(pserver);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A TCP proxy that forwards both directions but kills its first
/// connection after `cut_after` server→client bytes — landing mid-frame
/// of a WAL_CHUNK. Later connections pass through untouched.
fn cutting_proxy(target: String, cut_after: usize) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let mut first = true;
        for conn in listener.incoming() {
            let Ok(client) = conn else { break };
            let Ok(upstream) = TcpStream::connect(&target) else {
                continue;
            };
            let cut = first.then_some(cut_after);
            first = false;
            let (c2, u2) = (client.try_clone().unwrap(), upstream.try_clone().unwrap());
            std::thread::spawn(move || pump(c2, u2, None));
            std::thread::spawn(move || pump(upstream, client, cut));
        }
    });
    addr
}

/// Copies bytes `from` → `to`, stopping (and shutting both sockets)
/// after `cut_after` bytes when set.
fn pump(mut from: TcpStream, mut to: TcpStream, cut_after: Option<usize>) {
    let mut remaining = cut_after;
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let n = match remaining.as_mut() {
            Some(r) => {
                let take = n.min(*r);
                *r -= take;
                take
            }
            None => n,
        };
        if n > 0 && to.write_all(&buf[..n]).is_err() {
            break;
        }
        if remaining == Some(0) {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[test]
fn torn_stream_resumes_byte_identical() {
    let dir = scratch("torn");
    let (pdb, pserver) = durable_primary(&dir);
    let paddr = pserver.local_addr().to_string();

    // Enough committed WAL that the catch-up chunk dwarfs the cut
    // point: the proxy's scissors land mid-WAL_CHUNK.
    let conn = Connection::connect(&paddr).unwrap();
    conn.execute("CREATE TABLE t (id INT, note CHAR(24))", &[])
        .unwrap();
    for i in 0..300 {
        conn.execute(
            &format!("INSERT INTO t VALUES ({i}, 'payload-number-{i}')"),
            &[],
        )
        .unwrap();
    }

    // Replica A streams through the cutting proxy; replica B directly.
    let proxy = cutting_proxy(paddr.clone(), 8 * 1024).to_string();
    let (adb, _aserver, aclient) = replica_of(&proxy);
    let (bdb, _bserver, bclient) = replica_of(&paddr);

    let target = pdb.wal_progress().unwrap().seq;
    wait_applied(&adb, target);
    wait_applied(&bdb, target);
    // A few more commits after the reconnect prove the stream keeps
    // flowing at the resumed position.
    for i in 300..320 {
        conn.execute(
            &format!("INSERT INTO t VALUES ({i}, 'payload-number-{i}')"),
            &[],
        )
        .unwrap();
    }
    let target = pdb.wal_progress().unwrap().seq;
    wait_applied(&adb, target);
    wait_applied(&bdb, target);

    assert!(
        adb.repl_stats().snapshot().reconnects >= 1,
        "the proxied replica lost its stream at least once"
    );
    assert_eq!(
        adb.save_snapshot().unwrap(),
        bdb.save_snapshot().unwrap(),
        "interrupted and uninterrupted replicas are byte-identical"
    );

    drop(aclient);
    drop(bclient);
    let _ = std::fs::remove_dir_all(&dir);
}
