//! Loopback integration tests: a real `Server` on 127.0.0.1 port 0,
//! real `Connection::connect` clients, one process.

use minidb::{Database, DbError};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Duration;
use tip_blade::{TipBlade, TipTypes};
use tip_client::transport::ConnectOptions;
use tip_client::{Connection, HostValue};
use tip_core::{Chronon, Span};
use tip_server::{Server, ServerConfig};

/// A TIP-bladed database pre-loaded with a small medical workload.
fn demo_db() -> Arc<Database> {
    let db = Database::new();
    db.install_blade(&TipBlade).unwrap();
    let cfg = tip_workload::MedicalConfig {
        n_prescriptions: 60,
        ..Default::default()
    };
    let medical = tip_workload::generate(&cfg);
    let session = db.session();
    let types = db.with_catalog(TipTypes::from_catalog).unwrap();
    tip_workload::populate_tip(&session, types, &medical).unwrap();
    db
}

fn serve(db: &Arc<Database>, cfg: ServerConfig) -> Server {
    Server::bind("127.0.0.1:0", db, cfg).unwrap()
}

#[test]
fn ddl_dml_select_round_trip() {
    let db = Database::new();
    db.install_blade(&TipBlade).unwrap();
    let server = serve(&db, ServerConfig::default());
    let conn = Connection::connect(server.local_addr()).unwrap();

    assert_eq!(
        conn.execute(
            "CREATE TABLE visits (patient CHAR(20), at Chronon, n INT)",
            &[]
        )
        .unwrap(),
        0
    );
    assert_eq!(
        conn.execute(
            "INSERT INTO visits VALUES ('Mr.Showbiz', '1999-10-01', 3)",
            &[]
        )
        .unwrap(),
        1
    );

    let mut rows = conn
        .query("SELECT patient, at, n FROM visits", &[])
        .unwrap();
    assert!(rows.next());
    assert_eq!(rows.get_string(0).unwrap(), "Mr.Showbiz");
    assert_eq!(
        rows.get_chronon(1).unwrap(),
        Chronon::from_ymd(1999, 10, 1).unwrap()
    );
    assert_eq!(rows.get_int(2).unwrap(), 3);
    assert!(!rows.next());
}

#[test]
fn typed_errors_cross_the_wire() {
    let db = Database::new();
    db.install_blade(&TipBlade).unwrap();
    let server = serve(&db, ServerConfig::default());
    let conn = Connection::connect(server.local_addr()).unwrap();

    match conn.query("SELECT * FROM no_such_table", &[]) {
        Err(DbError::NotFound { kind, name }) => {
            assert_eq!(kind, "table or view");
            assert_eq!(name, "no_such_table");
        }
        Err(e) => panic!("expected NotFound, got {e:?}"),
        Ok(_) => panic!("expected NotFound, got rows"),
    }
    match conn.execute("CREATE TABLEE t (x INT)", &[]) {
        Err(DbError::Syntax { .. }) => {}
        other => panic!("expected Syntax, got {other:?}"),
    }
    // Statement errors must not kill the connection.
    assert!(conn.execute("CREATE TABLE t (x INT)", &[]).is_ok());
}

#[test]
fn prepared_statements_with_tip_params() {
    let db = demo_db();
    let server = serve(&db, ServerConfig::default());
    let conn = Connection::connect(server.local_addr()).unwrap();

    let stmt = conn
        .prepare("SELECT patient FROM Prescription WHERE frequency >= :f")
        .bind("f", HostValue::Span(Span::from_hours(1)));
    let remote_count = stmt.query().unwrap().len();

    let local = Connection::attach(&db).unwrap();
    let local_count = local
        .prepare("SELECT patient FROM Prescription WHERE frequency >= :f")
        .bind("f", HostValue::Span(Span::from_hours(1)))
        .query()
        .unwrap()
        .len();
    assert_eq!(remote_count, local_count);
    assert!(remote_count > 0);
}

/// The acceptance-criteria test: 64 concurrent remote connections, each
/// with its own NOW override, each byte-identical to the in-process
/// path under the same override.
#[test]
fn sixty_four_connections_with_isolated_now_overrides() {
    let db = demo_db();
    let server = serve(
        &db,
        ServerConfig {
            max_connections: 80,
            ..Default::default()
        },
    );
    let addr = server.local_addr();
    let query =
        "SELECT patient, drug, dosage, valid, total_seconds(length(valid)) FROM Prescription";

    let handles: Vec<_> = (0..64)
        .map(|i| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                // Spread NOW overrides over ~8 years so different
                // connections see genuinely different answers.
                let now = Chronon::from_ymd(1994 + (i % 8), 1 + (i % 12) as u32, 15).unwrap();

                let remote = Connection::connect(addr).unwrap();
                remote.set_now(Some(now));
                let remote_rows = remote.query(query, &[]).unwrap();
                let remote_text = remote.format(&remote_rows);

                let local = Connection::attach(&db).unwrap();
                local.set_now(Some(now));
                let local_rows = local.query(query, &[]).unwrap();
                let local_text = local.format(&local_rows);

                assert_eq!(
                    remote_text, local_text,
                    "connection {i} (NOW={now}) diverged from in-process"
                );
                remote_rows.len()
            })
        })
        .collect();

    let mut total = 0usize;
    for h in handles {
        total += h.join().expect("worker panicked");
    }
    assert!(total > 0, "every override produced an empty result");
}

#[test]
fn now_override_in_handshake() {
    let db = demo_db();
    let server = serve(&db, ServerConfig::default());
    let now = Chronon::from_ymd(1997, 6, 1).unwrap();
    let conn = Connection::connect_with(
        server.local_addr(),
        &ConnectOptions {
            now_unix: Some(tip_blade::chronon_to_unix(now)),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(conn.now_override(), Some(now));

    let local = Connection::attach(&db).unwrap();
    local.set_now(Some(now));
    let q = "SELECT patient, total_seconds(length(valid)) FROM Prescription";
    assert_eq!(
        conn.format(&conn.query(q, &[]).unwrap()),
        local.format(&local.query(q, &[]).unwrap())
    );
}

#[test]
fn malformed_frames_kill_only_their_connection() {
    let db = Database::new();
    db.install_blade(&TipBlade).unwrap();
    let server = serve(&db, ServerConfig::default());
    let addr = server.local_addr();

    let good = Connection::connect(addr).unwrap();
    good.execute("CREATE TABLE t (x INT)", &[]).unwrap();

    // A zoo of hostile byte streams, one fresh socket each.
    let attacks: Vec<Vec<u8>> = vec![
        b"GET / HTTP/1.1\r\n\r\n".to_vec(),
        vec![0x00; 64],
        // Oversized frame length.
        (0xffff_ffffu32).to_le_bytes().to_vec(),
        // Valid length, unknown tag.
        {
            let mut v = 2u32.to_le_bytes().to_vec();
            v.extend_from_slice(&[0x77, 0x00]);
            v
        },
        // Valid HELLO tag, truncated body.
        {
            let mut v = 3u32.to_le_bytes().to_vec();
            v.extend_from_slice(&[0x01, 0x54, 0x49]);
            v
        },
    ];
    for (i, attack) in attacks.iter().enumerate() {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(attack).unwrap();
        // The server answers with an error frame and/or closes; it must
        // never hang. Read until EOF.
        let mut sink = Vec::new();
        let _ = s.read_to_end(&mut sink);
        drop(s);
        // The well-behaved connection is unaffected.
        assert!(
            good.query("SELECT x FROM t", &[]).is_ok(),
            "good connection died after attack #{i}"
        );
    }
}

#[test]
fn busy_reject_is_typed() {
    let db = Database::new();
    db.install_blade(&TipBlade).unwrap();
    let server = serve(
        &db,
        ServerConfig {
            max_connections: 2,
            ..Default::default()
        },
    );
    let addr = server.local_addr();

    let c1 = Connection::connect(addr).unwrap();
    let c2 = Connection::connect(addr).unwrap();
    // Ensure both workers are registered before the third dial.
    c1.query("SELECT 1", &[]).unwrap();
    c2.query("SELECT 1", &[]).unwrap();

    match Connection::connect(addr) {
        Err(DbError::Unavailable { message }) => {
            assert!(message.contains("busy"), "unexpected message: {message}")
        }
        Err(e) => panic!("expected busy reject, got {e:?}"),
        Ok(_) => panic!("expected busy reject, got a connection"),
    }

    // Capacity frees up once a connection closes.
    drop(c1);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match Connection::connect(addr) {
            Ok(c) => {
                c.query("SELECT 1", &[]).unwrap();
                break;
            }
            Err(_) if std::time::Instant::now() < deadline => {
                thread::sleep(Duration::from_millis(20))
            }
            Err(e) => panic!("slot never freed: {e}"),
        }
    }
}

#[test]
fn server_metrics_aggregate_across_connections() {
    let db = demo_db();
    let server = serve(&db, ServerConfig::default());
    let addr = server.local_addr();

    let baseline = server.metrics().statements();

    // Two live connections plus one that closes before we ask.
    let c1 = Connection::connect(addr).unwrap();
    let c2 = Connection::connect(addr).unwrap();
    c1.query("SELECT patient FROM Prescription", &[]).unwrap();
    c1.query("SELECT drug FROM Prescription", &[]).unwrap();
    c2.query("SELECT dosage FROM Prescription", &[]).unwrap();
    {
        let c3 = Connection::connect(addr).unwrap();
        c3.query("SELECT doctor FROM Prescription", &[]).unwrap();
        drop(c3);
    }
    // The retired session's counters land in the aggregate once the
    // worker notices the close.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let agg = c1.server_metrics().unwrap();
        if agg.statements() >= baseline + 4 {
            assert_eq!(agg.selects, server.metrics().selects);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "aggregate never reached {} statements: {:?}",
            baseline + 4,
            agg
        );
        thread::sleep(Duration::from_millis(20));
    }

    // Per-session stats stay per-session.
    let s1 = c1.metrics_snapshot().unwrap();
    let s2 = c2.metrics_snapshot().unwrap();
    assert_eq!(
        s1.selects, 2,
        "SERVER_METRICS polling must not count as statements"
    );
    assert_eq!(s2.selects, 1);
}

#[test]
fn graceful_shutdown_drains_clients() {
    let db = demo_db();
    let mut server = serve(&db, ServerConfig::default());
    let addr = server.local_addr();

    let conn = Connection::connect(addr).unwrap();
    let rows = conn.query("SELECT patient FROM Prescription", &[]).unwrap();
    assert!(!rows.is_empty());

    server.shutdown();

    // Statements after shutdown fail with a typed transport error, not
    // a hang or a panic.
    match conn.query("SELECT patient FROM Prescription", &[]) {
        Err(DbError::Unavailable { .. }) => {}
        Err(e) => panic!("expected Unavailable after shutdown, got {e:?}"),
        Ok(_) => panic!("expected Unavailable after shutdown, got rows"),
    }
    // And new dials are refused.
    assert!(Connection::connect(addr).is_err());

    // The database itself is still healthy in-process.
    let local = Connection::attach(&db).unwrap();
    assert!(!local
        .query("SELECT patient FROM Prescription", &[])
        .unwrap()
        .is_empty());
}

#[test]
fn session_stats_and_slow_log_policy() {
    let db = demo_db();
    let server = serve(&db, ServerConfig::default());
    let conn = Connection::connect(server.local_addr()).unwrap();

    conn.query("SELECT patient FROM Prescription", &[]).unwrap();
    let snap = conn.metrics_snapshot().unwrap();
    assert_eq!(snap.selects, 1);
    assert!(snap.rows_returned > 0);

    // Live handles and closure hooks are in-process-only by contract.
    assert!(conn.metrics().is_err());
    assert!(conn
        .set_slow_query_log(Duration::from_millis(1), |_q| {})
        .is_err());
}

#[test]
fn prepared_statements_execute_server_side_over_v3() {
    let db = demo_db();
    let server = serve(&db, ServerConfig::default());
    let conn = Connection::connect(server.local_addr()).unwrap();

    let stmt = conn.prepare("SELECT patient FROM Prescription WHERE frequency >= :f");
    assert!(
        stmt.is_server_prepared(),
        "default handshake should negotiate protocol v3"
    );
    let stmt = stmt.bind("f", HostValue::Span(Span::from_hours(1)));
    let first = stmt.query().unwrap().len();
    assert!(first > 0);
    // Re-execution ships only the id + params; the engine answers from
    // its plan cache.
    for _ in 0..3 {
        assert_eq!(stmt.query().unwrap().len(), first);
    }
    let snap = conn.metrics_snapshot().unwrap();
    assert_eq!(snap.plan_cache_misses, 1, "{snap:?}");
    assert!(snap.plan_cache_hits >= 3, "{snap:?}");

    // Rebinding the same prepared id with a different value changes the
    // answer without re-preparing.
    let stmt = stmt.bind("f", HostValue::Span(Span::from_days(3650)));
    assert!(stmt.query().unwrap().len() < first);

    // A statement the server rejects at prepare time falls back to the
    // text path and reports the same typed error at execute time.
    let bad = conn.prepare("SELEC patient FROM Prescription");
    assert!(!bad.is_server_prepared());
    assert!(matches!(bad.query(), Err(DbError::Syntax { .. })));
}

#[test]
fn v3_client_falls_back_on_a_v2_server() {
    let db = demo_db();
    let server = serve(
        &db,
        ServerConfig {
            max_protocol_version: 2,
            ..Default::default()
        },
    );
    let conn = Connection::connect(server.local_addr()).unwrap();

    // No server-side registration — but the same API works end to end
    // by resending the statement text.
    let stmt = conn
        .prepare("SELECT patient FROM Prescription WHERE frequency >= :f")
        .bind("f", HostValue::Span(Span::from_hours(1)));
    assert!(!stmt.is_server_prepared());
    let n = stmt.query().unwrap().len();
    assert!(n > 0);
    assert_eq!(stmt.query().unwrap().len(), n);

    // The narrow v2 METRICS frame decodes cleanly; plan-cache counters
    // simply are not carried.
    let snap = conn.metrics_snapshot().unwrap();
    assert_eq!(snap.selects, 2);
    assert_eq!(snap.plan_cache_hits, 0);
}

#[test]
fn unknown_prepared_id_is_a_typed_error_and_closing_frees_the_id() {
    use tip_client::transport::{RemoteTransport, Transport};

    let db = demo_db();
    let server = serve(&db, ServerConfig::default());

    let registry = Database::new();
    registry.install_blade(&TipBlade).unwrap();
    let types = registry.with_catalog(TipTypes::from_catalog).unwrap();
    let t = RemoteTransport::connect(
        server.local_addr(),
        Arc::clone(&registry),
        types,
        &ConnectOptions::default(),
    )
    .unwrap();
    assert_eq!(t.protocol_version(), 7);

    match t.execute_prepared(999, "SELECT 1", &[]) {
        Err(DbError::NotFound { kind, name }) => {
            assert_eq!(kind, "prepared statement");
            assert_eq!(name, "999");
        }
        other => panic!("expected typed NotFound, got {other:?}"),
    }

    let id = t
        .prepare("SELECT patient FROM Prescription")
        .unwrap()
        .expect("v3 server must register");
    assert!(t
        .execute_prepared(id, "SELECT patient FROM Prescription", &[])
        .is_ok());
    t.close_prepared(id).unwrap();
    match t.execute_prepared(id, "SELECT patient FROM Prescription", &[]) {
        Err(DbError::NotFound { kind, .. }) => assert_eq!(kind, "prepared statement"),
        other => panic!("expected NotFound after close, got {other:?}"),
    }
    // The statement-level error left the connection serviceable.
    assert!(t.execute("SELECT 1", &[]).is_ok());
}

/// Result sets larger than one frame must split across ROW_BATCH
/// frames byte-by-byte, and a single row too large for any frame must
/// come back as a typed statement-level error — never a dead socket.
#[test]
fn huge_result_sets_split_frames_and_unfittable_rows_error_typed() {
    use minidb::Value;

    let db = Database::new();
    db.install_blade(&TipBlade).unwrap();
    let s = db.session();
    s.execute("CREATE TABLE blobs (id INT, payload CHAR(64))")
        .unwrap();
    // 40 rows of ~1 MiB: ~40 MiB in aggregate, far past MAX_FRAME, so
    // the server must close each batch on the byte budget (the row
    // cap below is set high enough to never bind).
    let mb = "x".repeat(1024 * 1024);
    for i in 0..40 {
        s.execute_with_params(
            "INSERT INTO blobs VALUES (:i, :p)",
            &[("i", Value::Int(i)), ("p", Value::Str(mb.clone()))],
        )
        .unwrap();
    }
    let server = serve(
        &db,
        ServerConfig {
            rows_per_batch: 10_000,
            ..Default::default()
        },
    );
    let conn = Connection::connect(server.local_addr()).unwrap();
    let mut rows = conn
        .query("SELECT id, payload FROM blobs ORDER BY id", &[])
        .unwrap();
    let mut n = 0;
    while rows.next() {
        assert_eq!(rows.get_int(0).unwrap(), n);
        assert_eq!(rows.get_string(1).unwrap().len(), mb.len());
        n += 1;
    }
    assert_eq!(n, 40);

    // One ~17 MiB row exceeds MAX_FRAME on its own: a typed error...
    s.execute_with_params(
        "INSERT INTO blobs VALUES (99, :p)",
        &[("p", Value::Str("y".repeat(17 * 1024 * 1024)))],
    )
    .unwrap();
    match conn.query("SELECT payload FROM blobs WHERE id = 99", &[]) {
        Err(DbError::Execution { message }) => {
            assert!(message.contains("frame limit"), "{message}")
        }
        Err(e) => panic!("expected typed Execution error, got {e:?}"),
        Ok(_) => panic!("expected typed Execution error, got rows"),
    }
    // ...that leaves the connection fully serviceable.
    let mut rows = conn.query("SELECT COUNT(*) FROM blobs", &[]).unwrap();
    assert!(rows.next());
    assert_eq!(rows.get_int(0).unwrap(), 41);
}
