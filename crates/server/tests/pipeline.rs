//! End-to-end pipelining through the client API: N statements per
//! round trip, results in submission order, statement errors isolated
//! to their slot.

use minidb::Database;
use std::sync::Arc;
use tip_blade::TipBlade;
use tip_client::{Connection, HostValue};
use tip_server::{Server, ServerConfig};

fn kv_server() -> (Server, Arc<Database>) {
    let db = Database::new();
    db.install_blade(&TipBlade).unwrap();
    let server = Server::bind("127.0.0.1:0", &db, ServerConfig::default()).unwrap();
    let conn = Connection::connect(server.local_addr()).unwrap();
    conn.execute("CREATE TABLE kv (k INT, v CHAR(16))", &[])
        .unwrap();
    for k in 0..10 {
        conn.execute(
            "INSERT INTO kv VALUES (:k, :v)",
            &[
                ("k", HostValue::Int(k)),
                ("v", HostValue::Str(format!("val-{k}"))),
            ],
        )
        .unwrap();
    }
    (server, db)
}

#[test]
fn pipelined_prepared_executes_return_in_order() {
    let (server, _db) = kv_server();
    let conn = Connection::connect(server.local_addr()).unwrap();
    let mut stmt = conn.prepare("SELECT v FROM kv WHERE k = :k");
    assert!(stmt.is_server_prepared());

    let mut pipe = conn.pipeline();
    for k in 0..10 {
        stmt = stmt.bind("k", HostValue::Int(k));
        pipe.add_prepared(&stmt);
    }
    assert_eq!(pipe.len(), 10);
    let results = pipe.run().unwrap();
    assert_eq!(results.len(), 10);
    for (k, slot) in results.into_iter().enumerate() {
        let mut rows = slot.unwrap().into_rows().unwrap();
        assert!(rows.next());
        assert_eq!(rows.get_string(0).unwrap().trim_end(), format!("val-{k}"));
        assert!(!rows.next());
    }
    assert!(pipe.is_empty(), "run() drains the batch");
    assert!(
        server.stats().pipelined >= 1,
        "server should observe pipelined statements: {:?}",
        server.stats()
    );
}

#[test]
fn mixed_batch_with_mid_pipeline_error() {
    let (server, _db) = kv_server();
    let conn = Connection::connect(server.local_addr()).unwrap();

    let mut pipe = conn.pipeline();
    pipe.add(
        "INSERT INTO kv VALUES (:k, :v)",
        &[
            ("k", HostValue::Int(100)),
            ("v", HostValue::Str("hundred".into())),
        ],
    );
    pipe.add(
        "SELECT v FROM kv WHERE k = :k",
        &[("k", HostValue::Int(100))],
    );
    pipe.add("SELECT * FROM no_such_table", &[]);
    pipe.add("SELECT v FROM kv WHERE k = :k", &[("k", HostValue::Int(3))]);

    let mut results = pipe.run().unwrap().into_iter();

    assert_eq!(results.next().unwrap().unwrap().affected().unwrap(), 1);

    let mut rows = results.next().unwrap().unwrap().into_rows().unwrap();
    assert!(rows.next());
    assert_eq!(rows.get_string(0).unwrap().trim_end(), "hundred");

    // Slot 3 fails — an ordinary statement error, not a dead socket —
    // and slot 4 still ran afterwards on the same connection.
    assert!(results.next().unwrap().is_err());

    let mut rows = results.next().unwrap().unwrap().into_rows().unwrap();
    assert!(rows.next());
    assert_eq!(rows.get_string(0).unwrap().trim_end(), "val-3");

    // The connection survives for one-at-a-time use.
    let mut rows = conn.query("SELECT v FROM kv WHERE k = 100", &[]).unwrap();
    assert!(rows.next());
}

#[test]
fn pipeline_matches_serial_results() {
    let (server, _db) = kv_server();
    let conn = Connection::connect(server.local_addr()).unwrap();

    let serial: Vec<String> = (0..10)
        .map(|k| {
            let mut rows = conn
                .query("SELECT v FROM kv WHERE k = :k", &[("k", HostValue::Int(k))])
                .unwrap();
            assert!(rows.next());
            rows.get_string(0).unwrap()
        })
        .collect();

    let mut pipe = conn.pipeline();
    for k in 0..10 {
        pipe.add("SELECT v FROM kv WHERE k = :k", &[("k", HostValue::Int(k))]);
    }
    let piped: Vec<String> = pipe
        .run()
        .unwrap()
        .into_iter()
        .map(|slot| {
            let mut rows = slot.unwrap().into_rows().unwrap();
            assert!(rows.next());
            rows.get_string(0).unwrap()
        })
        .collect();

    assert_eq!(serial, piped);
}
