//! Parameterized plan cache: repeat executions skip the SQL front end,
//! DDL invalidates lazily, and cached plans never return stale results —
//! the prepare-once/execute-many contract DESIGN.md commits to.

use minidb::{Database, DbError, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

fn db_with_t(rows: i64) -> Arc<Database> {
    let db = Database::new();
    let s = db.session();
    s.execute("CREATE TABLE t (id INT, x INT)").unwrap();
    for i in 0..rows {
        s.execute(&format!("INSERT INTO t VALUES ({i}, {})", i * 3))
            .unwrap();
    }
    db
}

#[test]
fn repeat_execution_hits_the_cache() {
    let db = db_with_t(10);
    let s = db.session();
    let p = s.prepare("SELECT x FROM t WHERE id = :id").unwrap();
    for i in 0..5i64 {
        let r = p.query(&[("id", Value::Int(i))]).unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(i * 3)]], "id={i}");
    }
    let m = s.metrics().snapshot();
    assert_eq!(m.plan_cache_misses, 1, "first execution plans fresh");
    assert_eq!(m.plan_cache_hits, 4, "every repeat skips the front end");
    assert_eq!(db.plan_cache_len(), 1);
}

#[test]
fn unprepared_repeats_share_the_same_cache() {
    let db = db_with_t(4);
    let s = db.session();
    // Plain execute_with_params hits the cache transparently; trailing
    // whitespace and a terminating `;` normalize to the same key.
    s.query_with_params("SELECT x FROM t WHERE id = :id", &[("id", Value::Int(1))])
        .unwrap();
    s.query_with_params(
        "  SELECT x FROM t WHERE id = :id ;",
        &[("id", Value::Int(2))],
    )
    .unwrap();
    let m = s.metrics().snapshot();
    assert_eq!((m.plan_cache_misses, m.plan_cache_hits), (1, 1));
}

#[test]
fn create_index_flips_cached_plan_without_repreparing() {
    let db = db_with_t(10);
    let s = db.session();
    let p = s.prepare("EXPLAIN SELECT x FROM t WHERE id = :id").unwrap();

    let before = p.query(&[("id", Value::Int(3))]).unwrap();
    let before = before.rows[0][0].as_str().unwrap().to_owned();
    assert!(before.contains("scan(t)"), "{before}");
    assert!(!before.contains("ixscan"), "{before}");
    // Warm the cache, then change the physical schema underneath it.
    p.query(&[("id", Value::Int(3))]).unwrap();

    s.execute("CREATE INDEX ix_t_id ON t(id)").unwrap();

    // Same Prepared handle, no re-prepare: the generation bump evicts
    // the stale plan and the replan picks up the new index.
    let after = p.query(&[("id", Value::Int(3))]).unwrap();
    let after = after.rows[0][0].as_str().unwrap().to_owned();
    assert!(after.contains("ixscan(t)"), "{after}");

    let m = s.metrics().snapshot();
    assert!(m.plan_cache_invalidations >= 1, "{m:?}");
    // And the flipped plan still answers correctly.
    let r = s
        .query_with_params("SELECT x FROM t WHERE id = :id", &[("id", Value::Int(7))])
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(21)]]);
}

#[test]
fn dropped_table_is_a_typed_not_found_not_a_stale_plan() {
    let db = db_with_t(3);
    let s = db.session();
    let p = s.prepare("SELECT x FROM t WHERE id = :id").unwrap();
    p.query(&[("id", Value::Int(1))]).unwrap();
    p.query(&[("id", Value::Int(1))]).unwrap(); // cached now

    s.execute("DROP TABLE t").unwrap();
    match p.query(&[("id", Value::Int(1))]) {
        Err(DbError::NotFound { kind, name }) => {
            // The DROP bumped the generation, so the stale plan was
            // evicted and the rebind reported the vanished relation.
            assert_eq!(kind, "table or view");
            assert_eq!(name, "t");
        }
        other => panic!("expected typed NotFound, got {other:?}"),
    }

    // Re-creating the table revives the same Prepared handle.
    s.execute("CREATE TABLE t (id INT, x INT)").unwrap();
    s.execute("INSERT INTO t VALUES (1, 111)").unwrap();
    let r = p.query(&[("id", Value::Int(1))]).unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(111)]]);
}

#[test]
fn parameter_shape_change_replans_instead_of_reusing() {
    let db = Database::new();
    let s = db.session();
    s.execute("CREATE TABLE u (a INT, b CHAR(10))").unwrap();
    s.execute("INSERT INTO u VALUES (1, 'one')").unwrap();

    let sql = "SELECT :w FROM u";
    let r = s.query_with_params(sql, &[("w", Value::Int(7))]).unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(7)]]);
    let r = s
        .query_with_params(sql, &[("w", Value::Str("one".into()))])
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Str("one".into())]]);
    let m = s.metrics().snapshot();
    // Different types drove different overloads: both executions plan
    // fresh, neither is a (wrong) hit.
    assert_eq!((m.plan_cache_misses, m.plan_cache_hits), (2, 0));
}

#[test]
fn missing_parameter_is_a_typed_error_at_execute_time() {
    let db = db_with_t(2);
    let s = db.session();
    let p = s.prepare("SELECT x FROM t WHERE id = :id").unwrap();
    p.query(&[("id", Value::Int(0))]).unwrap();
    match p.query(&[]) {
        Err(DbError::MissingParam { name }) => assert_eq!(name, "id"),
        other => panic!("expected MissingParam, got {other:?}"),
    }
}

#[test]
fn explain_analyze_reports_cached_vs_fresh() {
    let db = db_with_t(5);
    let s = db.session();
    let q = "EXPLAIN ANALYZE SELECT x FROM t WHERE id = :id";
    let first = s.query_with_params(q, &[("id", Value::Int(1))]).unwrap();
    let trailer = first.rows.last().unwrap()[0].as_str().unwrap().to_owned();
    assert!(trailer.ends_with("[plan: fresh]"), "{trailer}");

    let second = s.query_with_params(q, &[("id", Value::Int(2))]).unwrap();
    let trailer = second.rows.last().unwrap()[0].as_str().unwrap().to_owned();
    assert!(trailer.ends_with("[plan: cached]"), "{trailer}");
}

#[test]
fn null_parameter_on_indexed_probe_returns_no_rows() {
    let db = db_with_t(5);
    let s = db.session();
    s.execute("CREATE INDEX ix_t_id ON t(id)").unwrap();
    let p = s.prepare("SELECT x FROM t WHERE id = :id").unwrap();
    // Warm with a real key so the cached plan carries the index probe.
    assert_eq!(p.query(&[("id", Value::Int(2))]).unwrap().rows.len(), 1);
    // `id = NULL` is never TRUE; the probe short-circuits to zero rows.
    assert!(p.query(&[("id", Value::Null)]).unwrap().rows.is_empty());
}

#[test]
fn cached_results_stay_byte_identical_under_concurrent_ddl() {
    let db = db_with_t(100);
    let stop = Arc::new(AtomicBool::new(false));

    // DDL churn: registry writes bump the generation; one CREATE INDEX
    // mid-run also flips the best access path for the hot query.
    let ddl_db = Arc::clone(&db);
    let ddl_stop = Arc::clone(&stop);
    let ddl = thread::spawn(move || {
        let s = ddl_db.session();
        let mut i = 0u32;
        while !ddl_stop.load(Ordering::Relaxed) {
            s.execute(&format!("CREATE TABLE scratch_{i} (a INT)"))
                .unwrap();
            s.execute(&format!("DROP TABLE scratch_{i}")).unwrap();
            if i == 3 {
                s.execute("CREATE INDEX ix_t_id ON t(id)").unwrap();
            }
            i += 1;
        }
    });

    let mut workers = Vec::new();
    for w in 0..3 {
        let db = Arc::clone(&db);
        workers.push(thread::spawn(move || {
            let s = db.session();
            let p = s
                .prepare("SELECT x FROM t WHERE id = :id ORDER BY x")
                .unwrap();
            for round in 0..200i64 {
                let id = (round * 7 + w) % 120; // some ids miss the table
                let got = p.query(&[("id", Value::Int(id))]).unwrap();
                let expected: Vec<Vec<Value>> = if id < 100 {
                    vec![vec![Value::Int(id * 3)]]
                } else {
                    Vec::new()
                };
                assert_eq!(got.rows, expected, "worker {w} round {round} id {id}");
            }
        }));
    }
    for wkr in workers {
        wkr.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    ddl.join().unwrap();
}

#[test]
fn lru_is_bounded() {
    let db = db_with_t(1);
    let s = db.session();
    for i in 0..200 {
        s.query(&format!("SELECT x FROM t WHERE id = {i}")).unwrap();
    }
    assert!(db.plan_cache_len() <= 128, "{}", db.plan_cache_len());
}

#[test]
fn views_and_subqueries_are_not_cached() {
    let db = db_with_t(5);
    let s = db.session();
    s.execute("CREATE VIEW v AS SELECT x FROM t").unwrap();
    s.query("SELECT x FROM v").unwrap();
    s.query("SELECT x FROM v").unwrap();
    s.query("SELECT x FROM t WHERE id IN (SELECT id FROM t)")
        .unwrap();
    s.query("SELECT x FROM t WHERE id IN (SELECT id FROM t)")
        .unwrap();
    assert_eq!(db.plan_cache_len(), 0);
    let m = s.metrics().snapshot();
    assert_eq!(m.plan_cache_hits, 0);
}

#[test]
fn load_snapshot_clears_the_cache_and_replans() {
    // Regression: a snapshot restore swaps the whole table registry, so
    // every cached plan points at pre-restore table data. The restore
    // must clear the cache outright (and bump the DDL generation), not
    // leave stale plans to be served.
    let db = db_with_t(3);
    let s = db.session();
    let p = s.prepare("SELECT x FROM t WHERE id = :id").unwrap();
    assert_eq!(
        p.query(&[("id", Value::Int(1))]).unwrap().rows,
        vec![vec![Value::Int(3)]]
    );
    assert_eq!(db.plan_cache_len(), 1);

    // A different world: same table name, different contents.
    let other = Database::new();
    let os = other.session();
    os.execute("CREATE TABLE t (id INT, x INT)").unwrap();
    os.execute("INSERT INTO t VALUES (1, 999)").unwrap();
    let snap = other.save_snapshot().unwrap();

    let gen_before = db.ddl_generation();
    db.load_snapshot(&snap).unwrap();
    assert_eq!(db.plan_cache_len(), 0, "restore must clear the cache");
    assert!(
        db.ddl_generation() > gen_before,
        "restore must bump generation"
    );

    // The pre-restore Prepared handle replans and sees the new world.
    assert_eq!(
        p.query(&[("id", Value::Int(1))]).unwrap().rows,
        vec![vec![Value::Int(999)]]
    );
}

#[test]
fn repeated_trailing_semicolons_normalize_to_one_cache_entry() {
    let db = db_with_t(4);
    let s = db.session();
    // Regression: `;;` / `; ;` used to produce distinct cache keys.
    for sql in [
        "SELECT x FROM t WHERE id = :id",
        "SELECT x FROM t WHERE id = :id;;",
        "SELECT x FROM t WHERE id = :id ; ; ",
    ] {
        s.query_with_params(sql, &[("id", Value::Int(1))]).unwrap();
    }
    let m = s.metrics().snapshot();
    assert_eq!((m.plan_cache_misses, m.plan_cache_hits), (1, 2));
    assert_eq!(db.plan_cache_len(), 1);
}
