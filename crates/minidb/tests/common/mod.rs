//! Shared test blade: a minimal interval-capable UDT so integration
//! tests can exercise the hot/cold row classifier without depending on
//! the TIP blade (which lives downstream of this crate).

use minidb::catalog::{Blade, Catalog, UdtTypeDef};
use minidb::{DbError, DbResult, UdtObject, UdtValue};
use std::cmp::Ordering;
use std::sync::Arc;

/// A closed validity interval `[lo, hi]` on an abstract second axis.
/// SQL literal form: `'LO..HI'`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Validity(pub i64, pub i64);

impl UdtObject for Validity {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn eq_udt(&self, other: &dyn UdtObject) -> bool {
        other.as_any().downcast_ref::<Validity>() == Some(self)
    }
    fn cmp_udt(&self, other: &dyn UdtObject) -> Option<Ordering> {
        other
            .as_any()
            .downcast_ref::<Validity>()
            .map(|o| (self.0, self.1).cmp(&(o.0, o.1)))
    }
    fn hash_udt(&self) -> u64 {
        (self.0 as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ (self.1 as u64)
    }
}

pub struct ValidityBlade;

impl Blade for ValidityBlade {
    fn name(&self) -> &str {
        "validity-test"
    }
    fn version(&self) -> &str {
        "1.0"
    }
    fn register(&self, catalog: &mut Catalog) -> DbResult<()> {
        let id = catalog.next_type_id();
        catalog.register_type(UdtTypeDef {
            id,
            name: "Validity".into(),
            parse: Arc::new(move |s| {
                let (lo, hi) = s
                    .split_once("..")
                    .ok_or_else(|| DbError::exec("Validity literal is LO..HI"))?;
                let lo: i64 = lo
                    .trim()
                    .parse()
                    .map_err(|e| DbError::exec(format!("{e}")))?;
                let hi: i64 = hi
                    .trim()
                    .parse()
                    .map_err(|e| DbError::exec(format!("{e}")))?;
                Ok(UdtValue::new(id, Arc::new(Validity(lo, hi))))
            }),
            display: Arc::new(|u| {
                let v = u.downcast::<Validity>().expect("Validity payload");
                format!("{}..{}", v.0, v.1)
            }),
            encode: Arc::new(|u, out| {
                let v = u.downcast::<Validity>().expect("Validity payload");
                out.extend_from_slice(&v.0.to_le_bytes());
                out.extend_from_slice(&v.1.to_le_bytes());
            }),
            decode: Arc::new(move |buf| {
                if buf.len() < 16 {
                    return Err(DbError::exec("short Validity payload"));
                }
                let lo = i64::from_le_bytes(buf[..8].try_into().unwrap());
                let hi = i64::from_le_bytes(buf[8..16].try_into().unwrap());
                *buf = &buf[16..];
                Ok(UdtValue::new(id, Arc::new(Validity(lo, hi))))
            }),
            ordered: true,
            interval_key: Some(Arc::new(|u| u.downcast::<Validity>().map(|v| (v.0, v.1)))),
        })?;
        Ok(())
    }
}
