//! Concurrency: a `Database` is shared across threads via `Arc`; each
//! thread opens its own session. Writers take table-granular guards
//! (write guards for DML targets), acquired in sorted-name order, so
//! writes never interleave mid-statement. Readers take no table lock at
//! all: a SELECT pins an MVCC snapshot and scans published versions —
//! which the `selects_proceed_while_a_is_write_locked` test proves with
//! a deterministic handshake rather than timing.

use minidb::{Database, Value};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

#[test]
fn concurrent_writers_do_not_lose_rows() {
    let db = Database::new();
    db.session()
        .execute("CREATE TABLE t (worker INT, seq INT)")
        .unwrap();
    let threads: Vec<_> = (0..8)
        .map(|w| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                let s = db.session();
                for i in 0..50 {
                    s.execute_with_params(
                        "INSERT INTO t VALUES (:w, :i)",
                        &[("w", Value::Int(w)), ("i", Value::Int(i))],
                    )
                    .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let s = db.session();
    let r = s.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(400));
    // Every worker wrote its full sequence.
    let r = s
        .query("SELECT worker, COUNT(*) FROM t GROUP BY worker ORDER BY worker")
        .unwrap();
    assert_eq!(r.rows.len(), 8);
    for row in &r.rows {
        assert_eq!(row[1].as_int(), Some(50));
    }
}

#[test]
fn readers_and_writers_interleave_safely() {
    let db = Database::new();
    let setup = db.session();
    setup.execute("CREATE TABLE t (v INT)").unwrap();
    setup.execute("INSERT INTO t VALUES (0)").unwrap();

    let writer = {
        let db = Arc::clone(&db);
        thread::spawn(move || {
            let s = db.session();
            for i in 1..200 {
                s.execute_with_params("INSERT INTO t VALUES (:i)", &[("i", Value::Int(i))])
                    .unwrap();
            }
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                let s = db.session();
                let mut last = 0i64;
                for _ in 0..100 {
                    let r = s.query("SELECT COUNT(*) FROM t").unwrap();
                    let n = r.rows[0][0].as_int().unwrap();
                    // Counts only grow.
                    assert!(n >= last, "{n} < {last}");
                    last = n;
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    let s = db.session();
    let r = s.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(200));
}

#[test]
fn concurrent_updates_against_an_index_stay_consistent() {
    let db = Database::new();
    let setup = db.session();
    setup.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    for i in 0..100 {
        setup
            .execute_with_params("INSERT INTO t VALUES (:k, 0)", &[("k", Value::Int(i % 10))])
            .unwrap();
    }
    setup.execute("CREATE INDEX ix ON t(k)").unwrap();
    let threads: Vec<_> = (0..4)
        .map(|w| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                let s = db.session();
                for _ in 0..25 {
                    s.execute_with_params(
                        "UPDATE t SET v = v + 1 WHERE k = :k",
                        &[("k", Value::Int(w))],
                    )
                    .unwrap();
                    s.query_with_params(
                        "SELECT COUNT(*) FROM t WHERE k = :k",
                        &[("k", Value::Int(w))],
                    )
                    .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // The index still answers exactly like a scan.
    let s = db.session();
    for k in 0..10 {
        let ix = s
            .query_with_params(
                "SELECT COUNT(*) FROM t WHERE k = :k",
                &[("k", Value::Int(k))],
            )
            .unwrap();
        assert_eq!(ix.rows[0][0].as_int(), Some(10), "k={k}");
    }
    // Each updated key accumulated all 100 increments (4 threads never
    // interleave within one UPDATE statement).
    let r = s
        .query("SELECT k, SUM(v) FROM t WHERE k < 4 GROUP BY k ORDER BY k")
        .unwrap();
    for row in &r.rows {
        assert_eq!(row[1].as_int(), Some(250), "k={:?}", row[0]);
    }
}

/// The full mix — concurrent DDL, DML and SELECT through independent
/// sessions on one shared database — with per-session observability
/// counters that must add up exactly when aggregated.
#[test]
fn mixed_ddl_dml_select_stress_with_consistent_stats() {
    const WORKERS: i64 = 8;
    const ROUNDS: i64 = 30;

    let db = Database::new();
    db.session()
        .execute("CREATE TABLE shared (worker INT, seq INT)")
        .unwrap();

    let threads: Vec<_> = (0..WORKERS)
        .map(|w| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                let s = db.session();
                // DDL races against every other worker's DML.
                s.execute(&format!("CREATE TABLE w{w} (v INT)")).unwrap();
                for i in 0..ROUNDS {
                    s.execute_with_params(
                        "INSERT INTO shared VALUES (:w, :i)",
                        &[("w", Value::Int(w)), ("i", Value::Int(i))],
                    )
                    .unwrap();
                    s.execute_with_params(
                        &format!("INSERT INTO w{w} VALUES (:i)"),
                        &[("i", Value::Int(i))],
                    )
                    .unwrap();
                    if i == ROUNDS / 2 {
                        // Mid-flight DDL on a live table.
                        s.execute(&format!("CREATE INDEX ixw{w} ON w{w}(v)"))
                            .unwrap();
                    }
                    if i % 3 == 0 {
                        s.execute_with_params(
                            &format!("UPDATE w{w} SET v = v WHERE v = :i"),
                            &[("i", Value::Int(i))],
                        )
                        .unwrap();
                    }
                    let r = s.query("SELECT COUNT(*) FROM shared").unwrap();
                    assert!(r.rows[0][0].as_int().unwrap() > i);
                }
                s.execute(&format!("DELETE FROM w{w} WHERE v < 5")).unwrap();

                // The SQL view of this session's stats must agree with
                // the API view (SHOW STATS itself is not counted).
                let api = s.metrics().snapshot();
                let shown = s.query("SHOW STATS").unwrap();
                let lookup = |name: &str| -> i64 {
                    shown
                        .rows
                        .iter()
                        .find(|row| row[0].as_str() == Some(name))
                        .map(|row| row[1].as_int().unwrap())
                        .unwrap_or(0)
                };
                assert_eq!(lookup("statements.select") as u64, api.selects);
                assert_eq!(lookup("statements.insert") as u64, api.inserts);
                assert_eq!(lookup("statements.ddl") as u64, api.ddl);
                api
            })
        })
        .collect();

    let mut total = minidb::MetricsSnapshot::default();
    for t in threads {
        total.absorb(&t.join().unwrap());
    }

    // No lost rows anywhere.
    let s = db.session();
    let r = s.query("SELECT COUNT(*) FROM shared").unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(WORKERS * ROUNDS));
    for w in 0..WORKERS {
        let r = s.query(&format!("SELECT COUNT(*) FROM w{w}")).unwrap();
        assert_eq!(r.rows[0][0].as_int(), Some(ROUNDS - 5), "worker {w}");
    }

    // Aggregated per-session counters match exactly what was issued.
    let per_worker_updates = (0..ROUNDS).filter(|i| i % 3 == 0).count() as u64;
    assert_eq!(total.inserts, (WORKERS * ROUNDS * 2) as u64);
    assert_eq!(total.ddl, (WORKERS * 2) as u64); // CREATE TABLE + CREATE INDEX
    assert_eq!(total.updates, WORKERS as u64 * per_worker_updates);
    assert_eq!(total.deletes, WORKERS as u64);
    assert_eq!(total.selects, (WORKERS * ROUNDS) as u64);
    assert_eq!(total.errors, 0);
}

/// The MVCC tentpole: while one thread holds table `a`'s *write* guard,
/// a SELECT against `b` completes — and so does a SELECT against `a`
/// itself, served from the last published version. Only a second
/// *writer* on `a` blocks. The handshake is channel-based, so the test
/// asserts ordering, not timing.
#[test]
fn selects_proceed_while_a_is_write_locked() {
    let db = Database::new();
    let setup = db.session();
    setup.execute("CREATE TABLE a (v INT)").unwrap();
    setup.execute("CREATE TABLE b (v INT)").unwrap();
    setup.execute("INSERT INTO a VALUES (1), (2)").unwrap();
    setup
        .execute("INSERT INTO b VALUES (10), (20), (30)")
        .unwrap();

    let (locked_tx, locked_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let holder = {
        let db = Arc::clone(&db);
        thread::spawn(move || {
            db.with_table_write("a", |t| {
                // Mutate before parking on the channel: readers must not
                // see this until the guard is released and published.
                t.insert(vec![Value::Int(99)]);
                locked_tx.send(()).unwrap();
                // Hold the write lock until the main thread says so.
                release_rx.recv().unwrap();
            })
            .unwrap();
        })
    };
    locked_rx.recv().unwrap(); // `a` is now write-locked (and dirty).

    // A SELECT on `b` must finish even though `a` is locked.
    let (done_b_tx, done_b_rx) = mpsc::channel();
    let reader_b = {
        let db = Arc::clone(&db);
        thread::spawn(move || {
            let s = db.session();
            let n = s.query("SELECT COUNT(*) FROM b").unwrap().rows[0][0]
                .as_int()
                .unwrap();
            let stats = s.metrics().snapshot();
            done_b_tx.send((n, stats)).unwrap();
        })
    };
    let (n_b, stats_b) = done_b_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("SELECT on b must not block behind a's write lock");
    assert_eq!(n_b, 3);
    assert_eq!(stats_b.tables_pinned, 1, "the SELECT pinned only b");

    // A SELECT on `a` itself must also finish — readers never block
    // behind the writer — and must see the pre-write snapshot, not the
    // in-flight mutation.
    let (done_a_tx, done_a_rx) = mpsc::channel();
    let reader_a = {
        let db = Arc::clone(&db);
        thread::spawn(move || {
            let s = db.session();
            let n = s.query("SELECT COUNT(*) FROM a").unwrap().rows[0][0]
                .as_int()
                .unwrap();
            done_a_tx.send(n).unwrap();
        })
    };
    let n_a = done_a_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("MVCC SELECT on a must not block behind the write guard");
    assert_eq!(n_a, 2, "the snapshot predates the uncommitted insert");

    // A second *writer* on `a` is what blocks: write-write conflicts
    // still serialize on the per-table guard.
    let (done_w_tx, done_w_rx) = mpsc::channel();
    let writer_a = {
        let db = Arc::clone(&db);
        thread::spawn(move || {
            let s = db.session();
            s.execute("INSERT INTO a VALUES (4)").unwrap();
            done_w_tx.send(()).unwrap();
        })
    };
    assert!(
        done_w_rx.recv_timeout(Duration::from_millis(300)).is_err(),
        "a second writer must wait for the write guard"
    );
    release_tx.send(()).unwrap();
    done_w_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("the writer must complete once the guard is released");

    // With the guard released and both writes published, a fresh SELECT
    // sees everything.
    let s = db.session();
    let n = s.query("SELECT COUNT(*) FROM a").unwrap().rows[0][0]
        .as_int()
        .unwrap();
    assert_eq!(n, 4);

    holder.join().unwrap();
    reader_b.join().unwrap();
    reader_a.join().unwrap();
    writer_a.join().unwrap();
}

/// Statements that name the same two tables in opposite orders must not
/// deadlock: guards are acquired in sorted-name order regardless of how
/// the SQL spells the FROM list or which table is the DML target. A
/// watchdog channel turns a deadlock into a test failure instead of a
/// hang.
#[test]
fn opposite_order_two_table_statements_never_deadlock() {
    const ITERS: usize = 200;

    let db = Database::new();
    let setup = db.session();
    setup.execute("CREATE TABLE a (v INT)").unwrap();
    setup.execute("CREATE TABLE b (v INT)").unwrap();
    setup.execute("INSERT INTO a VALUES (1), (2), (3)").unwrap();
    setup.execute("INSERT INTO b VALUES (4), (5), (6)").unwrap();

    let (done_tx, done_rx) = mpsc::channel();
    let stmts: [&str; 4] = [
        // Readers naming the pair in both orders.
        "SELECT COUNT(*) FROM a, b",
        "SELECT COUNT(*) FROM b, a",
        // Writers whose (write, read) pairs oppose each other: write a /
        // read b vs write b / read a. The predicate keeps them no-ops so
        // row counts stay put while the lock traffic is real.
        "INSERT INTO a SELECT v FROM b WHERE v < 0",
        "INSERT INTO b SELECT v FROM a WHERE v < 0",
    ];
    let threads: Vec<_> = stmts
        .into_iter()
        .map(|stmt| {
            let db = Arc::clone(&db);
            let done_tx = done_tx.clone();
            thread::spawn(move || {
                let s = db.session();
                for _ in 0..ITERS {
                    s.execute(stmt).unwrap();
                }
                done_tx.send(()).unwrap();
            })
        })
        .collect();
    drop(done_tx);
    for _ in 0..threads.len() {
        done_rx
            .recv_timeout(Duration::from_secs(60))
            .expect("opposite-order statements deadlocked");
    }
    for t in threads {
        t.join().unwrap();
    }
    // The no-op writers really were no-ops.
    let s = db.session();
    assert_eq!(
        s.query("SELECT COUNT(*) FROM a, b").unwrap().rows[0][0].as_int(),
        Some(9)
    );
}
