//! Concurrency: a `Database` is shared across threads via `Arc`; each
//! thread opens its own session. Statement execution takes the storage
//! lock for its duration, so readers see consistent snapshots and
//! writers never interleave mid-statement.

use minidb::{Database, Value};
use std::sync::Arc;
use std::thread;

#[test]
fn concurrent_writers_do_not_lose_rows() {
    let db = Database::new();
    db.session()
        .execute("CREATE TABLE t (worker INT, seq INT)")
        .unwrap();
    let threads: Vec<_> = (0..8)
        .map(|w| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                let s = db.session();
                for i in 0..50 {
                    s.execute_with_params(
                        "INSERT INTO t VALUES (:w, :i)",
                        &[("w", Value::Int(w)), ("i", Value::Int(i))],
                    )
                    .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let s = db.session();
    let r = s.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(400));
    // Every worker wrote its full sequence.
    let r = s
        .query("SELECT worker, COUNT(*) FROM t GROUP BY worker ORDER BY worker")
        .unwrap();
    assert_eq!(r.rows.len(), 8);
    for row in &r.rows {
        assert_eq!(row[1].as_int(), Some(50));
    }
}

#[test]
fn readers_and_writers_interleave_safely() {
    let db = Database::new();
    let setup = db.session();
    setup.execute("CREATE TABLE t (v INT)").unwrap();
    setup.execute("INSERT INTO t VALUES (0)").unwrap();

    let writer = {
        let db = Arc::clone(&db);
        thread::spawn(move || {
            let s = db.session();
            for i in 1..200 {
                s.execute_with_params("INSERT INTO t VALUES (:i)", &[("i", Value::Int(i))])
                    .unwrap();
            }
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                let s = db.session();
                let mut last = 0i64;
                for _ in 0..100 {
                    let r = s.query("SELECT COUNT(*) FROM t").unwrap();
                    let n = r.rows[0][0].as_int().unwrap();
                    // Counts only grow.
                    assert!(n >= last, "{n} < {last}");
                    last = n;
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    let s = db.session();
    let r = s.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(200));
}

#[test]
fn concurrent_updates_against_an_index_stay_consistent() {
    let db = Database::new();
    let setup = db.session();
    setup.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    for i in 0..100 {
        setup
            .execute_with_params("INSERT INTO t VALUES (:k, 0)", &[("k", Value::Int(i % 10))])
            .unwrap();
    }
    setup.execute("CREATE INDEX ix ON t(k)").unwrap();
    let threads: Vec<_> = (0..4)
        .map(|w| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                let s = db.session();
                for _ in 0..25 {
                    s.execute_with_params(
                        "UPDATE t SET v = v + 1 WHERE k = :k",
                        &[("k", Value::Int(w))],
                    )
                    .unwrap();
                    s.query_with_params(
                        "SELECT COUNT(*) FROM t WHERE k = :k",
                        &[("k", Value::Int(w))],
                    )
                    .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // The index still answers exactly like a scan.
    let s = db.session();
    for k in 0..10 {
        let ix = s
            .query_with_params(
                "SELECT COUNT(*) FROM t WHERE k = :k",
                &[("k", Value::Int(k))],
            )
            .unwrap();
        assert_eq!(ix.rows[0][0].as_int(), Some(10), "k={k}");
    }
    // Each updated key accumulated all 100 increments (4 threads never
    // interleave within one UPDATE statement).
    let r = s
        .query("SELECT k, SUM(v) FROM t WHERE k < 4 GROUP BY k ORDER BY k")
        .unwrap();
    for row in &r.rows {
        assert_eq!(row[1].as_int(), Some(250), "k={:?}", row[0]);
    }
}
