//! MVCC and transaction semantics end to end: AS OF edge cases (before a
//! table existed, future commits, historical stability under concurrent
//! writers), BEGIN/COMMIT/ROLLBACK visibility and conflict detection,
//! and the apply-vs-log ordering proof — a statement whose WAL append
//! fails must leave no trace in memory or in recovery.

use minidb::wal::file::FailpointFile;
use minidb::{Database, DbError, DurabilityConfig, SyncMode, Value};
use std::path::PathBuf;
use std::sync::Arc;

/// Fresh scratch directory under the system temp dir, unique per test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("minidb-mvcc-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cfg_off() -> DurabilityConfig {
    DurabilityConfig {
        sync_mode: SyncMode::Off,
        ..DurabilityConfig::default()
    }
}

fn ids(db: &Arc<Database>, table: &str) -> Vec<i64> {
    let r = db
        .session()
        .query(&format!("SELECT id FROM {table} ORDER BY id"))
        .unwrap();
    r.rows
        .iter()
        .map(|row| match row[0] {
            Value::Int(i) => i,
            ref other => panic!("unexpected id value {other:?}"),
        })
        .collect()
}

// ----- AS OF edges ---------------------------------------------------

#[test]
fn as_of_before_the_table_existed_is_a_typed_not_found() {
    let db = Database::new();
    let s = db.session();
    // Commit 0 is the empty database; the table arrives later.
    s.execute("CREATE TABLE t (id INT)").unwrap();
    s.execute("INSERT INTO t VALUES (1)").unwrap();
    match s.query("SELECT * FROM t AS OF COMMIT 0") {
        Err(DbError::NotFound { kind, .. }) => assert_eq!(kind, "table"),
        other => panic!("expected a typed NotFound, got {other:?}"),
    }
}

#[test]
fn as_of_a_future_commit_sees_the_latest_committed_rows() {
    let db = Database::new();
    let s = db.session();
    s.execute("CREATE TABLE t (id INT)").unwrap();
    for i in 0..3 {
        s.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    let future = db.commit_seq() + 1_000;
    let r = s
        .query(&format!(
            "SELECT id FROM t ORDER BY id AS OF COMMIT {future}"
        ))
        .unwrap();
    let got: Vec<i64> = r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
    assert_eq!(got, vec![0, 1, 2], "a future commit clamps to the latest");
}

#[test]
fn as_of_results_are_byte_identical_under_concurrent_writers() {
    let db = Database::new();
    let s = db.session();
    s.execute("CREATE TABLE t (id INT, v CHAR(8))").unwrap();
    for i in 0..8 {
        s.execute(&format!("INSERT INTO t VALUES ({i}, 'v{i}')"))
            .unwrap();
    }
    let seq = db.commit_seq();
    let sql = format!("SELECT id, v FROM t ORDER BY id AS OF COMMIT {seq}");
    let baseline = format!("{:?}", s.query(&sql).unwrap().rows);

    // The writer stays inside the version-retention window (64 commits):
    // past it the GC is allowed to collect the pinned-by-nobody history
    // and AS OF reports NotFound, by design.
    let writer = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            let w = db.session();
            for i in 8..32 {
                w.execute(&format!("INSERT INTO t VALUES ({i}, 'w{i}')"))
                    .unwrap();
                w.execute(&format!("UPDATE t SET v = 'x{i}' WHERE id = {}", i % 8))
                    .unwrap();
            }
        })
    };
    for _ in 0..64 {
        let again = format!("{:?}", s.query(&sql).unwrap().rows);
        assert_eq!(again, baseline, "historical reads must not drift");
    }
    writer.join().unwrap();
    // And the present tense did move on.
    assert_eq!(ids(&db, "t").len(), 32);
}

// ----- Transactions --------------------------------------------------

#[test]
fn rollback_leaves_no_trace_in_data_or_wal_replay() {
    let dir = scratch("rollback");
    {
        let (db, _) = Database::open(&dir, cfg_off()).unwrap();
        let s = db.session();
        s.execute("CREATE TABLE t (id INT)").unwrap();
        s.execute("INSERT INTO t VALUES (1)").unwrap();
        s.execute("INSERT INTO t VALUES (2)").unwrap();

        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO t VALUES (3)").unwrap();
        s.execute("UPDATE t SET id = 99 WHERE id = 1").unwrap();
        s.execute("DELETE FROM t WHERE id = 2").unwrap();
        s.execute("ROLLBACK").unwrap();

        assert_eq!(ids(&db, "t"), vec![1, 2], "rollback restores the data");
        drop(s);
        // Unclean drop: whatever leaked into the WAL replays next open.
    }
    let (db, _) = Database::open(&dir, cfg_off()).unwrap();
    assert_eq!(ids(&db, "t"), vec![1, 2], "rollback leaves no WAL trace");
    db.close().unwrap();
}

#[test]
fn commit_publishes_all_statements_atomically_and_survives_replay() {
    let dir = scratch("commit");
    {
        let (db, _) = Database::open(&dir, cfg_off()).unwrap();
        let s = db.session();
        s.execute("CREATE TABLE t (id INT)").unwrap();
        s.execute("BEGIN").unwrap();
        for i in 0..5 {
            s.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        s.execute("UPDATE t SET id = 40 WHERE id = 4").unwrap();
        s.execute("COMMIT").unwrap();
        assert_eq!(ids(&db, "t"), vec![0, 1, 2, 3, 40]);
        drop(s);
    }
    let (db, _) = Database::open(&dir, cfg_off()).unwrap();
    assert_eq!(ids(&db, "t"), vec![0, 1, 2, 3, 40]);
    db.close().unwrap();
}

#[test]
fn uncommitted_writes_are_private_to_the_transaction() {
    let db = Database::new();
    let s1 = db.session();
    let s2 = db.session();
    s1.execute("CREATE TABLE t (id INT)").unwrap();
    s1.execute("INSERT INTO t VALUES (1)").unwrap();
    let committed = db.commit_seq();

    s1.execute("BEGIN").unwrap();
    s1.execute("INSERT INTO t VALUES (2)").unwrap();

    // The transaction sees its own write …
    let mine: Vec<i64> = s1
        .query("SELECT id FROM t ORDER BY id")
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .collect();
    assert_eq!(mine, vec![1, 2]);

    // … but AS OF addresses committed history only, even in-session …
    let historical: Vec<i64> = s1
        .query(&format!(
            "SELECT id FROM t ORDER BY id AS OF COMMIT {committed}"
        ))
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .collect();
    assert_eq!(historical, vec![1], "AS OF must not see uncommitted work");

    // … and no other session sees it until COMMIT.
    assert_eq!(ids(&db, "t"), vec![1]);
    let other: Vec<i64> = s2
        .query("SELECT id FROM t ORDER BY id")
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .collect();
    assert_eq!(other, vec![1]);

    s1.execute("COMMIT").unwrap();
    assert_eq!(ids(&db, "t"), vec![1, 2]);
}

#[test]
fn first_committer_wins_on_a_write_write_conflict() {
    let db = Database::new();
    let s1 = db.session();
    let s2 = db.session();
    s1.execute("CREATE TABLE t (id INT)").unwrap();
    s1.execute("INSERT INTO t VALUES (1)").unwrap();

    s1.execute("BEGIN").unwrap();
    s2.execute("BEGIN").unwrap();
    s1.execute("UPDATE t SET id = 10 WHERE id = 1").unwrap();
    s2.execute("UPDATE t SET id = 20 WHERE id = 1").unwrap();

    s1.execute("COMMIT").unwrap();
    match s2.execute("COMMIT") {
        Err(DbError::Execution { message }) => {
            assert!(
                message.contains("write-write conflict"),
                "unexpected message: {message}"
            );
        }
        other => panic!("second committer must lose, got {other:?}"),
    }
    assert_eq!(
        ids(&db, "t"),
        vec![10],
        "the first committer's write stands"
    );

    // The loser's transaction is over; a fresh one works.
    s2.execute("BEGIN").unwrap();
    s2.execute("UPDATE t SET id = 20 WHERE id = 10").unwrap();
    s2.execute("COMMIT").unwrap();
    assert_eq!(ids(&db, "t"), vec![20]);
}

#[test]
fn transaction_statement_misuse_is_rejected() {
    let db = Database::new();
    let s = db.session();
    s.execute("CREATE TABLE t (id INT)").unwrap();

    assert!(s.execute("COMMIT").is_err(), "COMMIT without BEGIN");
    assert!(s.execute("ROLLBACK").is_err(), "ROLLBACK without BEGIN");

    s.execute("BEGIN").unwrap();
    assert!(s.execute("BEGIN").is_err(), "nested BEGIN");
    match s.execute("CREATE TABLE u (id INT)") {
        Err(DbError::Execution { message }) => {
            assert!(message.contains("DDL"), "unexpected message: {message}")
        }
        other => panic!("DDL inside a transaction must fail, got {other:?}"),
    }
    s.execute("ROLLBACK").unwrap();

    // The session is back to autocommit and fully usable.
    s.execute("INSERT INTO t VALUES (1)").unwrap();
    assert_eq!(ids(&db, "t"), vec![1]);
}

#[test]
fn show_stats_reports_mvcc_gauges_and_txn_counters() {
    let db = Database::new();
    let s = db.session();
    s.execute("CREATE TABLE t (id INT)").unwrap();
    s.execute("BEGIN").unwrap();
    s.execute("INSERT INTO t VALUES (1)").unwrap();
    s.execute("COMMIT").unwrap();
    s.execute("BEGIN").unwrap();
    s.execute("ROLLBACK").unwrap();

    let r = s.query("SHOW STATS").unwrap();
    let value = |name: &str| -> i64 {
        r.rows
            .iter()
            .find(|row| row[0].as_str().unwrap() == name)
            .unwrap_or_else(|| panic!("SHOW STATS missing {name}"))[1]
            .as_int()
            .unwrap()
    };
    assert!(value("mvcc.versions") >= 1, "version chains exist");
    assert!(value("mvcc.snapshots_pinned") >= 0);
    assert!(value("txn.begun") >= 2);
    assert!(value("txn.committed") >= 1);
    assert!(value("txn.rolled_back") >= 1);
}

// ----- Apply-vs-log ordering -----------------------------------------

/// A statement whose WAL append fails must not mutate memory, and a
/// crash right after must recover to a state without it. The failpoint
/// sequence is deterministic: under `SyncMode::EveryCommit` the torn
/// write is observed by the statement that caused it (INSERT 4 errors at
/// its durability wait, its chunk torn on "disk"), which latches the
/// WAL's I/O error; the next statement (INSERT 5) then fails its append
/// up front and — log-before-apply — touches nothing.
#[test]
fn failed_wal_append_leaves_memory_untouched_and_recovery_agrees() {
    let dir = scratch("failpoint");
    let cfg = DurabilityConfig {
        sync_mode: SyncMode::EveryCommit,
        ..DurabilityConfig::default()
    };
    let mut shared = None;
    let (db, _) = Database::open_with_wal_file(&dir, cfg, |_path, header| {
        let (file, state) = FailpointFile::new(header);
        shared = Some(state);
        Ok(Box::new(file))
    })
    .unwrap();
    let state = shared.expect("factory ran");

    let s = db.session();
    s.execute("CREATE TABLE t (id INT)").unwrap();
    for i in 1..=3 {
        s.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    assert_eq!(ids(&db, "t"), vec![1, 2, 3]);

    // Arm the failpoint: the next append tears after a 1-byte prefix.
    state.lock().unwrap().fail_after_bytes = Some(1);

    // INSERT 4: append is accepted into the batch buffer, the row is
    // applied, then the durability wait surfaces the torn write.
    assert!(
        s.execute("INSERT INTO t VALUES (4)").is_err(),
        "the torn write must surface at the durability wait"
    );

    // INSERT 5: the WAL is latched unavailable, the append fails before
    // anything is applied. Memory must be exactly as before it ran.
    assert!(
        s.execute("INSERT INTO t VALUES (5)").is_err(),
        "appends after an I/O error must fail"
    );
    assert_eq!(
        ids(&db, "t"),
        vec![1, 2, 3, 4],
        "a statement whose append failed must not mutate memory"
    );

    // "Crash": persist exactly what reached the failpoint disk, drop the
    // database without closing, and recover from the bytes alone.
    let bytes = state.lock().unwrap().bytes.clone();
    drop(s);
    drop(db);
    std::fs::write(dir.join("wal.log"), &bytes).unwrap();

    let (db, _) = Database::open(&dir, cfg_off()).unwrap();
    assert_eq!(
        ids(&db, "t"),
        vec![1, 2, 3],
        "recovery keeps the committed prefix and drops the torn statement"
    );
    db.close().unwrap();
}
