//! Snapshot ↔ WAL round-trip property: for random interleavings of DDL
//! and DML, the state recovered from the data directory (snapshot load +
//! log replay) is *byte-identical* — per `save_snapshot` — to the state
//! of the live database that wrote it. Byte identity (not just logical
//! equality) holds because the v2 snapshot format preserves slot layout
//! and free-list order, and WAL replay re-places rows at their original
//! rowids.

use minidb::{Database, DurabilityConfig, SyncMode, Value};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

mod common;

/// Current state in canonical materialized (inline, v2) form: every
/// cold row faulted and written inline, so hot/cold placement cannot
/// mask or manufacture a byte difference.
fn inline_state(db: &Arc<Database>) -> Vec<u8> {
    db.with_catalog(|cat| db.with_storage(|s| minidb::storage::save_snapshot_with(cat, s, true)))
        .unwrap()
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "minidb-durprop-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One random statement against two tables (`a`, `b`), chosen by op
/// kind. DDL ops may legitimately fail (e.g. CREATE on an existing
/// table); those failures must be identical live and replayed, so they
/// are simply ignored here.
fn run_op(s: &minidb::Session, op: usize, k: i64, v: i64) {
    let table = if k % 2 == 0 { "a" } else { "b" };
    let sql = match op {
        0 => format!("CREATE TABLE {table} (id INT, x INT)"),
        1 => format!("INSERT INTO {table} VALUES ({k}, {v})"),
        2 => format!("UPDATE {table} SET x = {v} WHERE id = {}", k % 10),
        3 => format!("DELETE FROM {table} WHERE id = {}", k % 10),
        4 => format!("CREATE INDEX ix_{table}_{} ON {table}(id)", v % 3),
        _ => format!("DROP TABLE {table}"),
    };
    let _ = s.execute(&sql);
}

fn apply_all(db: &Arc<Database>, ops: &[(usize, i64, i64)]) {
    let s = db.session();
    // Both tables usually exist so DML has something to hit.
    let _ = s.execute("CREATE TABLE a (id INT, x INT)");
    let _ = s.execute("CREATE TABLE b (id INT, x INT)");
    for &(op, k, v) in ops {
        run_op(&s, op, k, v);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn replayed_state_is_byte_identical_to_live_state(
        ops in proptest::collection::vec((0usize..6, 0i64..40, 0i64..1000), 1..30),
        drop_unclean in proptest::bool::ANY,
    ) {
        let cfg = DurabilityConfig {
            sync_mode: SyncMode::Off,
            // Force a mid-run checkpoint now and then: tiny threshold on
            // odd-length op lists exercises the rotate-first protocol.
            checkpoint_bytes: if ops.len() % 2 == 1 { 256 } else { 0 },
            ..DurabilityConfig::default()
        };
        let dir = scratch();
        let live_bytes;
        {
            let (db, _) = Database::open(&dir, cfg.clone()).unwrap();
            apply_all(&db, &ops);
            live_bytes = db.save_snapshot().unwrap();
            if !drop_unclean {
                db.close().unwrap();
            }
            // else: unclean drop — recovery comes from checkpoint + log.
        }
        let (db, report) = Database::open(&dir, cfg).unwrap();
        let replayed_bytes = db.save_snapshot().unwrap();
        prop_assert_eq!(
            replayed_bytes,
            live_bytes,
            "ops={:?} unclean={} report={}",
            ops,
            drop_unclean,
            report.summary()
        );
        db.close().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_is_idempotent(
        ops in proptest::collection::vec((0usize..6, 0i64..40, 0i64..1000), 1..20),
    ) {
        // Opening the same directory repeatedly (each open checkpoints)
        // must be a fixed point: state never drifts.
        let cfg = DurabilityConfig { sync_mode: SyncMode::Off, ..DurabilityConfig::default() };
        let dir = scratch();
        {
            let (db, _) = Database::open(&dir, cfg.clone()).unwrap();
            apply_all(&db, &ops);
        }
        let mut last: Option<Vec<u8>> = None;
        for round in 0..3 {
            let (db, _) = Database::open(&dir, cfg.clone()).unwrap();
            let bytes = db.save_snapshot().unwrap();
            if let Some(prev) = &last {
                prop_assert_eq!(prev, &bytes, "state drifted at reopen {}", round);
            }
            last = Some(bytes);
            drop(db);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The same crash-recovery property against the *paged* engine: a
    /// table with an interval column, random DML interleaved with
    /// explicit spills and checkpoints on a tiny pool, then a clean
    /// close or an unclean drop. Recovery (paged snapshot + `pages.db`
    /// + WAL replay) must reproduce the live state byte-exactly in
    /// canonical materialized form (spills are representation changes,
    /// never logged, so hot/cold placement may legitimately differ
    /// between the live database and its recovered twin).
    #[test]
    fn paged_recovery_reproduces_live_state(
        ops in proptest::collection::vec((0usize..6, 0i64..40, 0i64..1000), 1..30),
        drop_unclean in proptest::bool::ANY,
    ) {
        let cfg = DurabilityConfig {
            sync_mode: SyncMode::Off,
            page_size: 512,
            pool_pages: 4,
            ..DurabilityConfig::default()
        };
        let dir = scratch();
        let live_bytes;
        {
            let (db, _) = Database::open_with(&dir, cfg.clone(), |db| {
                db.install_blade(&common::ValidityBlade)
            }).unwrap();
            let s = db.session();
            let _ = s.execute("CREATE TABLE a (id INT, x INT, v Validity)");
            for (i, &(op, k, x)) in ops.iter().enumerate() {
                match op {
                    // Closed interval: spills. Open interval: stays hot.
                    0 | 1 => {
                        let hi = if x % 2 == 0 { (x % 50) + 1 } else { i64::MAX / 2 };
                        let _ = s.execute(&format!(
                            "INSERT INTO a VALUES ({k}, {x}, '0..{hi}')"
                        ));
                    }
                    2 => { let _ = s.execute(&format!(
                        "UPDATE a SET x = {x} WHERE id = {}", k % 10)); }
                    3 => { let _ = s.execute(&format!(
                        "DELETE FROM a WHERE id = {}", k % 10)); }
                    // Spill everything closed before instant 100.
                    4 => { db.spill_cold(100).unwrap(); }
                    // Incremental checkpoint (also spills, at wall time).
                    _ => { db.checkpoint().unwrap(); }
                }
                let _ = i;
            }
            live_bytes = inline_state(&db);
            if !drop_unclean {
                db.close().unwrap();
            }
        }
        let (db, report) = Database::open_with(&dir, cfg, |db| {
            db.install_blade(&common::ValidityBlade)
        }).unwrap();
        let replayed_bytes = inline_state(&db);
        prop_assert_eq!(
            replayed_bytes,
            live_bytes,
            "ops={:?} unclean={} report={}",
            ops,
            drop_unclean,
            report.summary()
        );
        db.close().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn value_types_round_trip_through_the_log() {
    // Non-integer builtins flow through the record codec too.
    let dir = scratch();
    let cfg = DurabilityConfig {
        sync_mode: SyncMode::Off,
        ..DurabilityConfig::default()
    };
    {
        let (db, _) = Database::open(&dir, cfg.clone()).unwrap();
        let s = db.session();
        s.execute("CREATE TABLE m (id INT, name CHAR(12), score FLOAT, ok BOOL)")
            .unwrap();
        s.execute("INSERT INTO m VALUES (1, 'hello', 2.5, TRUE)")
            .unwrap();
        s.execute("INSERT INTO m VALUES (2, NULL, NULL, FALSE)")
            .unwrap();
    }
    let (db, _) = Database::open(&dir, cfg).unwrap();
    let r = db
        .session()
        .query("SELECT name, score, ok FROM m ORDER BY id")
        .unwrap();
    assert_eq!(
        r.rows[0],
        vec![
            Value::Str("hello".into()),
            Value::Float(2.5),
            Value::Bool(true)
        ]
    );
    assert_eq!(
        r.rows[1],
        vec![Value::Null, Value::Null, Value::Bool(false)]
    );
    db.close().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
