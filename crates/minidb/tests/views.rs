//! Views: CREATE VIEW / DROP VIEW, inlining at plan time, nesting,
//! freshness, and persistence.

use minidb::Database;

fn db() -> std::sync::Arc<Database> {
    let db = Database::new();
    let s = db.session();
    s.execute("CREATE TABLE sales (region CHAR(8), amount INT)")
        .unwrap();
    s.execute("INSERT INTO sales VALUES ('east', 10), ('east', 20), ('west', 5), ('north', 40)")
        .unwrap();
    db
}

#[test]
fn create_query_drop() {
    let db = db();
    let s = db.session();
    s.execute("CREATE VIEW big_sales AS SELECT region, amount FROM sales WHERE amount >= 10")
        .unwrap();
    let r = s.query("SELECT COUNT(*) FROM big_sales").unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(3));
    // Views compose with the full query surface.
    let r = s
        .query(
            "SELECT region, SUM(amount) FROM big_sales GROUP BY region \
             HAVING SUM(amount) > 15 ORDER BY region",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    s.execute("DROP VIEW big_sales").unwrap();
    assert!(s.query("SELECT * FROM big_sales").is_err());
    s.execute("DROP VIEW IF EXISTS big_sales").unwrap();
    assert!(s.execute("DROP VIEW big_sales").is_err());
}

#[test]
fn views_are_always_fresh() {
    let db = db();
    let s = db.session();
    s.execute("CREATE VIEW totals AS SELECT SUM(amount) AS total FROM sales")
        .unwrap();
    let before = s.query("SELECT total FROM totals").unwrap().rows[0][0]
        .as_int()
        .unwrap();
    s.execute("INSERT INTO sales VALUES ('south', 100)")
        .unwrap();
    let after = s.query("SELECT total FROM totals").unwrap().rows[0][0]
        .as_int()
        .unwrap();
    assert_eq!(after, before + 100, "view re-evaluates over current data");
}

#[test]
fn views_join_with_tables_and_views() {
    let db = db();
    let s = db.session();
    s.execute("CREATE VIEW east AS SELECT amount FROM sales WHERE region = 'east'")
        .unwrap();
    s.execute("CREATE VIEW west AS SELECT amount FROM sales WHERE region = 'west'")
        .unwrap();
    // View ⋈ view.
    let r = s
        .query("SELECT COUNT(*) FROM east e, west w WHERE e.amount > w.amount")
        .unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(2));
    // View ⋈ table with pushed predicate onto the view side.
    let r = s
        .query(
            "SELECT COUNT(*) FROM east e, sales s2 \
             WHERE e.amount = s2.amount AND e.amount >= 20",
        )
        .unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(1));
}

#[test]
fn nested_views_and_depth_limit() {
    let db = db();
    let s = db.session();
    s.execute("CREATE VIEW v0 AS SELECT amount FROM sales")
        .unwrap();
    for i in 1..=5 {
        s.execute(&format!(
            "CREATE VIEW v{i} AS SELECT amount FROM v{}",
            i - 1
        ))
        .unwrap();
    }
    let r = s.query("SELECT COUNT(*) FROM v5").unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(4));
    // A self-recursive view is caught by the depth guard, not a hang.
    s.execute("CREATE VIEW base AS SELECT amount FROM sales")
        .unwrap();
    s.execute("DROP TABLE sales").unwrap();
    s.execute("CREATE TABLE sales (amount INT)").unwrap();
    // Rebind: create a cycle via two views referencing each other is not
    // directly constructible (creation validates), but deep chains are
    // bounded.
    let mut prev = "v5".to_owned();
    let mut failed = false;
    for i in 6..40 {
        let name = format!("v{i}");
        match s.execute(&format!("CREATE VIEW {name} AS SELECT amount FROM {prev}")) {
            Ok(_) => prev = name,
            Err(e) => {
                assert!(e.to_string().contains("depth"), "{e}");
                failed = true;
                break;
            }
        }
    }
    assert!(failed, "deep view chains must hit the nesting guard");
}

#[test]
fn view_name_collisions_rejected() {
    let db = db();
    let s = db.session();
    s.execute("CREATE VIEW v AS SELECT region FROM sales")
        .unwrap();
    assert!(s
        .execute("CREATE VIEW v AS SELECT region FROM sales")
        .is_err());
    assert!(
        s.execute("CREATE TABLE v (a INT)").is_err(),
        "name shared with a view"
    );
    assert!(
        s.execute("CREATE VIEW sales AS SELECT 1").is_err(),
        "name shared with a table"
    );
    // DROP TABLE does not drop views.
    assert!(s.execute("DROP TABLE v").is_err());
}

#[test]
fn create_view_validates_its_body() {
    let db = db();
    let s = db.session();
    assert!(s
        .execute("CREATE VIEW broken AS SELECT nosuch FROM sales")
        .is_err());
    assert!(s
        .execute("CREATE VIEW broken AS SELECT region FROM missing")
        .is_err());
    assert!(
        s.query("SELECT * FROM broken").is_err(),
        "nothing was stored"
    );
}

#[test]
fn views_persist_in_snapshots() {
    let db = db();
    let s = db.session();
    s.execute("CREATE VIEW big AS SELECT region FROM sales WHERE amount >= 20")
        .unwrap();
    let snap = db.save_snapshot().unwrap();
    let db2 = Database::new();
    db2.load_snapshot(&snap).unwrap();
    let s2 = db2.session();
    let r = s2.query("SELECT COUNT(*) FROM big").unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(2));
}

#[test]
fn explain_shows_the_inlined_view() {
    let db = db();
    let s = db.session();
    s.execute("CREATE VIEW big AS SELECT region FROM sales WHERE amount >= 20")
        .unwrap();
    let r = s
        .query("EXPLAIN SELECT region FROM big WHERE region = 'east'")
        .unwrap();
    let plan = r.rows[0][0].as_str().unwrap();
    // The view body is inlined (a filtered scan), with the outer
    // predicate layered on top.
    assert!(plan.contains("scan(sales)[f]"), "{plan}");
    assert!(plan.contains("filter("), "{plan}");
}
