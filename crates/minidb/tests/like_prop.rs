//! Property test for the LIKE matcher against a straightforward
//! recursive reference implementation.

use minidb::binder::like_match;
use proptest::prelude::*;

/// Reference semantics: `%` matches any run, `_` exactly one character.
fn reference(text: &[char], pattern: &[char]) -> bool {
    match pattern.split_first() {
        None => text.is_empty(),
        Some(('%', rest)) => (0..=text.len()).any(|k| reference(&text[k..], rest)),
        Some(('_', rest)) => match text.split_first() {
            Some((_, t)) => reference(t, rest),
            None => false,
        },
        Some((c, rest)) => match text.split_first() {
            Some((t0, t)) if t0 == c => reference(t, rest),
            _ => false,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    #[test]
    fn like_matches_reference(
        text in "[ab%_c]{0,12}",
        pattern in "[ab%_c]{0,8}",
    ) {
        let t: Vec<char> = text.chars().collect();
        let p: Vec<char> = pattern.chars().collect();
        prop_assert_eq!(
            like_match(&text, &pattern),
            reference(&t, &p),
            "text={:?} pattern={:?}",
            text,
            pattern
        );
    }

    #[test]
    fn like_never_panics_on_unicode(text in "\\PC{0,16}", pattern in "\\PC{0,10}") {
        let _ = like_match(&text, &pattern);
    }
}

#[test]
fn like_edge_cases() {
    assert!(like_match("", ""));
    assert!(like_match("", "%"));
    assert!(!like_match("", "_"));
    assert!(like_match("abc", "abc"));
    assert!(like_match("abc", "a%"));
    assert!(like_match("abc", "%c"));
    assert!(like_match("abc", "a_c"));
    assert!(!like_match("abc", "a_d"));
    assert!(like_match("abc", "%%%"));
    assert!(like_match("aaa", "%a%a%"));
    assert!(!like_match("ab", "abc"));
}
