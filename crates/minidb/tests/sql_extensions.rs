//! Tests for the extended SQL surface: LIKE, CASE, UNION [ALL],
//! OFFSET, INSERT … SELECT, and EXPLAIN.

use minidb::{Database, DbError, StatementOutcome};

fn db() -> std::sync::Arc<Database> {
    let db = Database::new();
    let s = db.session();
    s.execute("CREATE TABLE t (id INT, name CHAR(20), score FLOAT)")
        .unwrap();
    s.execute(
        "INSERT INTO t VALUES (1, 'alpha', 1.0), (2, 'beta', 2.5), \
         (3, 'alphabet', 3.0), (4, 'gamma', NULL)",
    )
    .unwrap();
    db
}

fn names(db: &std::sync::Arc<Database>, sql: &str) -> Vec<String> {
    let s = db.session();
    s.query(sql)
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_str().unwrap().to_owned())
        .collect()
}

#[test]
fn like_patterns() {
    let db = db();
    assert_eq!(
        names(
            &db,
            "SELECT name FROM t WHERE name LIKE 'alpha%' ORDER BY id"
        ),
        ["alpha", "alphabet"]
    );
    assert_eq!(
        names(&db, "SELECT name FROM t WHERE name LIKE '%et'"),
        ["alphabet"]
    );
    assert_eq!(
        names(&db, "SELECT name FROM t WHERE name LIKE '_eta'"),
        ["beta"]
    );
    // 'alpha' has two a's, so it matches '%a%a%' too.
    assert_eq!(
        names(
            &db,
            "SELECT name FROM t WHERE name LIKE '%a%a%' ORDER BY id"
        ),
        ["alpha", "alphabet", "gamma"]
    );
    assert_eq!(
        names(
            &db,
            "SELECT name FROM t WHERE name NOT LIKE '%a%' ORDER BY id"
        ),
        Vec::<String>::new()
    );
    // NULL input -> NULL -> filtered out.
    let s = db.session();
    let r = s
        .query("SELECT COUNT(*) FROM t WHERE name LIKE NULL")
        .unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(0));
    // Non-string operands are a type error.
    assert!(matches!(
        s.query("SELECT id LIKE 'x' FROM t"),
        Err(DbError::Type { .. })
    ));
}

#[test]
fn case_searched_and_simple() {
    let db = db();
    let s = db.session();
    let r = s
        .query(
            "SELECT name, CASE WHEN score >= 3.0 THEN 'high' \
                               WHEN score >= 2.0 THEN 'mid' \
                               ELSE 'low' END AS band \
             FROM t ORDER BY id",
        )
        .unwrap();
    let bands: Vec<&str> = r.rows.iter().map(|row| row[1].as_str().unwrap()).collect();
    // NULL score: no branch is TRUE, falls to ELSE.
    assert_eq!(bands, ["low", "mid", "high", "low"]);

    // Simple CASE (operand form) and missing ELSE -> NULL.
    let r = s
        .query("SELECT CASE id WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM t ORDER BY id")
        .unwrap();
    assert_eq!(r.rows[0][0].as_str(), Some("one"));
    assert_eq!(r.rows[1][0].as_str(), Some("two"));
    assert!(r.rows[2][0].is_null());
}

#[test]
fn case_branch_types_unify() {
    let db = db();
    let s = db.session();
    // INT branch widens to FLOAT via implicit cast.
    let r = s
        .query("SELECT CASE WHEN id = 1 THEN 1 ELSE 2.5 END FROM t ORDER BY id")
        .unwrap();
    assert_eq!(r.rows[0][0].as_float(), Some(1.0));
    assert_eq!(r.rows[1][0].as_float(), Some(2.5));
    // Irreconcilable branch types error.
    assert!(s
        .query("SELECT CASE WHEN id = 1 THEN 1 ELSE 'x' END FROM t")
        .is_err());
}

#[test]
fn union_and_union_all() {
    let db = db();
    let s = db.session();
    let r = s
        .query("SELECT id FROM t WHERE id <= 2 UNION ALL SELECT id FROM t WHERE id >= 2")
        .unwrap();
    assert_eq!(r.rows.len(), 5, "UNION ALL keeps the duplicate id=2");
    let r = s
        .query(
            "SELECT id FROM t WHERE id <= 2 UNION SELECT id FROM t WHERE id >= 2 \
             ORDER BY id",
        )
        .unwrap();
    let ids: Vec<i64> = r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
    assert_eq!(ids, [1, 2, 3, 4], "plain UNION deduplicates");
    // ORDER BY an ordinal.
    let r = s
        .query("SELECT id, name FROM t UNION ALL SELECT id, name FROM t ORDER BY 1 DESC LIMIT 2")
        .unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(4));
    assert_eq!(r.rows.len(), 2);
}

#[test]
fn union_arity_and_type_checks() {
    let db = db();
    let s = db.session();
    assert!(s
        .query("SELECT id FROM t UNION SELECT id, name FROM t")
        .is_err());
    assert!(s
        .query("SELECT id FROM t UNION SELECT name FROM t")
        .is_err());
    // NULL literals unify with any type.
    let r = s
        .query("SELECT id FROM t WHERE id = 1 UNION SELECT NULL")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
}

#[test]
fn offset_pagination() {
    let db = db();
    let s = db.session();
    let page = |off: u64| {
        s.query(&format!(
            "SELECT id FROM t ORDER BY id LIMIT 2 OFFSET {off}"
        ))
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .collect::<Vec<_>>()
    };
    assert_eq!(page(0), [1, 2]);
    assert_eq!(page(2), [3, 4]);
    assert_eq!(page(4), Vec::<i64>::new());
    // OFFSET without LIMIT.
    let r = s.query("SELECT id FROM t ORDER BY id OFFSET 3").unwrap();
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn insert_select_copies_and_coerces() {
    let db = db();
    let s = db.session();
    s.execute("CREATE TABLE archive (id INT, label CHAR(20))")
        .unwrap();
    let out = s
        .execute("INSERT INTO archive SELECT id, name FROM t WHERE id <= 2")
        .unwrap();
    assert!(matches!(out, StatementOutcome::Affected(2)));
    // With a column list and an implicit INT -> FLOAT coercion.
    s.execute("CREATE TABLE scores (v FLOAT)").unwrap();
    s.execute("INSERT INTO scores (v) SELECT id FROM t")
        .unwrap();
    let r = s.query("SELECT SUM(v) FROM scores").unwrap();
    assert_eq!(r.rows[0][0].as_float(), Some(10.0));
    // Arity mismatch is rejected.
    assert!(s.execute("INSERT INTO archive SELECT id FROM t").is_err());
    // Incompatible types are rejected.
    assert!(s
        .execute("INSERT INTO archive SELECT name, name FROM t")
        .is_err());
}

#[test]
fn explain_returns_plan_shape() {
    let db = db();
    let s = db.session();
    s.execute("CREATE INDEX ix_id ON t(id)").unwrap();
    let r = s.query("EXPLAIN SELECT name FROM t WHERE id = 2").unwrap();
    assert_eq!(r.columns[0].0, "plan");
    let plan = r.rows[0][0].as_str().unwrap();
    assert!(plan.contains("ixscan(t)"), "{plan}");
    let r = s
        .query("EXPLAIN SELECT a.id FROM t a, t b WHERE a.id = b.id")
        .unwrap();
    assert!(
        r.rows[0][0].as_str().unwrap().contains("hashjoin"),
        "{:?}",
        r.rows[0][0]
    );
    // EXPLAIN of non-SELECT is a syntax error.
    assert!(s.execute("EXPLAIN DELETE FROM t").is_err());
}

#[test]
fn case_is_not_constant_folded_incorrectly() {
    // A column-free CASE folds; one with columns does not.
    let db = db();
    let s = db.session();
    let r = s
        .query("SELECT CASE WHEN 1 = 1 THEN 'y' ELSE 'n' END")
        .unwrap();
    assert_eq!(r.rows[0][0].as_str(), Some("y"));
}

#[test]
fn union_inside_insert_select() {
    let db = db();
    let s = db.session();
    s.execute("CREATE TABLE all_ids (id INT)").unwrap();
    s.execute(
        "INSERT INTO all_ids SELECT id FROM t WHERE id <= 2 UNION ALL \
         SELECT id FROM t WHERE id > 2",
    )
    .unwrap();
    let r = s.query("SELECT COUNT(*) FROM all_ids").unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(4));
}

#[test]
fn scalar_subqueries() {
    let db = db();
    let s = db.session();
    // Scalar subquery in WHERE: rows above the average score.
    let r = s
        .query("SELECT name FROM t WHERE score > (SELECT AVG(score) FROM t) ORDER BY id")
        .unwrap();
    let names: Vec<&str> = r.rows.iter().map(|row| row[0].as_str().unwrap()).collect();
    assert_eq!(names, ["beta", "alphabet"]); // avg of 1.0, 2.5, 3.0 is ~2.17
                                             // Scalar subquery in the select list.
    let r = s.query("SELECT (SELECT MAX(id) FROM t)").unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(4));
    // Empty scalar subquery yields NULL.
    let r = s.query("SELECT (SELECT id FROM t WHERE id > 100)").unwrap();
    assert!(r.rows[0][0].is_null());
    // More than one row is an error.
    assert!(s.query("SELECT (SELECT id FROM t)").is_err());
    // More than one column is an error.
    assert!(s
        .query("SELECT (SELECT id, name FROM t WHERE id = 1)")
        .is_err());
}

#[test]
fn in_subqueries() {
    let db = db();
    let s = db.session();
    s.execute("CREATE TABLE vip (id INT)").unwrap();
    s.execute("INSERT INTO vip VALUES (1), (3)").unwrap();
    let r = s
        .query("SELECT name FROM t WHERE id IN (SELECT id FROM vip) ORDER BY id")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][0].as_str(), Some("alpha"));
    let r = s
        .query("SELECT name FROM t WHERE id NOT IN (SELECT id FROM vip) ORDER BY id")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][0].as_str(), Some("beta"));
    // Empty subquery: IN -> nothing, NOT IN -> everything.
    s.execute("DELETE FROM vip").unwrap();
    assert!(s
        .query("SELECT name FROM t WHERE id IN (SELECT id FROM vip)")
        .unwrap()
        .rows
        .is_empty());
    assert_eq!(
        s.query("SELECT name FROM t WHERE id NOT IN (SELECT id FROM vip)")
            .unwrap()
            .rows
            .len(),
        4
    );
}

#[test]
fn subqueries_in_dml_and_nested() {
    let db = db();
    let s = db.session();
    // UPDATE with a scalar subquery.
    s.execute("UPDATE t SET score = (SELECT MAX(score) FROM t) WHERE id = 4")
        .unwrap();
    let r = s.query("SELECT score FROM t WHERE id = 4").unwrap();
    assert_eq!(r.rows[0][0].as_float(), Some(3.0));
    // DELETE with an IN subquery.
    s.execute("DELETE FROM t WHERE id IN (SELECT id FROM t WHERE score < 2.0)")
        .unwrap();
    let r = s.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(3));
    // Nested subqueries.
    let r = s
        .query(
            "SELECT name FROM t WHERE id = \
             (SELECT MIN(id) FROM t WHERE id IN (SELECT id FROM t WHERE score >= 2.5))",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn subquery_depth_is_limited() {
    let db = db();
    let s = db.session();
    let mut sql = String::from("SELECT ");
    for _ in 0..30 {
        sql.push_str("(SELECT ");
    }
    sql.push('1');
    for _ in 0..30 {
        sql.push(')');
    }
    let err = s.query(&sql).unwrap_err();
    assert!(err.to_string().contains("depth"), "{err}");
}

#[test]
fn aggregate_distinct() {
    let db = db();
    let s = db.session();
    s.execute("CREATE TABLE dup (g CHAR(2), v INT)").unwrap();
    s.execute(
        "INSERT INTO dup VALUES ('a', 1), ('a', 1), ('a', 2), ('b', 5), ('b', 5), ('b', NULL)",
    )
    .unwrap();
    let r = s
        .query(
            "SELECT g, COUNT(v), COUNT(DISTINCT v), SUM(DISTINCT v) FROM dup \
             GROUP BY g ORDER BY g",
        )
        .unwrap();
    assert_eq!(r.rows[0][1].as_int(), Some(3)); // a: 1,1,2
    assert_eq!(r.rows[0][2].as_int(), Some(2)); // a: {1,2}
    assert_eq!(r.rows[0][3].as_int(), Some(3)); // 1+2
    assert_eq!(r.rows[1][1].as_int(), Some(2)); // b: 5,5 (NULL skipped)
    assert_eq!(r.rows[1][2].as_int(), Some(1)); // b: {5}
    assert_eq!(r.rows[1][3].as_int(), Some(5));
    // Global DISTINCT aggregate.
    let r = s.query("SELECT COUNT(DISTINCT g) FROM dup").unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(2));
    // DISTINCT on a scalar routine is rejected.
    assert!(s.query("SELECT upper(DISTINCT g) FROM dup").is_err());
}
