//! Planner-shape tests via EXPLAIN: predicate pushdown, join algorithm
//! selection, index selection, constant folding, and the NOW-dependence
//! barrier — the optimizer behaviours DESIGN.md commits to.

use minidb::catalog::{Catalog, FunctionOverload};
use minidb::{Blade, DataType, Database, DbResult, Value};
use std::sync::Arc;

fn explain(db: &std::sync::Arc<Database>, sql: &str) -> String {
    let s = db.session();
    let r = s.query(&format!("EXPLAIN {sql}")).unwrap();
    r.rows[0][0].as_str().unwrap().to_owned()
}

fn db() -> std::sync::Arc<Database> {
    let db = Database::new();
    let s = db.session();
    s.execute("CREATE TABLE a (id INT, x INT)").unwrap();
    s.execute("CREATE TABLE b (id INT, y INT)").unwrap();
    s.execute("INSERT INTO a VALUES (1, 10), (2, 20)").unwrap();
    s.execute("INSERT INTO b VALUES (1, 100), (3, 300)")
        .unwrap();
    db
}

#[test]
fn single_table_conjuncts_are_pushed_into_the_scan() {
    let db = db();
    let plan = explain(&db, "SELECT a.id FROM a, b WHERE a.x > 5 AND b.y > 50");
    // Both filters sit on the scans ([f]), not above the join.
    assert!(plan.contains("scan(a)[f]"), "{plan}");
    assert!(plan.contains("scan(b)[f]"), "{plan}");
    assert!(!plan.starts_with("filter"), "{plan}");
}

#[test]
fn equality_across_tables_becomes_a_hash_join() {
    let db = db();
    let plan = explain(&db, "SELECT a.id FROM a, b WHERE a.id = b.id");
    assert!(plan.contains("hashjoin(scan(a),scan(b))"), "{plan}");
    // Non-equality falls back to a nested loop.
    let plan = explain(&db, "SELECT a.id FROM a, b WHERE a.id < b.id");
    assert!(plan.contains("nljoin"), "{plan}");
    // No predicate at all: cross product.
    let plan = explain(&db, "SELECT a.id FROM a, b");
    assert!(plan.contains("nljoin(scan(a),scan(b))"), "{plan}");
}

#[test]
fn index_selected_only_when_present_and_applicable() {
    let db = db();
    let before = explain(&db, "SELECT x FROM a WHERE id = 1");
    assert!(before.contains("scan(a)[f]"), "{before}");
    db.session()
        .execute("CREATE INDEX ix_a_id ON a(id)")
        .unwrap();
    let after = explain(&db, "SELECT x FROM a WHERE id = 1");
    assert!(after.contains("ixscan(a)"), "{after}");
    // Inequality cannot use the equality index.
    let range = explain(&db, "SELECT x FROM a WHERE id > 1");
    assert!(range.contains("scan(a)[f]"), "{range}");
    // Neither can an equality against another column of the same table.
    let cross = explain(&db, "SELECT x FROM a WHERE id = x");
    assert!(cross.contains("scan(a)[f]"), "{cross}");
}

#[test]
fn order_limit_distinct_stack_in_the_right_order() {
    let db = db();
    let plan = explain(&db, "SELECT DISTINCT x FROM a ORDER BY x LIMIT 5");
    assert_eq!(plan, "limit(sort(distinct(project(scan(a)))))");
    let plan = explain(&db, "SELECT x FROM a ORDER BY id LIMIT 5 OFFSET 2");
    // ORDER BY a non-projected column adds a hidden column (take).
    assert_eq!(plan, "limit(offset(take(sort(project(scan(a))))))");
}

#[test]
fn aggregation_plans() {
    let db = db();
    let plan = explain(
        &db,
        "SELECT x, COUNT(*) FROM a GROUP BY x HAVING COUNT(*) > 1",
    );
    assert_eq!(plan, "project(filter(agg(scan(a))))");
    let plan = explain(&db, "SELECT COUNT(*) FROM a");
    assert_eq!(plan, "project(agg(scan(a)))");
}

#[test]
fn union_plans() {
    let db = db();
    let plan = explain(&db, "SELECT id FROM a UNION ALL SELECT id FROM b");
    assert_eq!(plan, "union(project(scan(a)),project(scan(b)))");
    let plan = explain(&db, "SELECT id FROM a UNION SELECT id FROM b ORDER BY id");
    assert_eq!(
        plan,
        "sort(distinct(union(project(scan(a)),project(scan(b)))))"
    );
}

#[test]
fn scalar_subqueries_fold_into_the_plan() {
    let db = db();
    // The subquery is evaluated at plan time; the outer plan is a plain
    // filtered scan with a literal, not some subplan operator.
    let plan = explain(&db, "SELECT id FROM a WHERE x > (SELECT MIN(y) FROM b)");
    assert_eq!(plan, "project(scan(a)[f])");
}

/// A blade with one now-dependent and one pure function, to observe the
/// constant-folding barrier directly.
struct FoldProbe;
impl Blade for FoldProbe {
    fn name(&self) -> &str {
        "fold-probe"
    }
    fn version(&self) -> &str {
        "0"
    }
    fn register(&self, cat: &mut Catalog) -> DbResult<()> {
        cat.register_function(
            "txn_time",
            FunctionOverload {
                params: vec![],
                ret: DataType::Int,
                now_dependent: true,
                f: Arc::new(|ctx, _| Ok(Value::Int(ctx.txn_time_unix))),
            },
        )?;
        cat.register_function(
            "pure_seven",
            FunctionOverload {
                params: vec![],
                ret: DataType::Int,
                now_dependent: false,
                f: Arc::new(|_, _| Ok(Value::Int(7))),
            },
        )
    }
}

#[test]
fn now_dependent_expressions_survive_folding_and_reevaluate() {
    let db = Database::new();
    db.install_blade(&FoldProbe).unwrap();
    let mut s = db.session();
    s.execute("CREATE TABLE t (a INT)").unwrap();
    s.execute("INSERT INTO t VALUES (1)").unwrap();
    // Pure functions fold; the same query under two different NOWs gives
    // the same constant.
    s.set_now_unix(Some(1_000));
    let r1 = s.query("SELECT pure_seven() + 1 FROM t").unwrap();
    assert_eq!(r1.rows[0][0].as_int(), Some(8));
    // txn_time() must NOT fold: different override, different answer.
    let t1 = s.query("SELECT txn_time() FROM t").unwrap().rows[0][0]
        .as_int()
        .unwrap();
    s.set_now_unix(Some(2_000));
    let t2 = s.query("SELECT txn_time() FROM t").unwrap().rows[0][0]
        .as_int()
        .unwrap();
    assert_eq!(t1, 1_000);
    assert_eq!(t2, 2_000);
}

#[test]
fn explain_of_the_paper_self_join_shape() {
    // The E5 query plans as: hash join on patient with both drug filters
    // pushed into the scans.
    let db = Database::new();
    let s = db.session();
    s.execute("CREATE TABLE p (patient CHAR(10), drug CHAR(10))")
        .unwrap();
    let plan = explain(
        &db,
        "SELECT p1.patient FROM p p1, p p2 \
         WHERE p1.drug = 'Diabeta' AND p2.drug = 'Aspirin' AND p1.patient = p2.patient",
    );
    assert_eq!(plan, "project(hashjoin(scan(p)[f],scan(p)[f]))");
}

#[test]
fn range_predicates_use_the_btree_index() {
    let db = Database::new();
    let s = db.session();
    s.execute("CREATE TABLE t (id INT, x INT)").unwrap();
    for i in 0..200 {
        s.execute_with_params(
            "INSERT INTO t VALUES (:i, :x)",
            &[("i", Value::Int(i)), ("x", Value::Int(i * 10))],
        )
        .unwrap();
    }
    s.execute("CREATE INDEX ix_id ON t(id)").unwrap();
    // One-sided and two-sided ranges plan as irscan.
    for (sql, expect) in [
        ("SELECT x FROM t WHERE id > 150", 49i64),
        ("SELECT x FROM t WHERE id >= 150", 50),
        ("SELECT x FROM t WHERE id < 10", 10),
        ("SELECT x FROM t WHERE id BETWEEN 10 AND 19", 10),
        ("SELECT x FROM t WHERE id >= 20 AND id <= 29", 10),
        ("SELECT x FROM t WHERE 100 <= id AND id < 110", 10),
    ] {
        let plan = explain(&db, sql);
        assert!(plan.contains("irscan(t)"), "{sql}: {plan}");
        let count = db
            .session()
            .query(&sql.replace("SELECT x", "SELECT COUNT(*)"))
            .unwrap()
            .rows[0][0]
            .as_int()
            .unwrap();
        assert_eq!(count, expect, "{sql}");
    }
    // Equality still wins over range when both are available.
    let plan = explain(&db, "SELECT x FROM t WHERE id = 5 AND id < 100");
    assert!(plan.contains("ixscan(t)"), "{plan}");
    // NULL keys are never returned by a range probe.
    s.execute("INSERT INTO t VALUES (NULL, -1)").unwrap();
    let count = db
        .session()
        .query("SELECT COUNT(*) FROM t WHERE id < 1000")
        .unwrap()
        .rows[0][0]
        .as_int()
        .unwrap();
    assert_eq!(count, 200);
}

#[test]
fn range_probe_answers_match_full_scans() {
    let db = Database::new();
    let s = db.session();
    s.execute("CREATE TABLE plain (v INT)").unwrap();
    s.execute("CREATE TABLE ixed (v INT)").unwrap();
    for i in 0..300 {
        for t in ["plain", "ixed"] {
            s.execute_with_params(
                &format!("INSERT INTO {t} VALUES (:v)"),
                &[("v", Value::Int((i * 7) % 100))],
            )
            .unwrap();
        }
    }
    s.execute("CREATE INDEX ix_v ON ixed(v)").unwrap();
    for pred in [
        "v < 13",
        "v >= 90",
        "v BETWEEN 40 AND 60",
        "v > 20 AND v <= 21",
    ] {
        let a = s
            .query(&format!("SELECT COUNT(*) FROM plain WHERE {pred}"))
            .unwrap()
            .rows[0][0]
            .as_int();
        let b = s
            .query(&format!("SELECT COUNT(*) FROM ixed WHERE {pred}"))
            .unwrap()
            .rows[0][0]
            .as_int();
        assert_eq!(a, b, "{pred}");
    }
}
