//! The paged cold-row engine end to end: spilling closed-validity rows
//! to `pages.db`, faulting them back through the evicting buffer pool,
//! paged (v3) checkpoints, kill-9 recovery, a WAL prefix-cut sweep over
//! a paged checkpoint, and bounded pool residency for a dataset several
//! times the pool size.
//!
//! Production deployments get their interval-capable types from the TIP
//! blade, which this crate cannot depend on; the tests register their
//! own minimal `Validity` UDT instead — a closed `[lo, hi]` interval
//! whose `interval_key` lets the hot/cold classifier age rows out.

use minidb::{Database, DurabilityConfig, SyncMode, UdtValue, Value};
use std::path::{Path, PathBuf};
use std::sync::Arc;

mod common;
use common::{Validity, ValidityBlade};

// ----- harness -------------------------------------------------------

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("minidb-paged-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Tiny pool so modest datasets overflow it: 8 frames of 512 bytes.
fn cfg_small_pool() -> DurabilityConfig {
    DurabilityConfig {
        sync_mode: SyncMode::Off,
        page_size: 512,
        pool_pages: 8,
        ..DurabilityConfig::default()
    }
}

fn open(dir: &Path, cfg: DurabilityConfig) -> (Arc<Database>, minidb::RecoveryReport) {
    Database::open_with(dir, cfg, |db| db.install_blade(&ValidityBlade)).unwrap()
}

fn validity_value(db: &Arc<Database>, lo: i64, hi: i64) -> Value {
    let id = db.with_catalog(|cat| match cat.lookup_type_name("Validity").unwrap() {
        minidb::DataType::Udt(id) => id,
        other => panic!("Validity resolved to {other:?}"),
    });
    Value::Udt(UdtValue::new(id, Arc::new(Validity(lo, hi))))
}

/// `CREATE TABLE t` with a pad column so each row is ~100 cold bytes —
/// a handful per 512-byte page.
fn create_padded_table(db: &Arc<Database>) {
    db.session()
        .execute("CREATE TABLE t (id INT, pad CHAR(64), v Validity)")
        .unwrap();
}

/// Inserts row `i` valid over `[0, hi]`.
fn insert_row(db: &Arc<Database>, i: i64, hi: i64) {
    db.session()
        .execute_with_params(
            &format!("INSERT INTO t VALUES ({i}, '{}', :v)", "x".repeat(60)),
            &[("v", validity_value(db, 0, hi))],
        )
        .unwrap();
}

fn ids(db: &Arc<Database>, sql: &str) -> Vec<i64> {
    let r = db.session().query(sql).unwrap();
    r.rows
        .iter()
        .map(|row| match row[0] {
            Value::Int(i) => i,
            ref v => panic!("unexpected id value {v:?}"),
        })
        .collect()
}

/// A past instant on the validity axis (everything closed at `hi <
/// CLOSED_HI_MAX` spills at a real-clock checkpoint too, since wall time
/// is far larger).
const CLOSED_HI_MAX: i64 = 1_000;
/// `snapshot.db` file framing before the snapshot payload: 8-byte
/// magic, u64 generation, u64 payload length, u32 CRC.
const SNAPSHOT_FILE_HEADER: usize = 28;

/// Reads the snapshot *payload* out of `DIR/snapshot.db`.
fn snapshot_payload(dir: &Path) -> Vec<u8> {
    let bytes = std::fs::read(dir.join("snapshot.db")).unwrap();
    assert!(bytes.len() > SNAPSHOT_FILE_HEADER);
    bytes[SNAPSHOT_FILE_HEADER..].to_vec()
}
/// An end far in the future: rows with this `hi` stay hot forever.
const OPEN_HI: i64 = i64::MAX / 2;

// ----- tests ---------------------------------------------------------

/// Spilling moves exactly the closed-validity rows cold; scans and
/// AS OF reads fault them back with full parity, and updates/deletes of
/// cold rows work (fault, mutate, re-insert hot).
#[test]
fn spill_faults_and_mutates_cold_rows_with_parity() {
    let dir = scratch("spill-parity");
    let (db, _) = open(&dir, cfg_small_pool());
    create_padded_table(&db);
    for i in 0..120 {
        insert_row(&db, i, (i % 40) + 1); // closed: hi in 1..=40
    }
    for i in 120..125 {
        insert_row(&db, i, OPEN_HI); // open: stays hot
    }
    let seq_before = db.commit_seq();

    let spilled = db.spill_cold(CLOSED_HI_MAX).unwrap();
    assert_eq!(spilled, 120, "exactly the closed rows spill");
    let store = db.paged_store().expect("durable db has a page store");
    let (live, _, _) = store.page_counts();
    assert!(live > 8, "120 padded rows overflow the 8-frame pool");

    // Full-scan parity over hot + cold.
    assert_eq!(
        ids(&db, "SELECT id FROM t ORDER BY id"),
        (0..125).collect::<Vec<_>>()
    );
    let stats = db.bufpool_stats();
    assert!(stats.misses > 0, "cold scan faults pages: {stats:?}");
    assert!(stats.evictions > 0, "overflow evicts: {stats:?}");
    assert!(stats.pages <= 8, "pool stays within capacity: {stats:?}");

    // AS OF before the spill still answers (those versions are hot).
    assert_eq!(
        ids(
            &db,
            &format!("SELECT id FROM t ORDER BY id AS OF COMMIT {seq_before}")
        )
        .len(),
        125
    );

    // Mutating a cold row faults it and leaves it hot again.
    let s = db.session();
    s.execute("UPDATE t SET id = 1000 WHERE id = 7").unwrap();
    s.execute("DELETE FROM t WHERE id = 8").unwrap();
    let got = ids(&db, "SELECT id FROM t ORDER BY id");
    assert_eq!(got.len(), 124);
    assert!(got.contains(&1000) && !got.contains(&7) && !got.contains(&8));

    db.close().unwrap();
}

/// A checkpoint with cold rows writes a paged (v3) snapshot; an unclean
/// drop afterwards recovers from snapshot + `pages.db` + WAL tail, and
/// the recovered database accepts further DML.
#[test]
fn kill_after_paged_checkpoint_recovers_cold_rows_and_wal_tail() {
    let dir = scratch("kill-recover");
    {
        let (db, _) = open(&dir, cfg_small_pool());
        create_padded_table(&db);
        for i in 0..40 {
            insert_row(&db, i, 10);
        }
        db.checkpoint().unwrap(); // spills (wall clock >> 10) + v3 snapshot
        assert!(
            minidb::storage::snapshot_is_paged(&snapshot_payload(&dir)),
            "checkpoint of spilled rows writes a paged snapshot"
        );
        for i in 40..48 {
            insert_row(&db, i, 10); // WAL tail past the checkpoint
        }
        // Unclean drop: no close(), the tail lives only in the log.
    }
    let (db, report) = open(&dir, cfg_small_pool());
    assert!(report.snapshot_loaded, "{}", report.summary());
    assert!(report.txns_applied >= 8, "{}", report.summary());
    assert_eq!(
        ids(&db, "SELECT id FROM t ORDER BY id"),
        (0..48).collect::<Vec<_>>()
    );
    // Cold rows faulted from pages.db on the scan above.
    assert!(db.bufpool_stats().misses > 0);
    // The recovered database is fully writable, including cold rows.
    let s = db.session();
    s.execute("UPDATE t SET id = 500 WHERE id = 5").unwrap();
    insert_row(&db, 48, 10);
    assert_eq!(ids(&db, "SELECT id FROM t ORDER BY id").len(), 49);
    db.close().unwrap();
}

/// Kill-point sweep over the post-checkpoint region: with a paged
/// snapshot and `pages.db` in place, every WAL prefix recovers to a
/// committed-prefix state — the paged baseline is never lost and never
/// bleeds uncommitted rows.
#[test]
fn every_post_checkpoint_prefix_recovers_over_paged_baseline() {
    let base = 5i64; // rows captured by the paged checkpoint
    let tail = 5i64; // rows committed after it, present only in the WAL
    let dir = scratch("paged-sweep-build");
    {
        let (db, _) = open(&dir, cfg_small_pool());
        create_padded_table(&db);
        for i in 0..base {
            insert_row(&db, i, 10);
        }
        db.checkpoint().unwrap();
        for i in base..base + tail {
            insert_row(&db, i, 10);
        }
        // Unclean drop.
    }
    let log = std::fs::read(dir.join("wal.log")).unwrap();
    let header_len = minidb::wal::record::LOG_HEADER_LEN;
    assert!(log.len() > header_len, "tail transactions hit the log");
    let region_len = log.len() - header_len;

    let sweep = scratch("paged-sweep-cut");
    let mut seen_full = false;
    for cut in 0..=region_len {
        let _ = std::fs::remove_dir_all(&sweep);
        std::fs::create_dir_all(&sweep).unwrap();
        std::fs::copy(dir.join("snapshot.db"), sweep.join("snapshot.db")).unwrap();
        std::fs::copy(dir.join("pages.db"), sweep.join("pages.db")).unwrap();
        std::fs::write(sweep.join("wal.log"), &log[..header_len + cut]).unwrap();
        let (db, report) = open(&sweep, cfg_small_pool());
        let got = ids(&db, "SELECT id FROM t ORDER BY id");
        let k = got.len() as i64;
        assert!(
            k >= base,
            "cut {cut}: the paged checkpoint baseline survives ({})",
            report.summary()
        );
        assert_eq!(
            got,
            (0..k).collect::<Vec<_>>(),
            "cut {cut}: state must be a committed prefix ({})",
            report.summary()
        );
        if k == base + tail {
            seen_full = true;
        }
        db.close().unwrap();
    }
    assert!(seen_full, "the untruncated log recovers every row");
}

/// The acceptance workload: a dataset whose cold pages are at least 4×
/// the pool completes the full query suite — scans, filters,
/// aggregates, AS OF, updates — while the pool never exceeds its frame
/// budget.
#[test]
fn four_times_pool_dataset_completes_suite_with_bounded_pool() {
    let dir = scratch("4x-pool");
    let cfg = DurabilityConfig {
        sync_mode: SyncMode::Off,
        page_size: 512,
        pool_pages: 16,
        ..DurabilityConfig::default()
    };
    let (db, _) = open(&dir, cfg.clone());
    create_padded_table(&db);
    let n = 400i64;
    for i in 0..n {
        insert_row(&db, i, (i % 100) + 1);
    }
    let seq_hot = db.commit_seq();
    let spilled = db.spill_cold(CLOSED_HI_MAX).unwrap();
    assert_eq!(spilled as i64, n);
    let store = db.paged_store().unwrap();
    let (live, _, _) = store.page_counts();
    assert!(
        live >= 4 * 16,
        "dataset must be at least 4x the pool: {live} pages"
    );

    // Full suite over the cold data.
    assert_eq!(
        ids(&db, "SELECT id FROM t ORDER BY id"),
        (0..n).collect::<Vec<_>>()
    );
    assert_eq!(
        ids(&db, "SELECT id FROM t WHERE id >= 390 ORDER BY id"),
        (390..n).collect::<Vec<_>>()
    );
    let r = db.session().query("SELECT COUNT(id) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(n));
    // AS OF the pre-spill commit (hot versions) and the current one
    // (cold, faulting) agree.
    let asof = ids(
        &db,
        &format!("SELECT id FROM t ORDER BY id AS OF COMMIT {seq_hot}"),
    );
    assert_eq!(asof, (0..n).collect::<Vec<_>>());
    let s = db.session();
    s.execute("UPDATE t SET id = 9000 WHERE id = 0").unwrap();
    assert_eq!(ids(&db, "SELECT id FROM t WHERE id = 9000").len(), 1);

    let stats = db.bufpool_stats();
    assert!(
        stats.pages <= 16,
        "resident pages stay within the pool bound: {stats:?}"
    );
    assert!(stats.evictions > 0, "a 4x dataset must evict: {stats:?}");
    db.close().unwrap();
}

/// Checkpoints are incremental: after a small update round, the second
/// checkpoint writes back only the dirty pages (a small fraction of the
/// database) and the paged snapshot stays far smaller than the fully
/// materialized (inline) form of the same state.
#[test]
fn second_checkpoint_is_incremental_in_dirty_pages() {
    let dir = scratch("incremental");
    let (db, _) = open(&dir, cfg_small_pool());
    create_padded_table(&db);
    let n = 300i64;
    for i in 0..n {
        insert_row(&db, i, 10);
    }
    db.checkpoint().unwrap(); // spills everything, flushes every page
    let store = db.paged_store().unwrap();
    let (live, _, _) = store.page_counts();
    assert!(live > 30, "the dataset spans many pages: {live}");
    let wb_full = db.bufpool_stats().writebacks;
    assert!(
        wb_full as usize >= live,
        "first checkpoint wrote the database"
    );

    // Small update round: touch 3 of 300 rows, checkpoint again.
    let s = db.session();
    for i in 0..3 {
        s.execute(&format!("UPDATE t SET pad = 'updated' WHERE id = {i}"))
            .unwrap();
    }
    db.checkpoint().unwrap();
    let wb_delta = db.bufpool_stats().writebacks - wb_full;
    assert!(
        (wb_delta as usize) * 8 < live,
        "incremental checkpoint flushes only dirty pages: \
         {wb_delta} written vs {live} live"
    );

    // The paged snapshot references cold rows instead of inlining them;
    // materializing the same state (as replication must) is far bigger.
    let snap = snapshot_payload(&dir);
    assert!(minidb::storage::snapshot_is_paged(&snap));
    let (_, inline) = db.repl_snapshot().unwrap();
    assert!(
        snap.len() * 4 < inline.len(),
        "paged snapshot ({} bytes) is a fraction of the inline form ({} bytes)",
        snap.len(),
        inline.len()
    );
    db.close().unwrap();
}

/// The pool metrics surface through SHOW STATS alongside the other
/// counter families.
#[test]
fn show_stats_reports_bufpool_counters() {
    let dir = scratch("stats");
    let (db, _) = open(&dir, cfg_small_pool());
    create_padded_table(&db);
    for i in 0..60 {
        insert_row(&db, i, 10);
    }
    db.spill_cold(CLOSED_HI_MAX).unwrap();
    ids(&db, "SELECT id FROM t ORDER BY id"); // fault everything once
    let r = db.session().query("SHOW STATS").unwrap();
    let names: Vec<&str> = r.rows.iter().map(|row| row[0].as_str().unwrap()).collect();
    for key in [
        "bufpool.hits",
        "bufpool.misses",
        "bufpool.evictions",
        "bufpool.writebacks",
        "bufpool.pages",
    ] {
        assert!(names.contains(&key), "SHOW STATS lists {key}: {names:?}");
    }
    let misses = r
        .rows
        .iter()
        .find(|row| row[0].as_str() == Some("bufpool.misses"))
        .unwrap();
    assert!(matches!(misses[1], Value::Int(m) if m > 0), "{misses:?}");
    db.close().unwrap();
}
