//! Durability end to end: close/reopen round trips, WAL replay after an
//! unclean drop, torn-tail tolerance, uncommitted-transaction discard,
//! loud failure on mid-log corruption, and a kill-point sweep proving
//! every log prefix recovers to a committed-prefix state.

use minidb::wal::record::{self, TxnBuilder};
use minidb::{Database, DurabilityConfig, SyncMode, Value};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Fresh scratch directory under the system temp dir, unique per test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("minidb-dur-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cfg_off() -> DurabilityConfig {
    DurabilityConfig {
        sync_mode: SyncMode::Off,
        ..DurabilityConfig::default()
    }
}

fn ids(db: &Arc<Database>, table: &str) -> Vec<i64> {
    let r = db
        .session()
        .query(&format!("SELECT id FROM {table} ORDER BY id"))
        .unwrap();
    r.rows
        .iter()
        .map(|row| match row[0] {
            Value::Int(i) => i,
            ref other => panic!("unexpected id value {other:?}"),
        })
        .collect()
}

#[test]
fn close_and_reopen_round_trips_tables_indexes_and_views() {
    let dir = scratch("roundtrip");
    {
        let (db, report) = Database::open(&dir, cfg_off()).unwrap();
        assert!(!report.snapshot_loaded, "fresh directory has no snapshot");
        let s = db.session();
        s.execute("CREATE TABLE t (id INT, name CHAR(16))").unwrap();
        s.execute("CREATE INDEX ix_t_id ON t(id)").unwrap();
        s.execute("CREATE VIEW low AS SELECT id FROM t WHERE id < 2")
            .unwrap();
        for i in 0..4 {
            s.execute(&format!("INSERT INTO t VALUES ({i}, 'n{i}')"))
                .unwrap();
        }
        s.execute("DELETE FROM t WHERE id = 3").unwrap();
        s.execute("UPDATE t SET name = 'renamed' WHERE id = 0")
            .unwrap();
        db.close().unwrap();
    }
    let (db, report) = Database::open(&dir, cfg_off()).unwrap();
    assert!(report.snapshot_loaded, "clean close leaves a checkpoint");
    assert_eq!(
        report.records_replayed,
        0,
        "a clean close needs no replay: {}",
        report.summary()
    );
    assert_eq!(ids(&db, "t"), vec![0, 1, 2]);
    let s = db.session();
    let r = s.query("SELECT name FROM t WHERE id = 0").unwrap();
    assert_eq!(r.rows, vec![vec![Value::Str("renamed".into())]]);
    let r = s.query("SELECT id FROM low ORDER BY id").unwrap();
    assert_eq!(r.rows.len(), 2, "view survives reopen");
    // The index survived too: an indexed probe still answers.
    let r = s.query("EXPLAIN SELECT name FROM t WHERE id = 1").unwrap();
    assert!(r.rows[0][0].as_str().unwrap().contains("ixscan"), "{r:?}");
    db.close().unwrap();
}

#[test]
fn unclean_drop_replays_committed_transactions_from_the_log() {
    let dir = scratch("replay");
    {
        let (db, _) = Database::open(&dir, cfg_off()).unwrap();
        let s = db.session();
        s.execute("CREATE TABLE t (id INT)").unwrap();
        for i in 0..10 {
            s.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        drop(s);
        // No close(): the only trace of the inserts is the WAL.
    }
    let (db, report) = Database::open(&dir, cfg_off()).unwrap();
    assert!(report.records_replayed > 0, "{}", report.summary());
    assert!(report.txns_applied >= 11, "{}", report.summary());
    assert_eq!(ids(&db, "t"), (0..10).collect::<Vec<_>>());
    assert!(db.wal_stats().replayed > 0, "stats report the replay");
    db.close().unwrap();
}

#[test]
fn checkpoint_truncates_log_and_reopen_skips_replay() {
    let dir = scratch("checkpoint");
    {
        let (db, _) = Database::open(&dir, cfg_off()).unwrap();
        let s = db.session();
        s.execute("CREATE TABLE t (id INT)").unwrap();
        for i in 0..20 {
            s.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        drop(s);
        db.checkpoint().unwrap();
        assert!(db.wal_stats().checkpoints >= 1);
        // Unclean drop after the checkpoint: everything must come from
        // the snapshot.
    }
    let (db, report) = Database::open(&dir, cfg_off()).unwrap();
    assert!(report.snapshot_loaded);
    assert_eq!(
        report.txns_applied,
        0,
        "post-checkpoint log holds no transactions: {}",
        report.summary()
    );
    assert_eq!(ids(&db, "t"), (0..20).collect::<Vec<_>>());
    db.close().unwrap();
}

/// Builds a directory with `n` committed single-insert transactions
/// (plus the CREATE TABLE) in the log, then returns the raw log bytes.
fn build_log_dir(name: &str, n: i64) -> (PathBuf, Vec<u8>) {
    let dir = scratch(name);
    {
        let (db, _) = Database::open(&dir, cfg_off()).unwrap();
        let s = db.session();
        s.execute("CREATE TABLE t (id INT)").unwrap();
        for i in 0..n {
            s.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
    }
    let log = std::fs::read(dir.join("wal.log")).unwrap();
    assert!(log.len() > record::LOG_HEADER_LEN);
    (dir, log)
}

fn write_log(dir: &Path, bytes: &[u8]) {
    std::fs::write(dir.join("wal.log"), bytes).unwrap();
}

#[test]
fn torn_tail_is_tolerated_and_reported() {
    let (dir, mut log) = build_log_dir("torn", 5);
    // A crash mid-append leaves a partial frame: a length prefix with
    // only half its record behind it.
    log.extend_from_slice(&1000u32.to_le_bytes());
    log.extend_from_slice(&[0xAB; 7]);
    write_log(&dir, &log);
    let (db, report) = Database::open(&dir, cfg_off()).unwrap();
    assert!(report.torn_tail, "{}", report.summary());
    assert!(report.bytes_discarded > 0);
    assert_eq!(ids(&db, "t"), (0..5).collect::<Vec<_>>());
    db.close().unwrap();
}

#[test]
fn uncommitted_transaction_is_discarded() {
    let (dir, mut log) = build_log_dir("uncommitted", 3);
    // Append a valid BEGIN + INSERT chunk with no COMMIT — a crash
    // between append and commit marker. Any catalog with built-in types
    // encodes the same bytes.
    let mem = Database::new();
    let chunk = mem.with_catalog(|cat| {
        let mut b = TxnBuilder::new(cat, 999);
        b.insert("t", 77, &vec![Value::Int(77)]).unwrap();
        let (bytes, _) = b.finish();
        // Strip the trailing COMMIT frame: scan its frames and drop the
        // last one.
        let scan = record::scan_records(&bytes);
        let last = scan.payloads.last().unwrap();
        bytes[..bytes.len() - last.len() - 8].to_vec()
    });
    log.extend_from_slice(&chunk);
    write_log(&dir, &log);
    let (db, report) = Database::open(&dir, cfg_off()).unwrap();
    assert!(
        report.records_discarded >= 2,
        "BEGIN and INSERT of the open transaction are discarded: {}",
        report.summary()
    );
    assert_eq!(ids(&db, "t"), vec![0, 1, 2], "row 77 must not appear");
    db.close().unwrap();
}

#[test]
fn mid_log_corruption_fails_the_open_loudly() {
    let (dir, mut log) = build_log_dir("corrupt", 5);
    // Flip one payload byte of the FIRST record — committed data after
    // it is unreachable, which recovery must refuse to paper over.
    let first_payload = record::LOG_HEADER_LEN + 8;
    log[first_payload] ^= 0xFF;
    write_log(&dir, &log);
    let msg = match Database::open(&dir, cfg_off()) {
        Ok(_) => panic!("corrupt mid-log record must fail the open"),
        Err(e) => format!("{e}"),
    };
    assert!(msg.contains("corrupt"), "unexpected error: {msg}");
}

#[test]
fn every_log_prefix_recovers_to_a_committed_prefix() {
    let n = 6i64;
    let (_dir, log) = build_log_dir("sweep", n);
    let region_len = log.len() - record::LOG_HEADER_LEN;
    let sweep_dir = scratch("sweep-cut");
    let mut seen_full = false;
    for cut in 0..=region_len {
        let _ = std::fs::remove_dir_all(&sweep_dir);
        std::fs::create_dir_all(&sweep_dir).unwrap();
        write_log(&sweep_dir, &log[..record::LOG_HEADER_LEN + cut]);
        let (db, report) = Database::open(&sweep_dir, cfg_off())
            .unwrap_or_else(|e| panic!("cut at {cut}/{region_len} bytes failed: {e}"));
        // Before the CREATE TABLE commits there is no table at all.
        let s = db.session();
        match s.query("SELECT id FROM t ORDER BY id") {
            Ok(r) => {
                let got: Vec<i64> = r
                    .rows
                    .iter()
                    .map(|row| match row[0] {
                        Value::Int(i) => i,
                        ref v => panic!("{v:?}"),
                    })
                    .collect();
                let k = got.len() as i64;
                assert_eq!(
                    got,
                    (0..k).collect::<Vec<_>>(),
                    "cut {cut}: state must be a committed prefix ({})",
                    report.summary()
                );
                if k == n {
                    seen_full = true;
                }
            }
            Err(_) => assert_eq!(
                report.txns_applied, 0,
                "cut {cut}: missing table implies no applied transactions"
            ),
        }
        drop(s);
        db.close().unwrap();
    }
    assert!(seen_full, "the untruncated log recovers every row");
}

#[test]
fn show_stats_reports_wal_counters() {
    let dir = scratch("stats");
    let (db, _) = Database::open(&dir, cfg_off()).unwrap();
    let s = db.session();
    s.execute("CREATE TABLE t (id INT)").unwrap();
    s.execute("INSERT INTO t VALUES (1)").unwrap();
    let r = s.query("SHOW STATS").unwrap();
    let metrics: Vec<&str> = r.rows.iter().map(|row| row[0].as_str().unwrap()).collect();
    for name in [
        "wal.appends",
        "wal.bytes",
        "wal.commits",
        "wal.fsyncs",
        "wal.group_commit_batch",
        "wal.replayed",
        "wal.checkpoints",
        "wal.recovery_micros",
    ] {
        assert!(metrics.contains(&name), "SHOW STATS missing {name}");
    }
    let appends = r
        .rows
        .iter()
        .find(|row| row[0].as_str().unwrap() == "wal.appends")
        .map(|row| row[1].clone())
        .unwrap();
    assert!(
        matches!(appends, Value::Int(i) if i > 0),
        "DML appended records: {appends:?}"
    );
    drop(s);
    db.close().unwrap();
}

#[test]
fn every_commit_mode_survives_unclean_drop_too() {
    let dir = scratch("everycommit");
    {
        let (db, _) = Database::open(&dir, DurabilityConfig::default()).unwrap();
        let s = db.session();
        s.execute("CREATE TABLE t (id INT)").unwrap();
        s.execute("INSERT INTO t VALUES (42)").unwrap();
        let w = db.wal_stats();
        assert!(w.fsyncs > 0, "every-commit fsyncs before acking: {w:?}");
    }
    let (db, _) = Database::open(&dir, DurabilityConfig::default()).unwrap();
    assert_eq!(ids(&db, "t"), vec![42]);
    db.close().unwrap();
}
