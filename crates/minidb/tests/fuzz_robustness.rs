//! Robustness: random and adversarial inputs must produce errors, never
//! panics, and DML failures must not corrupt table state.

use minidb::Database;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary ASCII soup: the lexer/parser must reject or accept, but
    /// never panic.
    #[test]
    fn parser_never_panics_on_ascii_soup(input in "[ -~]{0,120}") {
        let _ = minidb::sql::parse_statement(&input);
        let _ = minidb::sql::parse_expression(&input);
    }

    /// SQL-shaped fragments: keywords, idents and punctuation glued
    /// randomly, biased toward statement starts.
    #[test]
    fn parser_never_panics_on_sql_shaped_soup(
        pieces in proptest::collection::vec(
            proptest::sample::select(vec![
                "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "OFFSET",
                "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "CREATE", "TABLE",
                "UNION", "ALL", "CASE", "WHEN", "THEN", "ELSE", "END", "LIKE", "NOT",
                "AND", "OR", "NULL", "BETWEEN", "IN", "IS", "AS", "JOIN", "ON",
                "t", "x", "a.b", "*", "(", ")", ",", "=", "<", ">", "+", "-", "/",
                "'str'", "42", "4.5", "::", ":p", ";",
            ]),
            0..25,
        )
    ) {
        let sql = pieces.join(" ");
        let _ = minidb::sql::parse_statement(&sql);
    }

    /// Executing random well-formed-ish statements against a live
    /// database returns Ok or Err, never panics.
    #[test]
    fn session_never_panics(
        tail in "[a-z0-9_ ,()'=<>*.]{0,60}",
        head in proptest::sample::select(vec![
            "SELECT ", "INSERT INTO t VALUES (", "UPDATE t SET a = ", "DELETE FROM t WHERE ",
            "CREATE TABLE u (", "EXPLAIN SELECT ",
        ]),
    ) {
        let db = Database::new();
        let s = db.session();
        s.execute("CREATE TABLE t (a INT, b CHAR(10))").unwrap();
        s.execute("INSERT INTO t VALUES (1, 'x')").unwrap();
        let _ = s.execute(&format!("{head}{tail}"));
    }
}

#[test]
fn failed_multi_row_insert_is_not_partially_applied_per_statement_snapshot() {
    // A mid-statement evaluation error surfaces as Err; the rows evaluated
    // before the failure are not inserted because evaluation happens
    // before any insertion.
    let db = Database::new();
    let s = db.session();
    s.execute("CREATE TABLE t (a INT)").unwrap();
    let err = s.execute("INSERT INTO t VALUES (1), (1 / 0), (3)");
    assert!(err.is_err());
    let r = s.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(
        r.rows[0][0].as_int(),
        Some(0),
        "statement is all-or-nothing"
    );
}

#[test]
fn runtime_error_in_where_does_not_poison_the_table() {
    let db = Database::new();
    let s = db.session();
    s.execute("CREATE TABLE t (a INT)").unwrap();
    s.execute("INSERT INTO t VALUES (0), (1), (2)").unwrap();
    assert!(s.query("SELECT a FROM t WHERE 10 / a > 1").is_err());
    // The table is still fully usable.
    let r = s.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(3));
}

#[test]
fn expression_nesting_is_depth_limited() {
    let nested = |n: usize| {
        let mut sql = String::from("SELECT ");
        sql.extend(std::iter::repeat_n('(', n));
        sql.push('1');
        sql.extend(std::iter::repeat_n(')', n));
        sql
    };
    let db = Database::new();
    let s = db.session();
    // Reasonable nesting works…
    let r = s.query(&nested(40)).unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(1));
    // …adversarial nesting errors cleanly instead of blowing the stack.
    let err = s.query(&nested(5000)).unwrap_err();
    assert!(err.to_string().contains("depth"), "{err}");
}
