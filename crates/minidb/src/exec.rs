//! Plan execution: Volcano-style operators over storage snapshots.

use crate::catalog::ExecCtx;
use crate::error::{DbError, DbResult};
use crate::obs::{AccessPath, OpProfile};
use crate::pin::TableSource;
use crate::plan::Plan;
use crate::value::{GroupKey, Row, Value};
use std::collections::HashMap;
use std::time::Instant;

/// A pull-based row stream.
pub trait RowStream {
    /// Produces the next row, `None` at end of stream.
    fn next_row(&mut self) -> DbResult<Option<Row>>;
}

/// Executes a plan to completion, materializing all result rows.
pub fn execute(plan: &Plan, src: &dyn TableSource, ctx: &ExecCtx) -> DbResult<Vec<Row>> {
    execute_with(plan, src, ctx, None)
}

/// [`execute`] with an optional operator profile collecting runtime
/// statistics (see [`OpProfile`]); the profile must have been built from
/// this same plan.
pub fn execute_with(
    plan: &Plan,
    src: &dyn TableSource,
    ctx: &ExecCtx,
    prof: Option<&OpProfile>,
) -> DbResult<Vec<Row>> {
    drain(open_with(plan, src, ctx, prof)?)
}

/// Pulls a stream to exhaustion.
fn drain(mut stream: Box<dyn RowStream + '_>) -> DbResult<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(row) = stream.next_row()? {
        out.push(row);
    }
    Ok(out)
}

/// Opens a plan into a row stream. Scans snapshot their table at open
/// time, so DML against the same table during iteration cannot corrupt
/// the stream.
pub fn open<'a>(
    plan: &'a Plan,
    src: &dyn TableSource,
    ctx: &'a ExecCtx,
) -> DbResult<Box<dyn RowStream + 'a>> {
    open_with(plan, src, ctx, None)
}

/// [`open`] with an optional operator profile. Scan nodes record their
/// access path and rows touched into the matching profile node; when the
/// profile is timed (`EXPLAIN ANALYZE`), every operator stream is
/// additionally wrapped to count `next_row` calls, rows produced, and
/// inclusive wall time.
pub fn open_with<'a>(
    plan: &'a Plan,
    src: &dyn TableSource,
    ctx: &'a ExecCtx,
    prof: Option<&'a OpProfile>,
) -> DbResult<Box<dyn RowStream + 'a>> {
    // Open-time work (scan materialization, hash build, aggregation) is
    // charged to this node; child opens record their own share, keeping
    // all reported times inclusive.
    let t0 = match prof {
        Some(p) if p.is_timed() => Some(Instant::now()),
        _ => None,
    };
    let stream: Box<dyn RowStream + 'a> = match plan {
        Plan::Nothing => Box::new(Once { done: false }),
        Plan::Scan {
            table,
            index_eq,
            index_overlap,
            index_range,
            filter,
            ..
        } => {
            let t = src.table(table)?;
            let fetch = |rowids: Vec<usize>| -> Vec<Row> {
                let mut rows = Vec::new();
                for rowid in rowids {
                    if let Some(r) = t.get(rowid) {
                        rows.push(r.clone());
                    }
                }
                rows
            };
            let full_scan = || -> Vec<Row> { t.scan().into_iter().map(|(_, r)| r).collect() };
            // Probe keys may be deferred parameters whose value is only
            // known now; when the runtime value can't drive the planned
            // probe, fall back. The access path recorded is the one
            // actually taken, not the one planned.
            let (rows, path): (Vec<Row>, AccessPath) = if let Some((col, key_expr)) = index_eq {
                let key = key_expr.eval(ctx, &[])?;
                if key.is_null() {
                    // The eq conjunct was consumed by the probe and
                    // `col = NULL` is never TRUE: a NULL key matches
                    // nothing.
                    (Vec::new(), AccessPath::IndexEq)
                } else {
                    let ix = t.index_on(*col).ok_or_else(|| {
                        DbError::exec(format!("planned index on {table}.{col} vanished"))
                    })?;
                    (fetch(ix.lookup_eq(&key)), AccessPath::IndexEq)
                }
            } else if let Some(rng) = index_range {
                let lo = match &rng.lo {
                    Some((e, inc)) => Some((e.eval(ctx, &[])?, *inc)),
                    None => None,
                };
                let hi = match &rng.hi {
                    Some((e, inc)) => Some((e.eval(ctx, &[])?, *inc)),
                    None => None,
                };
                let null_bound = lo.as_ref().map(|(v, _)| v.is_null()).unwrap_or(false)
                    || hi.as_ref().map(|(v, _)| v.is_null()).unwrap_or(false);
                if null_bound {
                    // A NULL bound can't order against keys; the range
                    // conjuncts stay in the filter as a recheck, so a
                    // full scan is still exact.
                    (full_scan(), AccessPath::FullScan)
                } else {
                    let ix = t.index_on(rng.column).ok_or_else(|| {
                        DbError::exec(format!("planned index on {table}.{} vanished", rng.column))
                    })?;
                    let hits = ix.lookup_range(
                        lo.as_ref().map(|(v, i)| (v, *i)),
                        hi.as_ref().map(|(v, i)| (v, *i)),
                    );
                    (fetch(hits), AccessPath::IndexRange)
                }
            } else if let Some((col, probe_expr)) = index_overlap {
                let probe = probe_expr.eval(ctx, &[])?;
                if probe.as_udt().is_none() {
                    // A NULL (or otherwise non-UDT) probe can't be
                    // bucketed; the overlaps conjunct stays in the
                    // filter, so a full scan is still exact.
                    (full_scan(), AccessPath::FullScan)
                } else {
                    let ix = t.interval_index_on(*col).ok_or_else(|| {
                        DbError::exec(format!("planned interval index on {table}.{col} vanished"))
                    })?;
                    (
                        fetch(ix.lookup_overlaps_value(&probe)),
                        AccessPath::IndexOverlap,
                    )
                }
            } else {
                (full_scan(), AccessPath::FullScan)
            };
            if let Some(p) = prof {
                p.record_scan(path, rows.len() as u64);
            }
            Box::new(Scan {
                rows: rows.into_iter(),
                filter,
                ctx,
            })
        }
        Plan::Filter { input, pred } => {
            let inner = open_with(input, src, ctx, prof.map(|p| p.child(0)))?;
            Box::new(Filter {
                input: inner,
                pred,
                ctx,
            })
        }
        Plan::Project { input, exprs } => {
            let inner = open_with(input, src, ctx, prof.map(|p| p.child(0)))?;
            Box::new(Project {
                input: inner,
                exprs,
                ctx,
            })
        }
        Plan::NlJoin {
            left,
            right,
            filter,
        } => {
            // Materialize the right side once; stream the left.
            let right_rows = drain(open_with(right, src, ctx, prof.map(|p| p.child(1)))?)?;
            let inner = open_with(left, src, ctx, prof.map(|p| p.child(0)))?;
            Box::new(NlJoin {
                left: inner,
                right_rows,
                filter,
                ctx,
                cur_left: None,
                right_pos: 0,
            })
        }
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            filter,
        } => {
            // Build on the right, probe with the left.
            let mut table: HashMap<GroupKey, Vec<Row>> = HashMap::new();
            for row in drain(open_with(right, src, ctx, prof.map(|p| p.child(1)))?)? {
                let mut key = Vec::with_capacity(right_keys.len());
                let mut has_null = false;
                for k in right_keys {
                    let v = k.eval(ctx, &row)?;
                    has_null |= v.is_null();
                    key.push(v);
                }
                if has_null {
                    continue; // NULL never matches an equi-join key
                }
                table.entry(GroupKey(key)).or_default().push(row);
            }
            let inner = open_with(left, src, ctx, prof.map(|p| p.child(0)))?;
            Box::new(HashJoin {
                left: inner,
                table,
                left_keys,
                filter,
                ctx,
                cur_left: None,
                matches: Vec::new(),
                match_pos: 0,
            })
        }
        Plan::Aggregate { input, keys, aggs } => {
            let rows = drain(open_with(input, src, ctx, prof.map(|p| p.child(0)))?)?;
            type GroupState = (
                Vec<Box<dyn crate::catalog::AggregateState>>,
                Vec<Option<std::collections::HashSet<GroupKey>>>,
            );
            let mut groups: HashMap<GroupKey, GroupState> = HashMap::new();
            let mut order: Vec<GroupKey> = Vec::new();
            let fresh = || -> GroupState {
                (
                    aggs.iter().map(|a| (a.factory)()).collect(),
                    aggs.iter()
                        .map(|a| a.distinct.then(std::collections::HashSet::new))
                        .collect(),
                )
            };
            for row in &rows {
                let mut kv = Vec::with_capacity(keys.len());
                for k in keys {
                    kv.push(k.eval(ctx, row)?);
                }
                let gk = GroupKey(kv);
                let (states, seen) = match groups.get_mut(&gk) {
                    Some(s) => s,
                    None => {
                        order.push(gk.clone());
                        groups.entry(gk.clone()).or_insert_with(fresh)
                    }
                };
                for ((spec, st), dedup) in aggs.iter().zip(states.iter_mut()).zip(seen) {
                    let v = spec.arg.eval(ctx, row)?;
                    if v.is_null() {
                        continue; // SQL: aggregates skip NULLs
                    }
                    if let Some(seen_vals) = dedup {
                        if !seen_vals.insert(GroupKey(vec![v.clone()])) {
                            continue; // DISTINCT: already counted
                        }
                    }
                    st.step(ctx, &v)?;
                }
            }
            // Global aggregate over an empty input still yields one row.
            if keys.is_empty() && order.is_empty() {
                let gk = GroupKey(Vec::new());
                order.push(gk.clone());
                groups.insert(gk, fresh());
            }
            let mut out = Vec::with_capacity(order.len());
            for gk in order {
                let (states, _) = groups.remove(&gk).expect("group present");
                let mut row = gk.0;
                for st in states {
                    row.push(st.finish(ctx)?);
                }
                out.push(row);
            }
            Box::new(Materialized {
                rows: out.into_iter(),
            })
        }
        Plan::Distinct { input, visible } => {
            let rows = drain(open_with(input, src, ctx, prof.map(|p| p.child(0)))?)?;
            let mut seen: HashMap<GroupKey, ()> = HashMap::with_capacity(rows.len());
            let mut out = Vec::new();
            for row in rows {
                let key = GroupKey(row[..*visible].to_vec());
                if seen.insert(key, ()).is_none() {
                    out.push(row);
                }
            }
            Box::new(Materialized {
                rows: out.into_iter(),
            })
        }
        Plan::Sort { input, keys } => {
            let mut rows = drain(open_with(input, src, ctx, prof.map(|p| p.child(0)))?)?;
            rows.sort_by(|a, b| {
                for (i, desc) in keys {
                    let ord = a[*i].cmp_ordering(&b[*i]);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Box::new(Materialized {
                rows: rows.into_iter(),
            })
        }
        Plan::Take { input, keep } => {
            let inner = open_with(input, src, ctx, prof.map(|p| p.child(0)))?;
            Box::new(Take {
                input: inner,
                keep: *keep,
            })
        }
        Plan::Limit { input, n } => {
            let inner = open_with(input, src, ctx, prof.map(|p| p.child(0)))?;
            Box::new(Limit {
                input: inner,
                remaining: *n,
            })
        }
        Plan::Offset { input, n } => {
            let inner = open_with(input, src, ctx, prof.map(|p| p.child(0)))?;
            Box::new(Offset {
                input: inner,
                to_skip: *n,
            })
        }
        Plan::Union { inputs } => {
            let mut streams = Vec::with_capacity(inputs.len());
            for (i, arm) in inputs.iter().enumerate() {
                streams.push(open_with(arm, src, ctx, prof.map(|p| p.child(i)))?);
            }
            Box::new(Chain {
                streams,
                current: 0,
            })
        }
    };
    Ok(match (prof, t0) {
        (Some(p), Some(t0)) => {
            p.record_open_nanos(t0.elapsed().as_nanos() as u64);
            Box::new(Instrumented {
                inner: stream,
                prof: p,
            })
        }
        _ => stream,
    })
}

/// Timing wrapper around an operator stream; only used when the profile
/// is timed, so ordinary queries never pay per-row clock reads.
struct Instrumented<'a> {
    inner: Box<dyn RowStream + 'a>,
    prof: &'a OpProfile,
}
impl RowStream for Instrumented<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        let t0 = Instant::now();
        let r = self.inner.next_row();
        let produced = matches!(&r, Ok(Some(_)));
        self.prof
            .record_call(produced, t0.elapsed().as_nanos() as u64);
        r
    }
}

// ----- operator implementations --------------------------------------------

struct Once {
    done: bool,
}
impl RowStream for Once {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        if self.done {
            Ok(None)
        } else {
            self.done = true;
            Ok(Some(Vec::new()))
        }
    }
}

struct Materialized {
    rows: std::vec::IntoIter<Row>,
}
impl RowStream for Materialized {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        Ok(self.rows.next())
    }
}

struct Scan<'a> {
    rows: std::vec::IntoIter<Row>,
    filter: &'a Option<crate::binder::BoundExpr>,
    ctx: &'a ExecCtx,
}
impl RowStream for Scan<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        for row in self.rows.by_ref() {
            match self.filter {
                Some(pred) => {
                    if pred.eval(self.ctx, &row)?.as_bool() == Some(true) {
                        return Ok(Some(row));
                    }
                }
                None => return Ok(Some(row)),
            }
        }
        Ok(None)
    }
}

struct Filter<'a> {
    input: Box<dyn RowStream + 'a>,
    pred: &'a crate::binder::BoundExpr,
    ctx: &'a ExecCtx,
}
impl RowStream for Filter<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        while let Some(row) = self.input.next_row()? {
            if self.pred.eval(self.ctx, &row)?.as_bool() == Some(true) {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

struct Project<'a> {
    input: Box<dyn RowStream + 'a>,
    exprs: &'a [crate::binder::BoundExpr],
    ctx: &'a ExecCtx,
}
impl RowStream for Project<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        match self.input.next_row()? {
            Some(row) => {
                let mut out = Vec::with_capacity(self.exprs.len());
                for e in self.exprs {
                    out.push(e.eval(self.ctx, &row)?);
                }
                Ok(Some(out))
            }
            None => Ok(None),
        }
    }
}

struct NlJoin<'a> {
    left: Box<dyn RowStream + 'a>,
    right_rows: Vec<Row>,
    filter: &'a Option<crate::binder::BoundExpr>,
    ctx: &'a ExecCtx,
    cur_left: Option<Row>,
    right_pos: usize,
}
impl RowStream for NlJoin<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        loop {
            if self.cur_left.is_none() {
                self.cur_left = self.left.next_row()?;
                self.right_pos = 0;
                if self.cur_left.is_none() {
                    return Ok(None);
                }
            }
            let l = self.cur_left.as_ref().expect("set above");
            while self.right_pos < self.right_rows.len() {
                let r = &self.right_rows[self.right_pos];
                self.right_pos += 1;
                let mut joined = Vec::with_capacity(l.len() + r.len());
                joined.extend_from_slice(l);
                joined.extend_from_slice(r);
                match self.filter {
                    Some(pred) => {
                        if pred.eval(self.ctx, &joined)?.as_bool() == Some(true) {
                            return Ok(Some(joined));
                        }
                    }
                    None => return Ok(Some(joined)),
                }
            }
            self.cur_left = None;
        }
    }
}

struct HashJoin<'a> {
    left: Box<dyn RowStream + 'a>,
    table: HashMap<GroupKey, Vec<Row>>,
    left_keys: &'a [crate::binder::BoundExpr],
    filter: &'a Option<crate::binder::BoundExpr>,
    ctx: &'a ExecCtx,
    cur_left: Option<Row>,
    matches: Vec<Row>,
    match_pos: usize,
}
impl RowStream for HashJoin<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        loop {
            if self.cur_left.is_none() {
                let Some(l) = self.left.next_row()? else {
                    return Ok(None);
                };
                let mut key = Vec::with_capacity(self.left_keys.len());
                let mut has_null = false;
                for k in self.left_keys {
                    let v = k.eval(self.ctx, &l)?;
                    has_null |= v.is_null();
                    key.push(v);
                }
                self.matches = if has_null {
                    Vec::new()
                } else {
                    self.table.get(&GroupKey(key)).cloned().unwrap_or_default()
                };
                self.match_pos = 0;
                self.cur_left = Some(l);
            }
            let l = self.cur_left.as_ref().expect("set above");
            while self.match_pos < self.matches.len() {
                let r = &self.matches[self.match_pos];
                self.match_pos += 1;
                let mut joined = Vec::with_capacity(l.len() + r.len());
                joined.extend_from_slice(l);
                joined.extend_from_slice(r);
                match self.filter {
                    Some(pred) => {
                        if pred.eval(self.ctx, &joined)?.as_bool() == Some(true) {
                            return Ok(Some(joined));
                        }
                    }
                    None => return Ok(Some(joined)),
                }
            }
            self.cur_left = None;
        }
    }
}

struct Take<'a> {
    input: Box<dyn RowStream + 'a>,
    keep: usize,
}
impl RowStream for Take<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        match self.input.next_row()? {
            Some(mut row) => {
                row.truncate(self.keep);
                Ok(Some(row))
            }
            None => Ok(None),
        }
    }
}

struct Limit<'a> {
    input: Box<dyn RowStream + 'a>,
    remaining: u64,
}
impl RowStream for Limit<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next_row()? {
            Some(row) => {
                self.remaining -= 1;
                Ok(Some(row))
            }
            None => Ok(None),
        }
    }
}

struct Offset<'a> {
    input: Box<dyn RowStream + 'a>,
    to_skip: u64,
}
impl RowStream for Offset<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        while self.to_skip > 0 {
            if self.input.next_row()?.is_none() {
                return Ok(None);
            }
            self.to_skip -= 1;
        }
        self.input.next_row()
    }
}

struct Chain<'a> {
    streams: Vec<Box<dyn RowStream + 'a>>,
    current: usize,
}
impl RowStream for Chain<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        while self.current < self.streams.len() {
            if let Some(row) = self.streams[self.current].next_row()? {
                return Ok(Some(row));
            }
            self.current += 1;
        }
        Ok(None)
    }
}

// Unused import guard: Value is used in doc positions and tests.
#[allow(unused)]
fn _type_check(_: Value) {}
