//! Query planning: lowering parsed statements into executable plans.
//!
//! The planner performs classic rule-based optimization:
//!
//! * **conjunct splitting and predicate pushdown** — single-table WHERE
//!   conjuncts become scan filters;
//! * **hash-join detection** — equality conjuncts across the join frontier
//!   become hash-join keys, everything else stays a join filter;
//! * **index selection** — a pushed-down `col = constant` conjunct over an
//!   indexed column turns the scan into an index lookup;
//! * **constant folding** — column-free expressions are pre-evaluated,
//!   *except* now-dependent ones (anything touching `NOW` must be
//!   evaluated at statement time; folding it into a prepared plan would
//!   change its meaning as time advances).

use crate::binder::{normalize_expr, Binder, BoundExpr, BoundKind, Scope, ScopeCol};
use crate::catalog::{AggregateState, Catalog, ExecCtx};
use crate::error::{DbError, DbResult};
use crate::pin::TableSource;
use crate::sql::ast::{Expr, OrderItem, SelectItem, SelectStmt};
use crate::types::DataType;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// One aggregate computation within an [`Plan::Aggregate`] node.
pub struct AggSpec {
    /// Argument expression over the aggregate input row.
    pub arg: BoundExpr,
    /// Fresh-state factory from the catalog.
    pub factory: Arc<dyn Fn() -> Box<dyn AggregateState> + Send + Sync>,
    /// Result type.
    pub ret: DataType,
    /// `agg(DISTINCT x)`: feed each distinct argument value once.
    pub distinct: bool,
}

/// An executable (physical) plan node.
pub enum Plan {
    /// Produces exactly one zero-width row (`SELECT` without `FROM`).
    Nothing,
    /// Table scan with pushed-down filter; `index_eq` switches to an
    /// index-equality lookup, `index_overlap` to an interval-index probe
    /// (the probe value's bounds select candidate rows; the filter
    /// rechecks the exact predicate).
    Scan {
        table: String,
        index_eq: Option<(usize, BoundExpr)>,
        index_overlap: Option<(usize, BoundExpr)>,
        /// Range probe; the originating conjuncts stay in `filter` as a
        /// recheck. Boxed to keep the `Plan` enum small.
        index_range: Option<Box<IndexRange>>,
        filter: Option<BoundExpr>,
        /// When set, only these table columns (by original index, in this
        /// order) are materialized; `arity` is then `project.len()` and
        /// `filter` is expressed over the narrowed row. Index probe
        /// columns stay table-relative (they address the index, not the
        /// materialized row). `None` materializes every column.
        project: Option<Vec<usize>>,
        arity: usize,
    },
    /// Hash join on equality keys plus an optional residual filter over
    /// the concatenated row.
    HashJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        left_keys: Vec<BoundExpr>,
        right_keys: Vec<BoundExpr>,
        filter: Option<BoundExpr>,
    },
    /// Nested-loop join with an optional predicate over the concatenated
    /// row (cross product when `filter` is `None`).
    NlJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        filter: Option<BoundExpr>,
    },
    /// Residual row filter.
    Filter { input: Box<Plan>, pred: BoundExpr },
    /// Hash aggregation; output row is `keys ++ aggregate results`. With
    /// no keys, a single global group is produced even on empty input.
    Aggregate {
        input: Box<Plan>,
        keys: Vec<BoundExpr>,
        aggs: Vec<AggSpec>,
    },
    /// Projection.
    Project {
        input: Box<Plan>,
        exprs: Vec<BoundExpr>,
    },
    /// Duplicate elimination over the first `visible` columns.
    Distinct { input: Box<Plan>, visible: usize },
    /// Sort by `(column index, descending)` keys.
    Sort {
        input: Box<Plan>,
        keys: Vec<(usize, bool)>,
    },
    /// Keeps only the first `keep` columns (drops hidden sort columns).
    Take { input: Box<Plan>, keep: usize },
    /// Row-count limit.
    Limit { input: Box<Plan>, n: u64 },
    /// Skips the first `n` rows.
    Offset { input: Box<Plan>, n: u64 },
    /// Bag union of arms with identical arity (UNION ALL; a `Distinct`
    /// on top implements plain UNION).
    Union { inputs: Vec<Plan> },
}

impl Plan {
    /// Output arity of the node.
    pub fn arity(&self) -> usize {
        match self {
            Plan::Nothing => 0,
            Plan::Scan { arity, .. } => *arity,
            Plan::HashJoin { left, right, .. } | Plan::NlJoin { left, right, .. } => {
                left.arity() + right.arity()
            }
            Plan::Filter { input, .. }
            | Plan::Distinct { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Offset { input, .. } => input.arity(),
            Plan::Union { inputs } => inputs.first().map_or(0, Plan::arity),
            Plan::Aggregate { keys, aggs, .. } => keys.len() + aggs.len(),
            Plan::Project { exprs, .. } => exprs.len(),
            Plan::Take { keep, .. } => *keep,
        }
    }

    /// The label of this node alone, without children — the same tokens
    /// [`Plan::describe`] uses (`ixscan(t)[f]`, `hashjoin`, …). EXPLAIN
    /// ANALYZE labels its per-operator stat lines with this.
    pub fn node_label(&self) -> String {
        match self {
            Plan::Nothing => "nothing".into(),
            Plan::Scan {
                table,
                index_eq,
                index_overlap,
                index_range,
                filter,
                ..
            } => {
                let mut s = if index_eq.is_some() {
                    format!("ixscan({table})")
                } else if index_overlap.is_some() {
                    format!("ivscan({table})")
                } else if index_range.is_some() {
                    format!("irscan({table})")
                } else {
                    format!("scan({table})")
                };
                if filter.is_some() {
                    s.push_str("[f]");
                }
                s
            }
            Plan::HashJoin { .. } => "hashjoin".into(),
            Plan::NlJoin { .. } => "nljoin".into(),
            Plan::Filter { .. } => "filter".into(),
            Plan::Aggregate { .. } => "agg".into(),
            Plan::Project { .. } => "project".into(),
            Plan::Distinct { .. } => "distinct".into(),
            Plan::Sort { .. } => "sort".into(),
            Plan::Take { .. } => "take".into(),
            Plan::Limit { .. } => "limit".into(),
            Plan::Offset { .. } => "offset".into(),
            Plan::Union { .. } => "union".into(),
        }
    }

    /// A compact single-line description of the plan shape, for tests and
    /// EXPLAIN-style diagnostics (e.g.
    /// `"limit(sort(project(hashjoin(scan(t),scan(u)))))"`).
    pub fn describe(&self) -> String {
        match self {
            Plan::Nothing => "nothing".into(),
            Plan::Scan {
                table,
                index_eq,
                index_overlap,
                index_range,
                filter,
                ..
            } => {
                let mut s = if index_eq.is_some() {
                    format!("ixscan({table})")
                } else if index_overlap.is_some() {
                    format!("ivscan({table})")
                } else if index_range.is_some() {
                    format!("irscan({table})")
                } else {
                    format!("scan({table})")
                };
                if filter.is_some() {
                    s.push_str("[f]");
                }
                s
            }
            Plan::HashJoin { left, right, .. } => {
                format!("hashjoin({},{})", left.describe(), right.describe())
            }
            Plan::NlJoin { left, right, .. } => {
                format!("nljoin({},{})", left.describe(), right.describe())
            }
            Plan::Filter { input, .. } => format!("filter({})", input.describe()),
            Plan::Aggregate { input, .. } => format!("agg({})", input.describe()),
            Plan::Project { input, .. } => format!("project({})", input.describe()),
            Plan::Distinct { input, .. } => format!("distinct({})", input.describe()),
            Plan::Sort { input, .. } => format!("sort({})", input.describe()),
            Plan::Take { input, .. } => format!("take({})", input.describe()),
            Plan::Limit { input, .. } => format!("limit({})", input.describe()),
            Plan::Offset { input, .. } => format!("offset({})", input.describe()),
            Plan::Union { inputs } => {
                let arms: Vec<String> = inputs.iter().map(Plan::describe).collect();
                format!("union({})", arms.join(","))
            }
        }
    }

    /// Whether this node alone (ignoring children) can run on the
    /// vectorized batch path. An expression disqualifies its node when it
    /// applies a routine with no registered batch kernel — typically a
    /// blade/UDT routine — in which case the whole plan takes the row
    /// fallback. Nested-loop join and `Nothing` stay row-only by design.
    pub(crate) fn node_batchable(&self) -> bool {
        fn ok(e: &Option<BoundExpr>) -> bool {
            e.as_ref().is_none_or(BoundExpr::is_batchable)
        }
        match self {
            Plan::Nothing | Plan::NlJoin { .. } => false,
            Plan::Scan { filter, .. } => ok(filter),
            Plan::Filter { pred, .. } => pred.is_batchable(),
            Plan::Project { exprs, .. } => exprs.iter().all(BoundExpr::is_batchable),
            Plan::Aggregate { keys, aggs, .. } => {
                keys.iter().all(BoundExpr::is_batchable)
                    && aggs.iter().all(|a| a.arg.is_batchable())
            }
            // The residual join filter is rechecked row-wise on the
            // joined rows, so only the hash keys must be batchable.
            Plan::HashJoin {
                left_keys,
                right_keys,
                ..
            } => {
                left_keys.iter().all(BoundExpr::is_batchable)
                    && right_keys.iter().all(BoundExpr::is_batchable)
            }
            Plan::Distinct { .. }
            | Plan::Sort { .. }
            | Plan::Take { .. }
            | Plan::Limit { .. }
            | Plan::Offset { .. }
            | Plan::Union { .. } => true,
        }
    }

    /// Whether the entire plan tree can run vectorized. The executor
    /// checks this once per plan; a single non-batchable node anywhere
    /// routes the whole query through the row fallback (no mid-plan
    /// bridging for capability, only for operator shape).
    pub fn batch_capable(&self) -> bool {
        if !self.node_batchable() {
            return false;
        }
        match self {
            Plan::Nothing | Plan::Scan { .. } => true,
            Plan::HashJoin { left, right, .. } | Plan::NlJoin { left, right, .. } => {
                left.batch_capable() && right.batch_capable()
            }
            Plan::Filter { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Project { input, .. }
            | Plan::Distinct { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Take { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Offset { input, .. } => input.batch_capable(),
            Plan::Union { inputs } => inputs.iter().all(Plan::batch_capable),
        }
    }

    /// Projection pushdown: when a `Project` or `Aggregate` sits directly
    /// on a full-width `Scan`, narrow the scan to the columns the parent
    /// (and the scan's own filter) actually read, remapping column
    /// references onto the narrowed row. Conservative on purpose — other
    /// shapes (joins, sorts on hidden columns) keep full rows.
    pub fn pushdown_projections(&mut self) {
        // Recurse first so nested shapes (e.g. Aggregate over Project)
        // are each considered against their own child.
        match self {
            Plan::Nothing | Plan::Scan { .. } => {}
            Plan::HashJoin { left, right, .. } | Plan::NlJoin { left, right, .. } => {
                left.pushdown_projections();
                right.pushdown_projections();
            }
            Plan::Filter { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Project { input, .. }
            | Plan::Distinct { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Take { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Offset { input, .. } => input.pushdown_projections(),
            Plan::Union { inputs } => {
                for p in inputs {
                    p.pushdown_projections();
                }
            }
        }
        match self {
            Plan::Project { input, exprs } => {
                Plan::narrow_scan_under(input, exprs.iter_mut());
            }
            Plan::Aggregate { input, keys, aggs } => {
                let exprs = keys.iter_mut().chain(aggs.iter_mut().map(|a| &mut a.arg));
                Plan::narrow_scan_under(input, exprs);
            }
            _ => {}
        }
    }

    /// If `child` is a full-width scan, restrict it to the columns read
    /// by `parent_exprs` plus its own filter, and remap both.
    fn narrow_scan_under<'e>(
        child: &mut Plan,
        parent_exprs: impl Iterator<Item = &'e mut BoundExpr>,
    ) {
        let Plan::Scan {
            filter,
            project,
            arity,
            ..
        } = child
        else {
            return;
        };
        if project.is_some() {
            return;
        }
        let mut parent_exprs: Vec<&mut BoundExpr> = parent_exprs.collect();
        let mut used = Vec::new();
        for e in &parent_exprs {
            e.collect_columns(&mut used);
        }
        if let Some(f) = filter.as_ref() {
            f.collect_columns(&mut used);
        }
        used.sort_unstable();
        used.dedup();
        if used.len() == *arity {
            return; // every column is read; nothing to narrow
        }
        let map: HashMap<usize, usize> = used.iter().enumerate().map(|(n, &c)| (c, n)).collect();
        for e in parent_exprs.iter_mut() {
            e.remap_columns(&map);
        }
        if let Some(f) = filter.as_mut() {
            f.remap_columns(&map);
        }
        *arity = used.len();
        *project = Some(used);
    }
}

/// A B-tree range probe for a scan.
pub struct IndexRange {
    pub column: usize,
    pub lo: Option<(BoundExpr, bool)>,
    pub hi: Option<(BoundExpr, bool)>,
}

/// A planned SELECT: the plan plus output column metadata.
pub struct PlannedSelect {
    pub plan: Plan,
    pub columns: Vec<(String, DataType)>,
}

/// Splits an AST predicate into its top-level conjuncts.
fn conjuncts(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Binary {
            op: crate::sql::ast::AstBinOp::And,
            lhs,
            rhs,
        } => {
            let mut out = conjuncts(lhs);
            out.extend(conjuncts(rhs));
            out
        }
        other => vec![other.clone()],
    }
}

/// Does the AST expression contain an aggregate call (w.r.t. a catalog)?
fn contains_aggregate(e: &Expr, cat: &Catalog) -> bool {
    match e {
        Expr::Call {
            name, args, star, ..
        } => *star || cat.has_aggregate(name) || args.iter().any(|a| contains_aggregate(a, cat)),
        Expr::Unary { expr, .. } => contains_aggregate(expr, cat),
        Expr::Binary { lhs, rhs, .. } => {
            contains_aggregate(lhs, cat) || contains_aggregate(rhs, cat)
        }
        Expr::IsNull { expr, .. } => contains_aggregate(expr, cat),
        Expr::Between {
            expr, low, high, ..
        } => {
            contains_aggregate(expr, cat)
                || contains_aggregate(low, cat)
                || contains_aggregate(high, cat)
        }
        Expr::InList { expr, list, .. } => {
            contains_aggregate(expr, cat) || list.iter().any(|a| contains_aggregate(a, cat))
        }
        Expr::Cast { expr, .. } => contains_aggregate(expr, cat),
        Expr::Like { expr, pattern, .. } => {
            contains_aggregate(expr, cat) || contains_aggregate(pattern, cat)
        }
        Expr::Case {
            operand,
            branches,
            else_,
        } => {
            operand.as_ref().is_some_and(|o| contains_aggregate(o, cat))
                || branches
                    .iter()
                    .any(|(w, t)| contains_aggregate(w, cat) || contains_aggregate(t, cat))
                || else_.as_ref().is_some_and(|e| contains_aggregate(e, cat))
        }
        _ => false,
    }
}

/// Collects the distinct aggregate calls of an expression, in first-seen
/// order (normalized for deduplication).
fn collect_aggregates(e: &Expr, cat: &Catalog, out: &mut Vec<Expr>) {
    match e {
        Expr::Call {
            name, args, star, ..
        } => {
            if *star || cat.has_aggregate(name) {
                let norm = normalize_expr(e);
                if !out.contains(&norm) {
                    out.push(norm);
                }
            } else {
                for a in args {
                    collect_aggregates(a, cat, out);
                }
            }
        }
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => collect_aggregates(expr, cat, out),
        Expr::Binary { lhs, rhs, .. } => {
            collect_aggregates(lhs, cat, out);
            collect_aggregates(rhs, cat, out);
        }
        Expr::IsNull { expr, .. } => collect_aggregates(expr, cat, out),
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_aggregates(expr, cat, out);
            collect_aggregates(low, cat, out);
            collect_aggregates(high, cat, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_aggregates(expr, cat, out);
            for a in list {
                collect_aggregates(a, cat, out);
            }
        }
        Expr::Like { expr, pattern, .. } => {
            collect_aggregates(expr, cat, out);
            collect_aggregates(pattern, cat, out);
        }
        Expr::Case {
            operand,
            branches,
            else_,
        } => {
            if let Some(o) = operand {
                collect_aggregates(o, cat, out);
            }
            for (w, t) in branches {
                collect_aggregates(w, cat, out);
                collect_aggregates(t, cat, out);
            }
            if let Some(e) = else_ {
                collect_aggregates(e, cat, out);
            }
        }
        _ => {}
    }
}

/// Rewrites an expression for the post-aggregation scope: group-key
/// subexpressions become `#post.k<i>` references, aggregate calls become
/// `#post.a<j>` references; any other column reference is an error the
/// binder will report (it won't resolve in the post scope).
fn subst_post_agg(e: &Expr, group_keys: &[Expr], aggs: &[Expr]) -> Expr {
    let norm = normalize_expr(e);
    if let Some(i) = group_keys.iter().position(|g| *g == norm) {
        return Expr::Column {
            qualifier: Some("#post".into()),
            name: format!("k{i}"),
        };
    }
    if let Some(j) = aggs.iter().position(|a| *a == norm) {
        return Expr::Column {
            qualifier: Some("#post".into()),
            name: format!("a{j}"),
        };
    }
    match e {
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(subst_post_agg(expr, group_keys, aggs)),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(subst_post_agg(lhs, group_keys, aggs)),
            rhs: Box::new(subst_post_agg(rhs, group_keys, aggs)),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(subst_post_agg(expr, group_keys, aggs)),
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(subst_post_agg(expr, group_keys, aggs)),
            low: Box::new(subst_post_agg(low, group_keys, aggs)),
            high: Box::new(subst_post_agg(high, group_keys, aggs)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(subst_post_agg(expr, group_keys, aggs)),
            list: list
                .iter()
                .map(|x| subst_post_agg(x, group_keys, aggs))
                .collect(),
            negated: *negated,
        },
        Expr::Call {
            name,
            args,
            star,
            distinct,
        } => Expr::Call {
            name: name.clone(),
            args: args
                .iter()
                .map(|x| subst_post_agg(x, group_keys, aggs))
                .collect(),
            star: *star,
            distinct: *distinct,
        },
        Expr::Cast { expr, ty } => Expr::Cast {
            expr: Box::new(subst_post_agg(expr, group_keys, aggs)),
            ty: ty.clone(),
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(subst_post_agg(expr, group_keys, aggs)),
            pattern: Box::new(subst_post_agg(pattern, group_keys, aggs)),
            negated: *negated,
        },
        Expr::Case {
            operand,
            branches,
            else_,
        } => Expr::Case {
            operand: operand
                .as_ref()
                .map(|o| Box::new(subst_post_agg(o, group_keys, aggs))),
            branches: branches
                .iter()
                .map(|(w, t)| {
                    (
                        subst_post_agg(w, group_keys, aggs),
                        subst_post_agg(t, group_keys, aggs),
                    )
                })
                .collect(),
            else_: else_
                .as_ref()
                .map(|e| Box::new(subst_post_agg(e, group_keys, aggs))),
        },
        other => other.clone(),
    }
}

/// A display name for an output column without an alias.
fn expr_display_name(e: &Expr) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Call { name, .. } => name.to_ascii_lowercase(),
        Expr::Cast { expr, .. } => expr_display_name(expr),
        _ => "?column?".into(),
    }
}

/// The query planner for one statement.
pub struct Planner<'a> {
    pub catalog: &'a Catalog,
    /// The statement's pinned tables (or any other fixed table set).
    pub tables: &'a dyn TableSource,
    pub binder: Binder<'a>,
    /// Statement context used for constant folding.
    pub ctx: ExecCtx,
    /// Guard against runaway subquery nesting.
    subquery_depth: std::cell::Cell<usize>,
}

/// Maximum subquery nesting depth.
const MAX_SUBQUERY_DEPTH: usize = 16;

impl<'a> Planner<'a> {
    /// Creates a planner.
    pub fn new(
        catalog: &'a Catalog,
        tables: &'a dyn TableSource,
        params: &'a HashMap<String, Value>,
        ctx: ExecCtx,
    ) -> Planner<'a> {
        Planner {
            catalog,
            tables,
            binder: Binder::new(catalog, params),
            ctx,
            subquery_depth: std::cell::Cell::new(0),
        }
    }

    /// Creates a planner that binds `:name` parameters as deferred
    /// [`BoundKind::Param`] slots instead of freezing their values into
    /// the plan. Used when the plan may be cached and re-executed with
    /// fresh parameter values.
    pub fn new_deferred(
        catalog: &'a Catalog,
        tables: &'a dyn TableSource,
        params: &'a HashMap<String, Value>,
        ctx: ExecCtx,
    ) -> Planner<'a> {
        Planner {
            catalog,
            tables,
            binder: Binder::deferred(catalog, params),
            ctx,
            subquery_depth: std::cell::Cell::new(0),
        }
    }

    /// Evaluates one uncorrelated subquery to its rows (single output
    /// column enforced by the callers).
    fn eval_subquery(&self, sub: &SelectStmt) -> DbResult<Vec<crate::value::Row>> {
        if self.subquery_depth.get() >= MAX_SUBQUERY_DEPTH {
            return Err(DbError::binding(format!(
                "subquery nesting exceeds the maximum depth of {MAX_SUBQUERY_DEPTH}"
            )));
        }
        self.subquery_depth.set(self.subquery_depth.get() + 1);
        let result = (|| {
            let planned = self.plan_select(sub)?;
            if planned.columns.len() != 1 {
                return Err(DbError::binding(format!(
                    "subquery must return exactly one column, got {}",
                    planned.columns.len()
                )));
            }
            crate::exec::execute(&planned.plan, self.tables, &self.ctx)
        })();
        self.subquery_depth.set(self.subquery_depth.get() - 1);
        result
    }

    /// Replaces every (uncorrelated) subquery in an expression with its
    /// value: a scalar subquery becomes a [`Expr::BoundValue`]; an
    /// `IN (SELECT …)` becomes an IN-list of bound values (or FALSE when
    /// the subquery is empty). Evaluation uses the statement's own
    /// snapshot and transaction time, so the semantics match inline
    /// evaluation.
    pub fn resolve_subqueries(&self, e: &Expr) -> DbResult<Expr> {
        use crate::sql::ast::Lit;
        Ok(match e {
            Expr::Subquery(sub) => {
                let rows = self.eval_subquery(sub)?;
                match rows.len() {
                    0 => Expr::BoundValue(Value::Null),
                    1 => Expr::BoundValue(rows.into_iter().next().expect("one").remove(0)),
                    n => return Err(DbError::exec(format!("scalar subquery returned {n} rows"))),
                }
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                let lhs = self.resolve_subqueries(expr)?;
                let rows = self.eval_subquery(query)?;
                if rows.is_empty() {
                    // x IN (empty) is FALSE; NOT IN (empty) is TRUE.
                    return Ok(Expr::Literal(Lit::Bool(*negated)));
                }
                let list = rows
                    .into_iter()
                    .map(|mut r| Expr::BoundValue(r.remove(0)))
                    .collect();
                Expr::InList {
                    expr: Box::new(lhs),
                    list,
                    negated: *negated,
                }
            }
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(self.resolve_subqueries(expr)?),
            },
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(self.resolve_subqueries(lhs)?),
                rhs: Box::new(self.resolve_subqueries(rhs)?),
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(self.resolve_subqueries(expr)?),
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(self.resolve_subqueries(expr)?),
                low: Box::new(self.resolve_subqueries(low)?),
                high: Box::new(self.resolve_subqueries(high)?),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(self.resolve_subqueries(expr)?),
                list: list
                    .iter()
                    .map(|x| self.resolve_subqueries(x))
                    .collect::<DbResult<_>>()?,
                negated: *negated,
            },
            Expr::Call {
                name,
                args,
                star,
                distinct,
            } => Expr::Call {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|x| self.resolve_subqueries(x))
                    .collect::<DbResult<_>>()?,
                star: *star,
                distinct: *distinct,
            },
            Expr::Cast { expr, ty } => Expr::Cast {
                expr: Box::new(self.resolve_subqueries(expr)?),
                ty: ty.clone(),
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(self.resolve_subqueries(expr)?),
                pattern: Box::new(self.resolve_subqueries(pattern)?),
                negated: *negated,
            },
            Expr::Case {
                operand,
                branches,
                else_,
            } => Expr::Case {
                operand: match operand {
                    Some(o) => Some(Box::new(self.resolve_subqueries(o)?)),
                    None => None,
                },
                branches: branches
                    .iter()
                    .map(|(w, t)| Ok((self.resolve_subqueries(w)?, self.resolve_subqueries(t)?)))
                    .collect::<DbResult<_>>()?,
                else_: match else_ {
                    Some(x) => Some(Box::new(self.resolve_subqueries(x)?)),
                    None => None,
                },
            },
            other => other.clone(),
        })
    }

    /// Pre-pass over a whole SELECT: replaces subqueries everywhere an
    /// expression can appear.
    fn resolve_stmt_subqueries(&self, stmt: &SelectStmt) -> DbResult<SelectStmt> {
        let mut out = stmt.clone();
        if let Some(w) = &stmt.where_clause {
            out.where_clause = Some(self.resolve_subqueries(w)?);
        }
        if let Some(h) = &stmt.having {
            out.having = Some(self.resolve_subqueries(h)?);
        }
        for item in &mut out.items {
            if let SelectItem::Expr { expr, .. } = item {
                *expr = self.resolve_subqueries(expr)?;
            }
        }
        for g in &mut out.group_by {
            *g = self.resolve_subqueries(g)?;
        }
        for o in &mut out.order_by {
            o.expr = self.resolve_subqueries(&o.expr)?;
        }
        Ok(out)
    }

    /// Binds an expression and constant-folds it when safe.
    pub fn bind_folded(&self, e: &Expr, scope: &Scope) -> DbResult<BoundExpr> {
        let bound = self.binder.bind(e, scope)?;
        Ok(self.fold(bound))
    }

    /// Constant folding: column-free, non-now-dependent expressions are
    /// evaluated once at plan time. Evaluation errors are left in place
    /// so they surface (or not) under correct runtime semantics.
    pub fn fold(&self, e: BoundExpr) -> BoundExpr {
        if matches!(e.kind, BoundKind::Literal(_)) {
            return e;
        }
        if e.is_column_free() && !e.now_dep && !e.contains_param() {
            if let Ok(v) = e.eval(&self.ctx, &[]) {
                return BoundExpr {
                    ty: e.ty,
                    now_dep: false,
                    kind: BoundKind::Literal(v),
                };
            }
        }
        e
    }

    /// Plans a SELECT statement (dispatching UNION chains).
    pub fn plan_select(&self, stmt: &SelectStmt) -> DbResult<PlannedSelect> {
        let mut planned = if stmt.union.is_some() {
            self.plan_union(stmt)?
        } else {
            self.plan_single_select(stmt)?
        };
        planned.plan.pushdown_projections();
        Ok(planned)
    }

    /// Plans a UNION chain: every arm is planned independently, arities
    /// and types must line up, and ORDER BY keys may only reference
    /// output column names or 1-based ordinals.
    fn plan_union(&self, stmt: &SelectStmt) -> DbResult<PlannedSelect> {
        // Materialize the arm list: the head (stripped of chain-level
        // clauses) followed by the chained arms.
        let mut head = stmt.clone();
        let order_by = std::mem::take(&mut head.order_by);
        let limit = head.limit.take();
        let offset = head.offset.take();
        let mut chain = head.union.take();
        let mut arms = vec![head];
        let mut any_distinct_link = false;
        while let Some((all, next)) = chain {
            any_distinct_link |= !all;
            let mut next = *next;
            chain = next.union.take();
            arms.push(next);
        }
        let mut inputs = Vec::with_capacity(arms.len());
        let mut columns: Option<Vec<(String, DataType)>> = None;
        for arm in &arms {
            let planned = self.plan_single_select(arm)?;
            match &mut columns {
                None => columns = Some(planned.columns),
                Some(cols) => {
                    if cols.len() != planned.columns.len() {
                        return Err(DbError::binding(format!(
                            "UNION arms have {} vs {} columns",
                            cols.len(),
                            planned.columns.len()
                        )));
                    }
                    for ((_, a), (i, (_, b))) in
                        cols.iter_mut().zip(planned.columns.iter().enumerate())
                    {
                        if *a == *b || *b == DataType::Null {
                            continue;
                        }
                        if *a == DataType::Null {
                            *a = *b;
                            continue;
                        }
                        return Err(DbError::type_err(format!(
                            "UNION column {} has incompatible types {a} and {b}",
                            i + 1
                        )));
                    }
                }
            }
            inputs.push(planned.plan);
        }
        let columns = columns.expect("at least one arm");
        let mut plan = Plan::Union { inputs };
        if any_distinct_link {
            plan = Plan::Distinct {
                input: Box::new(plan),
                visible: columns.len(),
            };
        }
        if !order_by.is_empty() {
            let mut keys = Vec::with_capacity(order_by.len());
            for item in &order_by {
                let idx = match &item.expr {
                    Expr::Column {
                        qualifier: None,
                        name,
                    } => columns
                        .iter()
                        .position(|(n, _)| n.eq_ignore_ascii_case(name))
                        .ok_or_else(|| {
                            DbError::binding(format!(
                                "ORDER BY column {name} is not in the UNION output"
                            ))
                        })?,
                    Expr::Literal(crate::sql::ast::Lit::Int(k))
                        if *k >= 1 && (*k as usize) <= columns.len() =>
                    {
                        (*k - 1) as usize
                    }
                    _ => {
                        return Err(DbError::binding(
                            "ORDER BY on a UNION must use output names or ordinals",
                        ))
                    }
                };
                keys.push((idx, item.desc));
            }
            plan = Plan::Sort {
                input: Box::new(plan),
                keys,
            };
        }
        if let Some(n) = offset {
            plan = Plan::Offset {
                input: Box::new(plan),
                n,
            };
        }
        if let Some(n) = limit {
            plan = Plan::Limit {
                input: Box::new(plan),
                n,
            };
        }
        Ok(PlannedSelect { plan, columns })
    }

    /// Plans a plain (non-UNION) SELECT.
    fn plan_single_select(&self, stmt: &SelectStmt) -> DbResult<PlannedSelect> {
        let stmt = &self.resolve_stmt_subqueries(stmt)?;
        // ---- FROM scope -----------------------------------------------
        // Each FROM entry is a base table or a view; views are planned
        // (inlined) here and carried as ready subplans.
        let mut view_plans: Vec<Option<Plan>> = Vec::with_capacity(stmt.from.len());
        let mut scope_cols = Vec::new();
        let mut table_ranges: Vec<(String, std::ops::Range<usize>)> = Vec::new();
        for tref in &stmt.from {
            let binding = tref.binding_name().to_ascii_lowercase();
            if table_ranges.iter().any(|(b, _)| *b == binding) {
                return Err(DbError::binding(format!(
                    "duplicate table binding {binding:?}; use aliases"
                )));
            }
            let start = scope_cols.len();
            if let Ok(table) = self.tables.table(&tref.table) {
                for c in &table.schema.columns {
                    scope_cols.push(ScopeCol {
                        binding: Some(binding.clone()),
                        name: c.name.to_ascii_lowercase(),
                        ty: c.ty,
                    });
                }
                view_plans.push(None);
            } else if let Some(view) = self.tables.view(&tref.table) {
                let planned = self.plan_view(&view.body_sql, &tref.table)?;
                for (name, ty) in &planned.columns {
                    scope_cols.push(ScopeCol {
                        binding: Some(binding.clone()),
                        name: name.to_ascii_lowercase(),
                        ty: *ty,
                    });
                }
                view_plans.push(Some(planned.plan));
            } else {
                return Err(DbError::NotFound {
                    kind: "table or view",
                    name: tref.table.clone(),
                });
            }
            table_ranges.push((binding, start..scope_cols.len()));
        }
        let scope = Scope::new(scope_cols);

        // ---- WHERE conjunct classification -----------------------------
        let mut scan_filters: Vec<Vec<Expr>> = vec![Vec::new(); stmt.from.len()];
        let mut join_conjuncts: Vec<(usize, Expr)> = Vec::new(); // (frontier table, conj)
        if let Some(w) = &stmt.where_clause {
            if contains_aggregate(w, self.catalog) {
                return Err(DbError::binding("aggregates are not allowed in WHERE"));
            }
            for conj in conjuncts(w) {
                // Validate and find referenced tables.
                let bound = self.binder.bind(&conj, &scope)?;
                let mut cols = Vec::new();
                bound.collect_columns(&mut cols);
                let tables_hit: Vec<usize> = table_ranges
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, r))| cols.iter().any(|c| r.contains(c)))
                    .map(|(i, _)| i)
                    .collect();
                match tables_hit.len() {
                    0 => {
                        // Column-free predicate: attach to the first scan
                        // (or the overall filter when there is no table).
                        if stmt.from.is_empty() {
                            join_conjuncts.push((0, conj));
                        } else {
                            scan_filters[0].push(conj);
                        }
                    }
                    1 => scan_filters[tables_hit[0]].push(conj),
                    _ => {
                        let frontier = *tables_hit.iter().max().expect("nonempty");
                        join_conjuncts.push((frontier, conj));
                    }
                }
            }
        }

        // ---- build join tree -------------------------------------------
        let mut plan = if stmt.from.is_empty() {
            Plan::Nothing
        } else {
            self.plan_relation(
                &stmt.from[0].table,
                view_plans[0].take(),
                &scan_filters[0],
                &table_ranges[0],
                &scope,
            )?
        };
        for (i, tref) in stmt.from.iter().enumerate().skip(1) {
            let right = self.plan_relation(
                &tref.table,
                view_plans[i].take(),
                &scan_filters[i],
                &table_ranges[i],
                &scope,
            )?;
            // Partition this step's join conjuncts into hash keys and
            // residual filters.
            let mut left_keys = Vec::new();
            let mut right_keys = Vec::new();
            let mut residual: Option<BoundExpr> = None;
            let left_range = 0..table_ranges[i].1.start;
            let right_range = table_ranges[i].1.clone();
            for (frontier, conj) in join_conjuncts.iter().filter(|(f, _)| *f == i) {
                debug_assert_eq!(*frontier, i);
                let mut as_hash_key = false;
                if let Expr::Binary {
                    op: crate::sql::ast::AstBinOp::Eq,
                    lhs,
                    rhs,
                } = conj
                {
                    let bl = self.binder.bind(lhs, &scope)?;
                    let br = self.binder.bind(rhs, &scope)?;
                    let mut lc = Vec::new();
                    let mut rc = Vec::new();
                    bl.collect_columns(&mut lc);
                    br.collect_columns(&mut rc);
                    let l_in_left = lc.iter().all(|c| left_range.contains(c));
                    let l_in_right = lc.iter().all(|c| right_range.contains(c));
                    let r_in_left = rc.iter().all(|c| left_range.contains(c));
                    let r_in_right = rc.iter().all(|c| right_range.contains(c));
                    if l_in_left && r_in_right {
                        left_keys.push(self.fold(bl));
                        right_keys.push(self.rebase(self.fold(br), right_range.start));
                        as_hash_key = true;
                    } else if l_in_right && r_in_left {
                        left_keys.push(self.fold(br));
                        right_keys.push(self.rebase(self.fold(bl), right_range.start));
                        as_hash_key = true;
                    }
                }
                if !as_hash_key {
                    let bound = self.bind_folded(conj, &scope)?;
                    residual = Some(match residual {
                        None => bound,
                        Some(prev) => BoundExpr {
                            ty: DataType::Bool,
                            now_dep: prev.now_dep || bound.now_dep,
                            kind: BoundKind::And(Box::new(prev), Box::new(bound)),
                        },
                    });
                }
            }
            plan = if left_keys.is_empty() {
                Plan::NlJoin {
                    left: Box::new(plan),
                    right: Box::new(right),
                    filter: residual,
                }
            } else {
                Plan::HashJoin {
                    left: Box::new(plan),
                    right: Box::new(right),
                    left_keys,
                    right_keys,
                    filter: residual,
                }
            };
        }
        // Column-free conjuncts from a FROM-less query.
        if stmt.from.is_empty() {
            for (_, conj) in join_conjuncts {
                let pred = self.bind_folded(&conj, &scope)?;
                plan = Plan::Filter {
                    input: Box::new(plan),
                    pred,
                };
            }
        }

        // ---- aggregation ------------------------------------------------
        let has_agg = !stmt.group_by.is_empty()
            || stmt.items.iter().any(|it| match it {
                SelectItem::Expr { expr, .. } => contains_aggregate(expr, self.catalog),
                _ => false,
            })
            || stmt
                .having
                .as_ref()
                .is_some_and(|h| contains_aggregate(h, self.catalog));

        // Expand wildcards into per-column expressions (pre-aggregation
        // scope only).
        let mut item_exprs: Vec<(Expr, String)> = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Wildcard => {
                    if has_agg {
                        return Err(DbError::binding("* is not allowed with GROUP BY"));
                    }
                    for c in &scope.cols {
                        item_exprs.push((
                            Expr::Column {
                                qualifier: c.binding.clone(),
                                name: c.name.clone(),
                            },
                            c.name.clone(),
                        ));
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    if has_agg {
                        return Err(DbError::binding("alias.* is not allowed with GROUP BY"));
                    }
                    let ql = q.to_ascii_lowercase();
                    if !table_ranges.iter().any(|(b, _)| *b == ql) {
                        return Err(DbError::binding(format!("unknown table alias {q}")));
                    }
                    for c in scope
                        .cols
                        .iter()
                        .filter(|c| c.binding.as_deref() == Some(&ql))
                    {
                        item_exprs.push((
                            Expr::Column {
                                qualifier: Some(ql.clone()),
                                name: c.name.clone(),
                            },
                            c.name.clone(),
                        ));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let name = alias.clone().unwrap_or_else(|| expr_display_name(expr));
                    item_exprs.push((expr.clone(), name));
                }
            }
        }

        // ---- bind select items (+ having + order by) --------------------
        let mut bound_items: Vec<BoundExpr>;
        let mut having_bound: Option<BoundExpr> = None;
        // For ORDER BY resolution, remember the (normalized) item exprs.
        let normalized_items: Vec<Expr> =
            item_exprs.iter().map(|(e, _)| normalize_expr(e)).collect();
        let mut order_exprs: Vec<(Expr, bool)> = Vec::new();
        for OrderItem { expr, desc } in &stmt.order_by {
            // Allow ordering by an output alias.
            let resolved = match expr {
                Expr::Column {
                    qualifier: None,
                    name,
                } => item_exprs
                    .iter()
                    .find(|(_, n)| n.eq_ignore_ascii_case(name))
                    .map(|(e, _)| e.clone())
                    .unwrap_or_else(|| expr.clone()),
                other => other.clone(),
            };
            order_exprs.push((resolved, *desc));
        }

        if has_agg {
            // Collect aggregate calls across items, having, order-by.
            let group_norm: Vec<Expr> = stmt.group_by.iter().map(normalize_expr).collect();
            let mut agg_calls: Vec<Expr> = Vec::new();
            for (e, _) in &item_exprs {
                collect_aggregates(e, self.catalog, &mut agg_calls);
            }
            if let Some(h) = &stmt.having {
                collect_aggregates(h, self.catalog, &mut agg_calls);
            }
            for (e, _) in &order_exprs {
                collect_aggregates(e, self.catalog, &mut agg_calls);
            }
            // Bind group keys and aggregate arguments over the input scope.
            let mut key_bound = Vec::new();
            for g in &stmt.group_by {
                key_bound.push(self.bind_folded(g, &scope)?);
            }
            let mut specs = Vec::new();
            let mut post_cols = Vec::new();
            for (i, kb) in key_bound.iter().enumerate() {
                post_cols.push(ScopeCol {
                    binding: Some("#post".into()),
                    name: format!("k{i}"),
                    ty: kb.ty,
                });
            }
            for (j, call) in agg_calls.iter().enumerate() {
                let Expr::Call {
                    name,
                    args,
                    star,
                    distinct,
                } = call
                else {
                    unreachable!()
                };
                let arg_bound = if *star {
                    // COUNT(*): count a constant 1 per row.
                    BoundExpr {
                        ty: DataType::Int,
                        now_dep: false,
                        kind: BoundKind::Literal(Value::Int(1)),
                    }
                } else {
                    if args.len() != 1 {
                        return Err(DbError::binding(format!(
                            "aggregate {name} takes exactly one argument"
                        )));
                    }
                    if contains_aggregate(&args[0], self.catalog) {
                        return Err(DbError::binding("nested aggregates are not allowed"));
                    }
                    self.bind_folded(&args[0], &scope)?
                };
                let ov = self.catalog.resolve_aggregate(name, arg_bound.ty)?;
                let arg = self.binder.coerce(
                    arg_bound,
                    if *star { DataType::Int } else { ov.param },
                    false,
                )?;
                post_cols.push(ScopeCol {
                    binding: Some("#post".into()),
                    name: format!("a{j}"),
                    ty: ov.ret,
                });
                specs.push(AggSpec {
                    arg,
                    factory: ov.factory.clone(),
                    ret: ov.ret,
                    distinct: *distinct,
                });
            }
            let post_scope = Scope::new(post_cols);
            plan = Plan::Aggregate {
                input: Box::new(plan),
                keys: key_bound,
                aggs: specs,
            };
            // HAVING over the post scope.
            if let Some(h) = &stmt.having {
                let subst = subst_post_agg(h, &group_norm, &agg_calls);
                let pred = self.bind_folded(&subst, &post_scope)?;
                if pred.ty != DataType::Bool && pred.ty != DataType::Null {
                    return Err(DbError::type_err("HAVING must be BOOLEAN"));
                }
                having_bound = Some(pred);
            }
            // Items / order keys over the post scope.
            bound_items = Vec::new();
            for (e, _) in &item_exprs {
                let subst = subst_post_agg(e, &group_norm, &agg_calls);
                bound_items.push(self.bind_folded(&subst, &post_scope).map_err(
                    |err| match err {
                        DbError::Binding { message } => DbError::binding(format!(
                            "{message} (expressions outside aggregates must appear in GROUP BY)"
                        )),
                        other => other,
                    },
                )?);
            }
            let mut order_bound = Vec::new();
            for (e, desc) in &order_exprs {
                let subst = subst_post_agg(e, &group_norm, &agg_calls);
                order_bound.push((self.bind_folded(&subst, &post_scope)?, *desc));
            }
            return self.finish_select(
                stmt,
                plan,
                having_bound,
                bound_items,
                item_exprs.iter().map(|(_, n)| n.clone()).collect(),
                normalized_items,
                order_exprs,
                order_bound,
            );
        }

        // Non-aggregating path: bind items and order keys over the scope.
        bound_items = Vec::new();
        for (e, _) in &item_exprs {
            bound_items.push(self.bind_folded(e, &scope)?);
        }
        let mut order_bound = Vec::new();
        for (e, desc) in &order_exprs {
            order_bound.push((self.bind_folded(e, &scope)?, *desc));
        }
        self.finish_select(
            stmt,
            plan,
            having_bound,
            bound_items,
            item_exprs.iter().map(|(_, n)| n.clone()).collect(),
            normalized_items,
            order_exprs,
            order_bound,
        )
    }

    /// Shared tail of SELECT planning: HAVING filter, projection with
    /// hidden order columns, DISTINCT, sort, strip, limit.
    #[allow(clippy::too_many_arguments)]
    fn finish_select(
        &self,
        stmt: &SelectStmt,
        mut plan: Plan,
        having: Option<BoundExpr>,
        bound_items: Vec<BoundExpr>,
        names: Vec<String>,
        normalized_items: Vec<Expr>,
        order_exprs: Vec<(Expr, bool)>,
        order_bound: Vec<(BoundExpr, bool)>,
    ) -> DbResult<PlannedSelect> {
        if let Some(pred) = having {
            plan = Plan::Filter {
                input: Box::new(plan),
                pred,
            };
        }
        let visible = bound_items.len();
        let columns: Vec<(String, DataType)> = names
            .into_iter()
            .zip(bound_items.iter().map(|b| b.ty))
            .collect();
        // Sort keys: reuse a visible column when the order expression
        // matches a select item syntactically; otherwise append hidden.
        let mut proj = bound_items;
        let mut sort_keys = Vec::new();
        for ((e, desc), bound) in order_exprs.iter().zip(order_bound) {
            let norm = normalize_expr(e);
            if let Some(i) = normalized_items.iter().position(|n| *n == norm) {
                sort_keys.push((i, *desc));
            } else {
                if stmt.distinct {
                    return Err(DbError::binding(
                        "ORDER BY expression must appear in the SELECT list when DISTINCT is used",
                    ));
                }
                sort_keys.push((proj.len(), *desc));
                proj.push(bound.0);
            }
        }
        let hidden = proj.len() - visible;
        plan = Plan::Project {
            input: Box::new(plan),
            exprs: proj,
        };
        if stmt.distinct {
            plan = Plan::Distinct {
                input: Box::new(plan),
                visible,
            };
        }
        if !sort_keys.is_empty() {
            plan = Plan::Sort {
                input: Box::new(plan),
                keys: sort_keys,
            };
        }
        if hidden > 0 {
            plan = Plan::Take {
                input: Box::new(plan),
                keep: visible,
            };
        }
        if let Some(n) = stmt.offset {
            plan = Plan::Offset {
                input: Box::new(plan),
                n,
            };
        }
        if let Some(n) = stmt.limit {
            plan = Plan::Limit {
                input: Box::new(plan),
                n,
            };
        }
        Ok(PlannedSelect { plan, columns })
    }

    /// Plans the body of a view (re-parsed from its stored SQL text),
    /// guarded by the same nesting limit as subqueries.
    fn plan_view(&self, body_sql: &str, name: &str) -> DbResult<PlannedSelect> {
        if self.subquery_depth.get() >= MAX_SUBQUERY_DEPTH {
            return Err(DbError::binding(format!(
                "view nesting exceeds the maximum depth of {MAX_SUBQUERY_DEPTH}"
            )));
        }
        self.subquery_depth.set(self.subquery_depth.get() + 1);
        let result = (|| {
            let stmt = crate::sql::parse_statement(body_sql).map_err(|e| {
                DbError::exec(format!("stored body of view {name} no longer parses: {e}"))
            })?;
            let crate::sql::ast::Statement::Select(sel) = stmt else {
                return Err(DbError::exec(format!("view {name} body is not a SELECT")));
            };
            self.plan_select(&sel)
        })();
        self.subquery_depth.set(self.subquery_depth.get() - 1);
        result
    }

    /// Plans one FROM relation: a base-table scan (with index selection
    /// and pushed-down filters) or an inlined view subplan (with the
    /// pushed conjuncts applied as a filter on top).
    fn plan_relation(
        &self,
        name: &str,
        view_plan: Option<Plan>,
        pushed: &[Expr],
        range: &(String, std::ops::Range<usize>),
        full_scope: &Scope,
    ) -> DbResult<Plan> {
        let Some(mut plan) = view_plan else {
            return self.plan_scan(name, pushed, range, full_scope);
        };
        let local_scope = Scope::new(full_scope.cols[range.1.clone()].to_vec());
        for conj in pushed {
            let pred = self.bind_folded(conj, &local_scope)?;
            if pred.ty != DataType::Bool && pred.ty != DataType::Null {
                return Err(DbError::type_err("WHERE condition must be BOOLEAN"));
            }
            plan = Plan::Filter {
                input: Box::new(plan),
                pred,
            };
        }
        Ok(plan)
    }

    /// Examines one pushed conjunct for a `col (cmp) constant` or
    /// `col BETWEEN a AND b` shape over a B-tree-indexed, *ordered*
    /// column, accumulating bounds into `probe`. The conjunct always
    /// stays in the filter, so bounds may be conservative.
    fn try_range_probe(
        &self,
        conj: &Expr,
        table: &crate::storage::Table,
        range: &(String, std::ops::Range<usize>),
        local_scope: &Scope,
        probe: &mut Option<IndexRange>,
    ) -> DbResult<()> {
        use crate::sql::ast::AstBinOp;
        let col_of = |e: &Expr| -> Option<usize> {
            let Expr::Column { qualifier, name } = e else {
                return None;
            };
            let q_ok = qualifier
                .as_ref()
                .map(|q| q.eq_ignore_ascii_case(&range.0))
                .unwrap_or(true);
            if !q_ok {
                return None;
            }
            let idx = table.schema.col_index(name)?;
            // Range probes need a B-tree index over an ordered type.
            if table.index_on(idx).is_none()
                || !self.catalog.is_ordered(table.schema.columns[idx].ty)
            {
                return None;
            }
            Some(idx)
        };
        let bind_const = |e: &Expr, col: usize| -> Option<BoundExpr> {
            let b = self.bind_folded(e, local_scope).ok()?;
            if !b.is_column_free() || b.now_dep {
                return None;
            }
            let b = self
                .binder
                .coerce(b, table.schema.columns[col].ty, false)
                .ok()?;
            Some(self.fold(b))
        };
        let mut add_bound = |col: usize,
                             lo: Option<(BoundExpr, bool)>,
                             hi: Option<(BoundExpr, bool)>| {
            match probe {
                Some(p) if p.column == col => {
                    if p.lo.is_none() {
                        p.lo = lo;
                    }
                    if p.hi.is_none() {
                        p.hi = hi;
                    }
                }
                Some(_) => {}
                None => {
                    *probe = Some(IndexRange {
                        column: col,
                        lo,
                        hi,
                    })
                }
            }
        };
        match conj {
            Expr::Binary { op, lhs, rhs }
                if matches!(
                    op,
                    AstBinOp::Lt | AstBinOp::Le | AstBinOp::Gt | AstBinOp::Ge
                ) =>
            {
                // col (cmp) const — or const (cmp) col, flipped.
                if let Some(col) = col_of(lhs) {
                    if let Some(k) = bind_const(rhs, col) {
                        match op {
                            AstBinOp::Lt => add_bound(col, None, Some((k, false))),
                            AstBinOp::Le => add_bound(col, None, Some((k, true))),
                            AstBinOp::Gt => add_bound(col, Some((k, false)), None),
                            AstBinOp::Ge => add_bound(col, Some((k, true)), None),
                            _ => unreachable!(),
                        }
                    }
                } else if let Some(col) = col_of(rhs) {
                    if let Some(k) = bind_const(lhs, col) {
                        match op {
                            AstBinOp::Lt => add_bound(col, Some((k, false)), None),
                            AstBinOp::Le => add_bound(col, Some((k, true)), None),
                            AstBinOp::Gt => add_bound(col, None, Some((k, false))),
                            AstBinOp::Ge => add_bound(col, None, Some((k, true))),
                            _ => unreachable!(),
                        }
                    }
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated: false,
            } => {
                if let Some(col) = col_of(expr) {
                    let lo = bind_const(low, col);
                    let hi = bind_const(high, col);
                    if lo.is_some() || hi.is_some() {
                        add_bound(col, lo.map(|k| (k, true)), hi.map(|k| (k, true)));
                    }
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Plans one table scan with its pushed-down conjuncts, trying an
    /// index-equality lookup first.
    fn plan_scan(
        &self,
        table_name: &str,
        pushed: &[Expr],
        range: &(String, std::ops::Range<usize>),
        full_scope: &Scope,
    ) -> DbResult<Plan> {
        let table = self.tables.table(table_name)?;
        // Local scope: the table's own columns at offsets 0..n.
        let local_scope = Scope::new(full_scope.cols[range.1.clone()].to_vec());
        let mut index_eq = None;
        let mut index_overlap = None;
        // Accumulated range bounds per B-tree-indexed column:
        // (col, lo, hi); populated from `col </<=/>/>= const` and
        // `col BETWEEN a AND b` conjuncts, which all stay in the filter
        // as a recheck.
        let mut range_probe: Option<IndexRange> = None;
        let mut residual: Option<BoundExpr> = None;
        for conj in pushed {
            // Try comparisons against a B-tree index for a range probe.
            self.try_range_probe(conj, table, range, &local_scope, &mut range_probe)?;
            // Try `overlaps(col, w)` / `contains(col, w)` against an
            // interval index. The conjunct is *kept* as a residual filter:
            // the bucketed index returns a conservative candidate
            // superset.
            if index_overlap.is_none() {
                if let Expr::Call {
                    name,
                    args,
                    star: false,
                    ..
                } = conj
                {
                    let is_overlaps = name.eq_ignore_ascii_case("overlaps");
                    let is_contains = name.eq_ignore_ascii_case("contains");
                    if (is_overlaps || is_contains) && args.len() == 2 {
                        // For contains(col, x) only the first argument can
                        // be the indexed column; overlaps is symmetric.
                        let sides: &[(usize, usize)] = if is_overlaps {
                            &[(0, 1), (1, 0)]
                        } else {
                            &[(0, 1)]
                        };
                        for &(ci, wi) in sides {
                            let Expr::Column {
                                qualifier,
                                name: col_name,
                            } = &args[ci]
                            else {
                                continue;
                            };
                            let q_ok = qualifier
                                .as_ref()
                                .map(|q| q.eq_ignore_ascii_case(&range.0))
                                .unwrap_or(true);
                            if !q_ok {
                                continue;
                            }
                            let Some(col_idx) = table.schema.col_index(col_name) else {
                                continue;
                            };
                            if table.interval_index_on(col_idx).is_none() {
                                continue;
                            }
                            let Ok(probe) = self.bind_folded(&args[wi], &local_scope) else {
                                continue;
                            };
                            if !probe.is_column_free() {
                                continue;
                            }
                            index_overlap = Some((col_idx, probe));
                            break;
                        }
                    }
                }
            }
            // Try `col = constant` (either side) against an index.
            if index_eq.is_none() {
                if let Expr::Binary {
                    op: crate::sql::ast::AstBinOp::Eq,
                    lhs,
                    rhs,
                } = conj
                {
                    for (col_side, const_side) in [(lhs, rhs), (rhs, lhs)] {
                        if let Expr::Column { qualifier, name } = col_side.as_ref() {
                            let q_ok = qualifier
                                .as_ref()
                                .map(|q| q.eq_ignore_ascii_case(&range.0))
                                .unwrap_or(true);
                            if !q_ok {
                                continue;
                            }
                            let Some(col_idx) = table.schema.col_index(name) else {
                                continue;
                            };
                            if table.index_on(col_idx).is_none() {
                                continue;
                            }
                            let key = self.bind_folded(const_side, &local_scope)?;
                            if !key.is_column_free() || key.now_dep {
                                continue;
                            }
                            // Coerce the key to the column type if needed.
                            let key = match self.binder.coerce(
                                key,
                                table.schema.columns[col_idx].ty,
                                false,
                            ) {
                                Ok(k) => self.fold(k),
                                Err(_) => continue,
                            };
                            index_eq = Some((col_idx, key));
                            break;
                        }
                    }
                    if index_eq.is_some() {
                        continue; // consumed as index probe
                    }
                }
            }
            let bound = self.bind_folded(conj, &local_scope)?;
            if bound.ty != DataType::Bool && bound.ty != DataType::Null {
                return Err(DbError::type_err("WHERE condition must be BOOLEAN"));
            }
            residual = Some(match residual {
                None => bound,
                Some(prev) => BoundExpr {
                    ty: DataType::Bool,
                    now_dep: prev.now_dep || bound.now_dep,
                    kind: BoundKind::And(Box::new(prev), Box::new(bound)),
                },
            });
        }
        // An equality probe is strictly better than a range probe.
        let index_range = if index_eq.is_some() || index_overlap.is_some() {
            None
        } else {
            range_probe.map(Box::new)
        };
        Ok(Plan::Scan {
            table: table.schema.name.clone(),
            index_eq,
            index_overlap,
            index_range,
            filter: residual,
            project: None,
            arity: table.schema.columns.len(),
        })
    }

    /// Shifts column references down by `offset` (used to rebase a
    /// right-side hash key from the concatenated scope onto the right
    /// input's own row).
    fn rebase(&self, e: BoundExpr, offset: usize) -> BoundExpr {
        fn walk(k: BoundKind, offset: usize) -> BoundKind {
            match k {
                BoundKind::ColumnRef(i) => BoundKind::ColumnRef(i - offset),
                BoundKind::Apply { f, batch, args } => BoundKind::Apply {
                    f,
                    batch,
                    args: args
                        .into_iter()
                        .map(|a| BoundExpr {
                            ty: a.ty,
                            now_dep: a.now_dep,
                            kind: walk(a.kind, offset),
                        })
                        .collect(),
                },
                BoundKind::Cast { f, arg } => BoundKind::Cast {
                    f,
                    arg: Box::new(BoundExpr {
                        ty: arg.ty,
                        now_dep: arg.now_dep,
                        kind: walk(arg.kind, offset),
                    }),
                },
                BoundKind::Neg(a) => BoundKind::Neg(Box::new(BoundExpr {
                    ty: a.ty,
                    now_dep: a.now_dep,
                    kind: walk(a.kind, offset),
                })),
                BoundKind::Not(a) => BoundKind::Not(Box::new(BoundExpr {
                    ty: a.ty,
                    now_dep: a.now_dep,
                    kind: walk(a.kind, offset),
                })),
                BoundKind::And(a, b) => BoundKind::And(
                    Box::new(BoundExpr {
                        ty: a.ty,
                        now_dep: a.now_dep,
                        kind: walk(a.kind, offset),
                    }),
                    Box::new(BoundExpr {
                        ty: b.ty,
                        now_dep: b.now_dep,
                        kind: walk(b.kind, offset),
                    }),
                ),
                BoundKind::Or(a, b) => BoundKind::Or(
                    Box::new(BoundExpr {
                        ty: a.ty,
                        now_dep: a.now_dep,
                        kind: walk(a.kind, offset),
                    }),
                    Box::new(BoundExpr {
                        ty: b.ty,
                        now_dep: b.now_dep,
                        kind: walk(b.kind, offset),
                    }),
                ),
                BoundKind::IsNull { arg, negated } => BoundKind::IsNull {
                    arg: Box::new(BoundExpr {
                        ty: arg.ty,
                        now_dep: arg.now_dep,
                        kind: walk(arg.kind, offset),
                    }),
                    negated,
                },
                BoundKind::Case { branches, else_ } => BoundKind::Case {
                    branches: branches
                        .into_iter()
                        .map(|(w, t)| {
                            (
                                BoundExpr {
                                    ty: w.ty,
                                    now_dep: w.now_dep,
                                    kind: walk(w.kind, offset),
                                },
                                BoundExpr {
                                    ty: t.ty,
                                    now_dep: t.now_dep,
                                    kind: walk(t.kind, offset),
                                },
                            )
                        })
                        .collect(),
                    else_: else_.map(|e| {
                        Box::new(BoundExpr {
                            ty: e.ty,
                            now_dep: e.now_dep,
                            kind: walk(e.kind, offset),
                        })
                    }),
                },
                lit @ (BoundKind::Literal(_) | BoundKind::Param { .. }) => lit,
            }
        }
        BoundExpr {
            ty: e.ty,
            now_dep: e.now_dep,
            kind: walk(e.kind, offset),
        }
    }
}
