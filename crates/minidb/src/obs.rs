//! Query observability: per-operator execution profiles backing
//! `EXPLAIN ANALYZE`, the session-level [`QueryMetrics`] registry backing
//! `SHOW STATS`, and the slow-query log hook.
//!
//! Two collection levels exist because they have very different costs:
//!
//! * **access-path accounting** ([`OpProfile::paths_only`]) records, once
//!   per scan open, which access path ran and how many rows it touched —
//!   no per-row work, so every ordinary `SELECT` pays for it;
//! * **full profiling** ([`OpProfile::timed`]) additionally wraps every
//!   operator stream to count `next_row` calls, rows produced, and
//!   cumulative wall time — only `EXPLAIN ANALYZE` pays for it.
//!
//! Reported operator times are *inclusive*: an operator's clock runs
//! while its children produce rows for it, so a parent is always at
//! least as expensive as each child.

use crate::plan::Plan;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How a [`Plan::Scan`] accessed its table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Whole-table scan.
    FullScan,
    /// B-tree equality lookup.
    IndexEq,
    /// B-tree range probe.
    IndexRange,
    /// Bucketed interval-index overlap probe.
    IndexOverlap,
}

impl AccessPath {
    /// Stable lowercase label used in EXPLAIN ANALYZE output.
    pub fn label(self) -> &'static str {
        match self {
            AccessPath::FullScan => "full-scan",
            AccessPath::IndexEq => "index-eq",
            AccessPath::IndexRange => "index-range",
            AccessPath::IndexOverlap => "index-overlap",
        }
    }
}

/// Runtime counters for one plan operator, arranged in a tree mirroring
/// the plan shape. Uses `Cell`s: execution is single-threaded and the
/// profile is threaded through operators as a shared borrow.
#[derive(Debug)]
pub struct OpProfile {
    label: String,
    timed: bool,
    rows: Cell<u64>,
    calls: Cell<u64>,
    batches: Cell<u64>,
    nanos: Cell<u64>,
    rows_scanned: Cell<u64>,
    access: Cell<Option<AccessPath>>,
    children: Vec<OpProfile>,
}

impl OpProfile {
    fn for_plan(plan: &Plan, timed: bool) -> OpProfile {
        let children = match plan {
            Plan::Nothing | Plan::Scan { .. } => Vec::new(),
            Plan::HashJoin { left, right, .. } | Plan::NlJoin { left, right, .. } => {
                vec![
                    OpProfile::for_plan(left, timed),
                    OpProfile::for_plan(right, timed),
                ]
            }
            Plan::Filter { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Project { input, .. }
            | Plan::Distinct { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Take { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Offset { input, .. } => vec![OpProfile::for_plan(input, timed)],
            Plan::Union { inputs } => inputs
                .iter()
                .map(|p| OpProfile::for_plan(p, timed))
                .collect(),
        };
        OpProfile {
            label: plan.node_label(),
            timed,
            rows: Cell::new(0),
            calls: Cell::new(0),
            batches: Cell::new(0),
            nanos: Cell::new(0),
            rows_scanned: Cell::new(0),
            access: Cell::new(None),
            children,
        }
    }

    /// A fully instrumented profile for `EXPLAIN ANALYZE`: rows, calls,
    /// and wall time per operator.
    pub fn timed(plan: &Plan) -> OpProfile {
        OpProfile::for_plan(plan, true)
    }

    /// A lightweight profile recording only scan access paths and rows
    /// scanned (no per-row timing cost); feeds [`QueryMetrics`].
    pub fn paths_only(plan: &Plan) -> OpProfile {
        OpProfile::for_plan(plan, false)
    }

    /// Whether streams opened against this profile should be wrapped in
    /// timing instrumentation.
    pub fn is_timed(&self) -> bool {
        self.timed
    }

    /// The child profile at `i` (mirrors the plan's child order).
    ///
    /// # Panics
    /// Panics if `i` is out of range — the profile tree is built from the
    /// same plan that execution walks, so a mismatch is an engine bug.
    pub fn child(&self, i: usize) -> &OpProfile {
        &self.children[i]
    }

    /// Operator label (e.g. `ixscan(t)[f]`, `hashjoin`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Rows this operator produced.
    pub fn rows(&self) -> u64 {
        self.rows.get()
    }

    /// `next_row` calls made against this operator.
    pub fn calls(&self) -> u64 {
        self.calls.get()
    }

    /// Column batches this operator produced (vectorized path only;
    /// zero when the operator ran row at a time).
    pub fn batches(&self) -> u64 {
        self.batches.get()
    }

    /// Cumulative wall time (inclusive of children).
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.nanos.get())
    }

    /// Rows the scan touched before filtering (scan nodes only).
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned.get()
    }

    /// The access path a scan node used (scan nodes only).
    pub fn access_path(&self) -> Option<AccessPath> {
        self.access.get()
    }

    pub(crate) fn record_call(&self, produced: bool, nanos: u64) {
        self.calls.set(self.calls.get() + 1);
        self.nanos.set(self.nanos.get() + nanos);
        if produced {
            self.rows.set(self.rows.get() + 1);
        }
    }

    pub(crate) fn record_batch(&self, rows: u64, nanos: u64) {
        self.batches.set(self.batches.get() + 1);
        self.rows.set(self.rows.get() + rows);
        self.nanos.set(self.nanos.get() + nanos);
    }

    pub(crate) fn record_open_nanos(&self, nanos: u64) {
        self.nanos.set(self.nanos.get() + nanos);
    }

    pub(crate) fn record_scan(&self, path: AccessPath, rows_scanned: u64) {
        self.access.set(Some(path));
        self.rows_scanned
            .set(self.rows_scanned.get() + rows_scanned);
    }

    /// Renders the profile as an indented tree, one line per operator:
    ///
    /// ```text
    /// project  rows=2 calls=3 time=41.2µs
    ///   ivscan(p)[f]  rows=2 calls=3 time=35.0µs scanned=17 path=index-overlap
    /// ```
    pub fn render(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut Vec<String>) {
        let mut line = format!(
            "{:indent$}{}  rows={} calls={}",
            "",
            self.label,
            self.rows.get(),
            self.calls.get(),
            indent = depth * 2
        );
        // A vectorized operator reports how many column batches it
        // emitted and the average fill, alongside the row totals.
        let batches = self.batches.get();
        if batches > 0 {
            line.push_str(&format!(
                " batches={} rows/batch={}",
                batches,
                self.rows.get().div_ceil(batches)
            ));
        }
        if self.timed {
            line.push_str(&format!(" time={}", fmt_duration(self.elapsed())));
        }
        if let Some(path) = self.access.get() {
            line.push_str(&format!(
                " scanned={} path={}",
                self.rows_scanned.get(),
                path.label()
            ));
        }
        out.push(line);
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }

    /// Folds every scan node's access-path counters (and any vectorized
    /// batch counts) into `metrics`.
    pub fn charge_scans(&self, metrics: &QueryMetrics) {
        if let Some(path) = self.access.get() {
            metrics.record_scan(path, self.rows_scanned.get());
        }
        let batches = self.batches.get();
        if batches > 0 {
            metrics.record_batches(batches);
        }
        for c in &self.children {
            c.charge_scans(metrics);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// The statement kinds [`QueryMetrics`] tallies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatementKind {
    Select,
    Insert,
    Update,
    Delete,
    Ddl,
    Explain,
    ShowStats,
    /// `BEGIN`/`COMMIT`/`ROLLBACK` — tallied in the `txn.*` counters,
    /// not in `statements.*`.
    Txn,
}

/// Number of log2 latency buckets: bucket `i` counts statements whose
/// latency was in `[2^i, 2^(i+1))` microseconds; the last bucket is
/// open-ended.
pub const LATENCY_BUCKETS: usize = 22;

/// Session-level query statistics. All counters are atomics, so a
/// `SHOW STATS` from one thread can observe a session driven elsewhere
/// through an `Arc` handle without locks.
#[derive(Debug, Default)]
pub struct QueryMetrics {
    selects: AtomicU64,
    inserts: AtomicU64,
    updates: AtomicU64,
    deletes: AtomicU64,
    ddl: AtomicU64,
    explains: AtomicU64,
    errors: AtomicU64,

    full_scans: AtomicU64,
    index_eq_scans: AtomicU64,
    index_range_scans: AtomicU64,
    index_overlap_scans: AtomicU64,

    rows_scanned: AtomicU64,
    rows_returned: AtomicU64,
    rows_affected: AtomicU64,
    /// Column batches emitted by vectorized operators. Session-local
    /// observability only — deliberately NOT part of the METRICS wire
    /// frame (adding it would bump the protocol metrics version).
    vectorized_batches: AtomicU64,

    select_nanos: AtomicU64,
    dml_nanos: AtomicU64,
    slow_queries: AtomicU64,
    lock_wait_nanos: AtomicU64,
    tables_pinned: AtomicU64,

    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    plan_cache_invalidations: AtomicU64,
    /// Gauge (not a counter): the shared cache's current entry count as
    /// of the last statement that touched it.
    plan_cache_entries: AtomicU64,

    txn_begun: AtomicU64,
    txn_committed: AtomicU64,
    txn_rolled_back: AtomicU64,
    latency_buckets: [AtomicU64; LATENCY_BUCKETS],
}

/// Log2 bucket index for a latency: bucket `i` holds `[2^i, 2^(i+1))`
/// microseconds, sub-µs goes in 0, and the last bucket is open-ended.
fn latency_bucket(elapsed: Duration) -> usize {
    let micros = elapsed.as_micros() as u64;
    (63 - micros.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
}

impl QueryMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Arc<QueryMetrics> {
        Arc::new(QueryMetrics::default())
    }

    pub(crate) fn record_statement(&self, kind: StatementKind) {
        let c = match kind {
            StatementKind::Select => &self.selects,
            StatementKind::Insert => &self.inserts,
            StatementKind::Update => &self.updates,
            StatementKind::Delete => &self.deletes,
            StatementKind::Ddl => &self.ddl,
            StatementKind::Explain => &self.explains,
            StatementKind::ShowStats => return, // reading stats is free
            StatementKind::Txn => return,       // tallied via the txn.* counters
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_scan(&self, path: AccessPath, rows_scanned: u64) {
        let c = match path {
            AccessPath::FullScan => &self.full_scans,
            AccessPath::IndexEq => &self.index_eq_scans,
            AccessPath::IndexRange => &self.index_range_scans,
            AccessPath::IndexOverlap => &self.index_overlap_scans,
        };
        c.fetch_add(1, Ordering::Relaxed);
        self.rows_scanned.fetch_add(rows_scanned, Ordering::Relaxed);
    }

    pub(crate) fn record_batches(&self, batches: u64) {
        self.vectorized_batches
            .fetch_add(batches, Ordering::Relaxed);
    }

    pub(crate) fn record_select(&self, rows_returned: u64, elapsed: Duration) {
        self.rows_returned
            .fetch_add(rows_returned, Ordering::Relaxed);
        self.select_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.latency_buckets[latency_bucket(elapsed)].fetch_add(1, Ordering::Relaxed);
    }

    /// One INSERT/UPDATE/DELETE: affected rows, execution time, and a
    /// tick in the shared latency histogram.
    pub(crate) fn record_dml(&self, rows_affected: u64, elapsed: Duration) {
        self.rows_affected
            .fetch_add(rows_affected, Ordering::Relaxed);
        self.dml_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.latency_buckets[latency_bucket(elapsed)].fetch_add(1, Ordering::Relaxed);
    }

    /// One statement's table-pin accounting: how many tables it pinned
    /// and how long it was blocked acquiring their locks.
    pub(crate) fn record_lock_wait(&self, tables: u64, wait: Duration) {
        self.tables_pinned.fetch_add(tables, Ordering::Relaxed);
        self.lock_wait_nanos
            .fetch_add(wait.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_slow_query(&self) {
        self.slow_queries.fetch_add(1, Ordering::Relaxed);
    }

    /// One SELECT served straight from the shared plan cache.
    pub(crate) fn record_plan_cache_hit(&self) {
        self.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// One SELECT that had to run the full front end (parse/bind/plan).
    pub(crate) fn record_plan_cache_miss(&self) {
        self.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// One cached plan evicted because the DDL generation moved on.
    pub(crate) fn record_plan_cache_invalidation(&self) {
        self.plan_cache_invalidations
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Updates the cache-size gauge.
    pub(crate) fn set_plan_cache_entries(&self, entries: u64) {
        self.plan_cache_entries.store(entries, Ordering::Relaxed);
    }

    /// One `BEGIN` that opened a transaction.
    pub(crate) fn record_txn_begun(&self) {
        self.txn_begun.fetch_add(1, Ordering::Relaxed);
    }

    /// One `COMMIT` that made a transaction's writes visible.
    pub(crate) fn record_txn_committed(&self) {
        self.txn_committed.fetch_add(1, Ordering::Relaxed);
    }

    /// One transaction discarded by `ROLLBACK` (or aborted).
    pub(crate) fn record_txn_rolled_back(&self) {
        self.txn_rolled_back.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        MetricsSnapshot {
            selects: g(&self.selects),
            inserts: g(&self.inserts),
            updates: g(&self.updates),
            deletes: g(&self.deletes),
            ddl: g(&self.ddl),
            explains: g(&self.explains),
            errors: g(&self.errors),
            full_scans: g(&self.full_scans),
            index_eq_scans: g(&self.index_eq_scans),
            index_range_scans: g(&self.index_range_scans),
            index_overlap_scans: g(&self.index_overlap_scans),
            rows_scanned: g(&self.rows_scanned),
            rows_returned: g(&self.rows_returned),
            rows_affected: g(&self.rows_affected),
            vectorized_batches: g(&self.vectorized_batches),
            select_nanos: g(&self.select_nanos),
            dml_nanos: g(&self.dml_nanos),
            slow_queries: g(&self.slow_queries),
            lock_wait_nanos: g(&self.lock_wait_nanos),
            tables_pinned: g(&self.tables_pinned),
            plan_cache_hits: g(&self.plan_cache_hits),
            plan_cache_misses: g(&self.plan_cache_misses),
            plan_cache_invalidations: g(&self.plan_cache_invalidations),
            plan_cache_entries: g(&self.plan_cache_entries),
            txn_begun: g(&self.txn_begun),
            txn_committed: g(&self.txn_committed),
            txn_rolled_back: g(&self.txn_rolled_back),
            // WAL counters live on the database, not the session; the
            // server overlays them via `overlay_wal` when encoding. The
            // MVCC gauges likewise come from `overlay_mvcc`.
            wal_appends: 0,
            wal_bytes: 0,
            wal_fsyncs: 0,
            wal_group_commit_batch: 0,
            wal_replayed: 0,
            wal_checkpoints: 0,
            mvcc_versions: 0,
            mvcc_snapshots_pinned: 0,
            repl_chunks_shipped: 0,
            repl_bytes_shipped: 0,
            repl_apply_lag_seq: 0,
            repl_reconnects: 0,
            repl_last_seq: 0,
            bufpool_hits: 0,
            bufpool_misses: 0,
            bufpool_evictions: 0,
            bufpool_writebacks: 0,
            bufpool_pages: 0,
            latency_buckets: std::array::from_fn(|i| g(&self.latency_buckets[i])),
        }
    }
}

/// A point-in-time copy of a session's [`QueryMetrics`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub selects: u64,
    pub inserts: u64,
    pub updates: u64,
    pub deletes: u64,
    pub ddl: u64,
    pub explains: u64,
    pub errors: u64,
    pub full_scans: u64,
    pub index_eq_scans: u64,
    pub index_range_scans: u64,
    pub index_overlap_scans: u64,
    pub rows_scanned: u64,
    pub rows_returned: u64,
    pub rows_affected: u64,
    /// Column batches emitted by vectorized operators (session-local;
    /// not carried on the METRICS wire frame).
    pub vectorized_batches: u64,
    pub select_nanos: u64,
    pub dml_nanos: u64,
    pub slow_queries: u64,
    pub lock_wait_nanos: u64,
    pub tables_pinned: u64,
    pub plan_cache_hits: u64,
    pub plan_cache_misses: u64,
    pub plan_cache_invalidations: u64,
    /// Gauge: current size of the (database-wide) plan cache.
    pub plan_cache_entries: u64,
    pub txn_begun: u64,
    pub txn_committed: u64,
    pub txn_rolled_back: u64,
    /// WAL counters, overlaid from the database's durability layer (see
    /// [`MetricsSnapshot::overlay_wal`]); all zero on in-memory
    /// databases and on sessions that never overlaid them.
    pub wal_appends: u64,
    pub wal_bytes: u64,
    pub wal_fsyncs: u64,
    pub wal_group_commit_batch: u64,
    pub wal_replayed: u64,
    pub wal_checkpoints: u64,
    /// Gauge: table versions currently retained across all version
    /// chains (database-wide; overlaid via
    /// [`MetricsSnapshot::overlay_mvcc`]).
    pub mvcc_versions: u64,
    /// Gauge: snapshot pins currently registered (database-wide).
    pub mvcc_snapshots_pinned: u64,
    /// Replication counters/gauges, overlaid from the database's
    /// [`crate::repl::ReplStats`] (see [`MetricsSnapshot::overlay_repl`]);
    /// all zero on nodes that neither ship nor apply WAL chunks.
    pub repl_chunks_shipped: u64,
    pub repl_bytes_shipped: u64,
    /// Gauge: worst per-replica apply lag in commit sequences (primary).
    pub repl_apply_lag_seq: u64,
    pub repl_reconnects: u64,
    /// Gauge: newest commit sequence known applied on this node.
    pub repl_last_seq: u64,
    /// Buffer-pool counters, overlaid from the database's paged store
    /// (see [`MetricsSnapshot::overlay_bufpool`]); all zero on
    /// in-memory databases.
    pub bufpool_hits: u64,
    pub bufpool_misses: u64,
    pub bufpool_evictions: u64,
    pub bufpool_writebacks: u64,
    /// Gauge: pages currently resident in the buffer pool.
    pub bufpool_pages: u64,
    pub latency_buckets: [u64; LATENCY_BUCKETS],
}

impl MetricsSnapshot {
    /// Folds another session's counters into this snapshot — the server
    /// uses this to aggregate per-session observability counters across
    /// all live connections. Saturating, so a hostile peer cannot make
    /// aggregation itself overflow.
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        let add = |a: &mut u64, b: u64| *a = a.saturating_add(b);
        add(&mut self.selects, other.selects);
        add(&mut self.inserts, other.inserts);
        add(&mut self.updates, other.updates);
        add(&mut self.deletes, other.deletes);
        add(&mut self.ddl, other.ddl);
        add(&mut self.explains, other.explains);
        add(&mut self.errors, other.errors);
        add(&mut self.full_scans, other.full_scans);
        add(&mut self.index_eq_scans, other.index_eq_scans);
        add(&mut self.index_range_scans, other.index_range_scans);
        add(&mut self.index_overlap_scans, other.index_overlap_scans);
        add(&mut self.rows_scanned, other.rows_scanned);
        add(&mut self.rows_returned, other.rows_returned);
        add(&mut self.rows_affected, other.rows_affected);
        add(&mut self.vectorized_batches, other.vectorized_batches);
        add(&mut self.select_nanos, other.select_nanos);
        add(&mut self.dml_nanos, other.dml_nanos);
        add(&mut self.slow_queries, other.slow_queries);
        add(&mut self.lock_wait_nanos, other.lock_wait_nanos);
        add(&mut self.tables_pinned, other.tables_pinned);
        add(&mut self.plan_cache_hits, other.plan_cache_hits);
        add(&mut self.plan_cache_misses, other.plan_cache_misses);
        add(
            &mut self.plan_cache_invalidations,
            other.plan_cache_invalidations,
        );
        add(&mut self.txn_begun, other.txn_begun);
        add(&mut self.txn_committed, other.txn_committed);
        add(&mut self.txn_rolled_back, other.txn_rolled_back);
        // Every session gauges the same shared cache: max, not sum.
        self.plan_cache_entries = self.plan_cache_entries.max(other.plan_cache_entries);
        // WAL counters are database-wide (one WAL per database), so
        // aggregating across sessions must not multiply them: max.
        self.wal_appends = self.wal_appends.max(other.wal_appends);
        self.wal_bytes = self.wal_bytes.max(other.wal_bytes);
        self.wal_fsyncs = self.wal_fsyncs.max(other.wal_fsyncs);
        self.wal_group_commit_batch = self
            .wal_group_commit_batch
            .max(other.wal_group_commit_batch);
        self.wal_replayed = self.wal_replayed.max(other.wal_replayed);
        self.wal_checkpoints = self.wal_checkpoints.max(other.wal_checkpoints);
        // The MVCC gauges are database-wide too: max, not sum.
        self.mvcc_versions = self.mvcc_versions.max(other.mvcc_versions);
        self.mvcc_snapshots_pinned = self.mvcc_snapshots_pinned.max(other.mvcc_snapshots_pinned);
        // Replication state is node-wide (one stream set per database):
        // max, not sum, for the same reason as the WAL counters.
        self.repl_chunks_shipped = self.repl_chunks_shipped.max(other.repl_chunks_shipped);
        self.repl_bytes_shipped = self.repl_bytes_shipped.max(other.repl_bytes_shipped);
        self.repl_apply_lag_seq = self.repl_apply_lag_seq.max(other.repl_apply_lag_seq);
        self.repl_reconnects = self.repl_reconnects.max(other.repl_reconnects);
        self.repl_last_seq = self.repl_last_seq.max(other.repl_last_seq);
        // One buffer pool per database: max, not sum.
        self.bufpool_hits = self.bufpool_hits.max(other.bufpool_hits);
        self.bufpool_misses = self.bufpool_misses.max(other.bufpool_misses);
        self.bufpool_evictions = self.bufpool_evictions.max(other.bufpool_evictions);
        self.bufpool_writebacks = self.bufpool_writebacks.max(other.bufpool_writebacks);
        self.bufpool_pages = self.bufpool_pages.max(other.bufpool_pages);
        for (a, b) in self.latency_buckets.iter_mut().zip(&other.latency_buckets) {
            *a = a.saturating_add(*b);
        }
    }

    /// Copies the database's WAL counters into this snapshot — the
    /// server does this before encoding a METRICS frame so the wire
    /// carries `wal.*` alongside the session counters.
    pub fn overlay_wal(&mut self, w: &crate::wal::WalStatsSnapshot) {
        self.wal_appends = w.appends;
        self.wal_bytes = w.bytes;
        self.wal_fsyncs = w.fsyncs;
        self.wal_group_commit_batch = w.group_commit_batch;
        self.wal_replayed = w.replayed;
        self.wal_checkpoints = w.checkpoints;
    }

    /// Copies the database's MVCC gauges into this snapshot (same idea
    /// as [`MetricsSnapshot::overlay_wal`]).
    pub fn overlay_mvcc(&mut self, versions: u64, snapshots_pinned: u64) {
        self.mvcc_versions = versions;
        self.mvcc_snapshots_pinned = snapshots_pinned;
    }

    /// Copies the database's replication counters into this snapshot
    /// (same idea as [`MetricsSnapshot::overlay_wal`]).
    pub fn overlay_repl(&mut self, r: &crate::repl::ReplSnapshot) {
        self.repl_chunks_shipped = r.chunks_shipped;
        self.repl_bytes_shipped = r.bytes_shipped;
        self.repl_apply_lag_seq = r.apply_lag_seq;
        self.repl_reconnects = r.reconnects;
        self.repl_last_seq = r.last_seq;
    }

    /// Copies the database's buffer-pool counters into this snapshot
    /// (same idea as [`MetricsSnapshot::overlay_wal`]).
    pub fn overlay_bufpool(&mut self, s: &crate::storage::pages::PoolStatsSnapshot) {
        self.bufpool_hits = s.hits;
        self.bufpool_misses = s.misses;
        self.bufpool_evictions = s.evictions;
        self.bufpool_writebacks = s.writebacks;
        self.bufpool_pages = s.pages;
    }

    /// Total statements of any kind (errors not included).
    pub fn statements(&self) -> u64 {
        self.selects + self.inserts + self.updates + self.deletes + self.ddl + self.explains
    }

    /// Scans that used any index, of any kind.
    pub fn index_scans(&self) -> u64 {
        self.index_eq_scans + self.index_range_scans + self.index_overlap_scans
    }

    /// Fraction of scans served by an index, if any scan ran.
    pub fn index_hit_rate(&self) -> Option<f64> {
        let total = self.index_scans() + self.full_scans;
        (total > 0).then(|| self.index_scans() as f64 / total as f64)
    }

    /// The snapshot as `(metric, value)` rows — the body of `SHOW STATS`.
    /// Latency buckets are collapsed to non-empty ones.
    pub fn rows(&self) -> Vec<(String, u64)> {
        let mut out = vec![
            ("statements.select".to_owned(), self.selects),
            ("statements.insert".to_owned(), self.inserts),
            ("statements.update".to_owned(), self.updates),
            ("statements.delete".to_owned(), self.deletes),
            ("statements.ddl".to_owned(), self.ddl),
            ("statements.explain".to_owned(), self.explains),
            ("statements.error".to_owned(), self.errors),
            ("scans.full".to_owned(), self.full_scans),
            ("scans.index_eq".to_owned(), self.index_eq_scans),
            ("scans.index_range".to_owned(), self.index_range_scans),
            ("scans.index_overlap".to_owned(), self.index_overlap_scans),
            ("rows.scanned".to_owned(), self.rows_scanned),
            ("rows.returned".to_owned(), self.rows_returned),
            ("rows.affected".to_owned(), self.rows_affected),
            ("exec.batches".to_owned(), self.vectorized_batches),
            ("select.total_micros".to_owned(), self.select_nanos / 1_000),
            ("dml.total_micros".to_owned(), self.dml_nanos / 1_000),
            ("select.slow".to_owned(), self.slow_queries),
            ("lock.wait_micros".to_owned(), self.lock_wait_nanos / 1_000),
            ("lock.tables_pinned".to_owned(), self.tables_pinned),
            ("plan_cache.hits".to_owned(), self.plan_cache_hits),
            ("plan_cache.misses".to_owned(), self.plan_cache_misses),
            (
                "plan_cache.invalidations".to_owned(),
                self.plan_cache_invalidations,
            ),
            ("plan_cache.entries".to_owned(), self.plan_cache_entries),
            ("txn.begun".to_owned(), self.txn_begun),
            ("txn.committed".to_owned(), self.txn_committed),
            ("txn.rolled_back".to_owned(), self.txn_rolled_back),
        ];
        for (i, &n) in self.latency_buckets.iter().enumerate() {
            if n > 0 {
                let lo = 1u64 << i;
                out.push((format!("latency.us[{lo}..{})", lo * 2), n));
            }
        }
        out
    }
}

/// What the slow-query log hook receives for each statement at or over
/// the configured threshold.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// The statement text as submitted.
    pub sql: String,
    /// Wall time spent planning and executing it.
    pub elapsed: Duration,
    /// Rows it returned (SELECT) or affected (INSERT/UPDATE/DELETE).
    pub rows: u64,
    /// Physical plan shape (`Plan::describe`).
    pub plan: String,
}

/// Callback invoked for statements slower than the session's threshold.
pub type SlowQueryLogger = Arc<dyn Fn(&SlowQuery) + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_bucketing() {
        let m = QueryMetrics::default();
        m.record_select(1, Duration::from_micros(0)); // sub-µs → bucket 0
        m.record_select(1, Duration::from_micros(1)); // bucket 0
        m.record_select(1, Duration::from_micros(3)); // bucket 1
        m.record_select(1, Duration::from_micros(900)); // bucket 9
        m.record_select(1, Duration::from_secs(3600)); // clamps to last
        let s = m.snapshot();
        assert_eq!(s.latency_buckets[0], 2);
        assert_eq!(s.latency_buckets[1], 1);
        assert_eq!(s.latency_buckets[9], 1);
        assert_eq!(s.latency_buckets[LATENCY_BUCKETS - 1], 1);
        assert_eq!(s.rows_returned, 5);
    }

    #[test]
    fn index_hit_rate() {
        let m = QueryMetrics::default();
        assert_eq!(m.snapshot().index_hit_rate(), None);
        m.record_scan(AccessPath::IndexEq, 10);
        m.record_scan(AccessPath::FullScan, 100);
        m.record_scan(AccessPath::IndexOverlap, 5);
        m.record_scan(AccessPath::IndexRange, 7);
        let s = m.snapshot();
        assert_eq!(s.index_scans(), 3);
        assert_eq!(s.index_hit_rate(), Some(0.75));
        assert_eq!(s.rows_scanned, 122);
    }

    #[test]
    fn snapshot_rows_name_every_counter_group() {
        let m = QueryMetrics::default();
        m.record_statement(StatementKind::Select);
        m.record_scan(AccessPath::FullScan, 4);
        m.record_select(4, Duration::from_micros(10));
        let rows = m.snapshot().rows();
        let names: Vec<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"statements.select"));
        assert!(names.contains(&"scans.full"));
        assert!(names.contains(&"rows.scanned"));
        assert!(names.iter().any(|n| n.starts_with("latency.us[")));
    }

    #[test]
    fn absorb_sums_every_counter() {
        let a = QueryMetrics::default();
        a.record_statement(StatementKind::Select);
        a.record_scan(AccessPath::IndexEq, 3);
        a.record_select(2, Duration::from_micros(5));
        let b = QueryMetrics::default();
        b.record_statement(StatementKind::Insert);
        b.record_statement(StatementKind::Select);
        b.record_scan(AccessPath::FullScan, 10);
        b.record_select(7, Duration::from_micros(40));
        b.record_error();

        let mut total = MetricsSnapshot::default();
        total.absorb(&a.snapshot());
        total.absorb(&b.snapshot());
        assert_eq!(total.selects, 2);
        assert_eq!(total.inserts, 1);
        assert_eq!(total.errors, 1);
        assert_eq!(total.rows_scanned, 13);
        assert_eq!(total.rows_returned, 9);
        assert_eq!(total.statements(), 3);
        assert_eq!(
            total.latency_buckets.iter().sum::<u64>(),
            a.snapshot().latency_buckets.iter().sum::<u64>()
                + b.snapshot().latency_buckets.iter().sum::<u64>()
        );
    }

    #[test]
    fn dml_and_lock_wait_counters_flow_to_rows_and_absorb() {
        let m = QueryMetrics::default();
        m.record_dml(7, Duration::from_micros(3)); // bucket 1
        m.record_lock_wait(2, Duration::from_micros(2500));
        let s = m.snapshot();
        assert_eq!(s.rows_affected, 7);
        assert_eq!(s.dml_nanos, 3_000);
        assert_eq!(s.lock_wait_nanos, 2_500_000);
        assert_eq!(s.tables_pinned, 2);
        assert_eq!(s.latency_buckets[1], 1, "DML feeds the shared histogram");

        let names: Vec<(String, u64)> = s.rows();
        let get = |n: &str| names.iter().find(|(k, _)| k == n).map(|(_, v)| *v);
        assert_eq!(get("rows.affected"), Some(7));
        assert_eq!(get("dml.total_micros"), Some(3));
        assert_eq!(get("lock.wait_micros"), Some(2_500));
        assert_eq!(get("lock.tables_pinned"), Some(2));

        let mut total = MetricsSnapshot::default();
        total.absorb(&s);
        total.absorb(&s);
        assert_eq!(total.rows_affected, 14);
        assert_eq!(total.lock_wait_nanos, 5_000_000);
        assert_eq!(total.tables_pinned, 4);
    }

    #[test]
    fn wal_counters_overlay_and_absorb_as_gauges() {
        let mut a = MetricsSnapshot::default();
        a.overlay_wal(&crate::wal::WalStatsSnapshot {
            appends: 10,
            bytes: 1000,
            fsyncs: 3,
            group_commit_batch: 4,
            replayed: 2,
            checkpoints: 1,
            ..crate::wal::WalStatsSnapshot::default()
        });
        assert_eq!(a.wal_appends, 10);
        assert_eq!(a.wal_group_commit_batch, 4);
        // Two sessions observing the same database-wide WAL must not
        // double its counters when aggregated.
        let b = a.clone();
        let mut total = MetricsSnapshot::default();
        total.absorb(&a);
        total.absorb(&b);
        assert_eq!(total.wal_appends, 10);
        assert_eq!(total.wal_bytes, 1000);
        assert_eq!(total.wal_fsyncs, 3);
        assert_eq!(total.wal_checkpoints, 1);
    }

    #[test]
    fn repl_counters_overlay_and_absorb_as_gauges() {
        let mut a = MetricsSnapshot::default();
        a.overlay_repl(&crate::repl::ReplSnapshot {
            chunks_shipped: 6,
            bytes_shipped: 640,
            apply_lag_seq: 2,
            reconnects: 1,
            last_seq: 37,
        });
        assert_eq!(a.repl_chunks_shipped, 6);
        assert_eq!(a.repl_last_seq, 37);
        // Two sessions observing the same node-wide replication state
        // must not double it when aggregated.
        let b = a.clone();
        let mut total = MetricsSnapshot::default();
        total.absorb(&a);
        total.absorb(&b);
        assert_eq!(total.repl_chunks_shipped, 6);
        assert_eq!(total.repl_bytes_shipped, 640);
        assert_eq!(total.repl_apply_lag_seq, 2);
        assert_eq!(total.repl_reconnects, 1);
        assert_eq!(total.repl_last_seq, 37);
    }

    #[test]
    fn absorb_saturates_instead_of_overflowing() {
        let mut a = MetricsSnapshot {
            selects: u64::MAX - 1,
            ..MetricsSnapshot::default()
        };
        let b = MetricsSnapshot {
            selects: 5,
            ..MetricsSnapshot::default()
        };
        a.absorb(&b);
        assert_eq!(a.selects, u64::MAX);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.0µs");
        assert_eq!(fmt_duration(Duration::from_millis(15)), "15.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }
}
