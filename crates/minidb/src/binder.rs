//! The binder: turns unbound AST expressions into typed, executable
//! [`BoundExpr`] trees.
//!
//! This is where the DataBlade machinery meets query processing: column
//! references are resolved against the FROM scope, routine and operator
//! calls are resolved against the catalog's overload registries
//! (considering implicit casts), `::` casts are looked up in the cast
//! registry, and every node records whether it is *now-dependent* so the
//! optimizer never constant-folds an expression whose value changes as
//! time advances.

use crate::catalog::{BatchFnImpl, BinaryOp, CastFnImpl, Catalog, ExecCtx, ScalarFnImpl};
use crate::error::{DbError, DbResult};
use crate::sql::ast::{AstBinOp, Expr, Lit, UnaryOp};
use crate::types::DataType;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// One column visible to name resolution.
#[derive(Debug, Clone)]
pub struct ScopeCol {
    /// Table binding name (alias or table name), lowercased; `None` for
    /// synthesized columns (aggregate outputs, group keys).
    pub binding: Option<String>,
    /// Column name, lowercased.
    pub name: String,
    pub ty: DataType,
}

/// The set of columns an expression may reference, in row order.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    pub cols: Vec<ScopeCol>,
}

impl Scope {
    /// Builds a scope from `(binding, name, type)` triples.
    pub fn new(cols: Vec<ScopeCol>) -> Scope {
        Scope { cols }
    }

    /// Resolves a (possibly qualified) column name to its row index.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> DbResult<usize> {
        let name_l = name.to_ascii_lowercase();
        let qual_l = qualifier.map(str::to_ascii_lowercase);
        let mut hits = self.cols.iter().enumerate().filter(|(_, c)| {
            c.name == name_l
                && match &qual_l {
                    Some(q) => c.binding.as_deref() == Some(q.as_str()),
                    None => true,
                }
        });
        match (hits.next(), hits.next()) {
            (Some((i, _)), None) => Ok(i),
            (None, _) => Err(DbError::binding(format!(
                "unknown column {}{name}",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default()
            ))),
            (Some(_), Some(_)) => Err(DbError::binding(format!(
                "ambiguous column reference {name}"
            ))),
        }
    }
}

/// Node kinds of a bound expression.
pub enum BoundKind {
    Literal(Value),
    ColumnRef(usize),
    /// Strict scalar routine or operator application.
    Apply {
        f: ScalarFnImpl,
        /// Vectorized kernel for the resolved overload, when one is
        /// registered. `None` forces the enclosing plan subtree onto the
        /// row path (see [`BoundExpr::is_batchable`]).
        batch: Option<BatchFnImpl>,
        args: Vec<BoundExpr>,
    },
    /// Strict cast application.
    Cast {
        f: CastFnImpl,
        arg: Box<BoundExpr>,
    },
    /// Built-in numeric negation.
    Neg(Box<BoundExpr>),
    /// Three-valued logic.
    And(Box<BoundExpr>, Box<BoundExpr>),
    Or(Box<BoundExpr>, Box<BoundExpr>),
    Not(Box<BoundExpr>),
    IsNull {
        arg: Box<BoundExpr>,
        negated: bool,
    },
    /// Non-strict searched CASE (simple CASE is lowered to searched form
    /// during binding).
    Case {
        branches: Vec<(BoundExpr, BoundExpr)>,
        else_: Option<Box<BoundExpr>>,
    },
    /// A named parameter left unresolved through binding and planning
    /// (deferred mode), looked up in the [`ExecCtx`] param map at
    /// evaluation time. `name` is lowercased. This is what makes a
    /// cached plan re-executable with fresh parameter values.
    Param {
        name: String,
    },
}

/// A typed, executable expression.
pub struct BoundExpr {
    pub ty: DataType,
    /// `true` when the value can depend on the transaction time.
    pub now_dep: bool,
    pub kind: BoundKind,
}

impl BoundExpr {
    fn literal(v: Value) -> BoundExpr {
        BoundExpr {
            ty: v.data_type(),
            now_dep: false,
            kind: BoundKind::Literal(v),
        }
    }

    /// `true` when the expression references no columns (candidate for
    /// constant folding, unless now-dependent).
    pub fn is_column_free(&self) -> bool {
        match &self.kind {
            // A deferred parameter reads the ExecCtx, not the row, so it
            // stays sargable (index probes evaluate it once per execution).
            BoundKind::Literal(_) | BoundKind::Param { .. } => true,
            BoundKind::ColumnRef(_) => false,
            BoundKind::Apply { args, .. } => args.iter().all(BoundExpr::is_column_free),
            BoundKind::Cast { arg, .. } | BoundKind::Neg(arg) | BoundKind::Not(arg) => {
                arg.is_column_free()
            }
            BoundKind::And(a, b) | BoundKind::Or(a, b) => a.is_column_free() && b.is_column_free(),
            BoundKind::IsNull { arg, .. } => arg.is_column_free(),
            BoundKind::Case { branches, else_ } => {
                branches
                    .iter()
                    .all(|(w, t)| w.is_column_free() && t.is_column_free())
                    && else_.as_ref().is_none_or(|e| e.is_column_free())
            }
        }
    }

    /// The column indexes this expression reads.
    pub fn collect_columns(&self, out: &mut Vec<usize>) {
        match &self.kind {
            BoundKind::Literal(_) | BoundKind::Param { .. } => {}
            BoundKind::ColumnRef(i) => out.push(*i),
            BoundKind::Apply { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
            BoundKind::Cast { arg, .. } | BoundKind::Neg(arg) | BoundKind::Not(arg) => {
                arg.collect_columns(out)
            }
            BoundKind::And(a, b) | BoundKind::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            BoundKind::IsNull { arg, .. } => arg.collect_columns(out),
            BoundKind::Case { branches, else_ } => {
                for (w, t) in branches {
                    w.collect_columns(out);
                    t.collect_columns(out);
                }
                if let Some(e) = else_ {
                    e.collect_columns(out);
                }
            }
        }
    }

    /// `true` when every function/operator application in the tree has a
    /// registered batch kernel, i.e. the expression can be evaluated a
    /// column at a time by the vectorized engine. Pure structural nodes
    /// (literals, column refs, AND/OR/NOT/CASE, IS NULL, casts) are
    /// always batchable; only an `Apply` without a kernel poisons the
    /// tree and forces the row fallback.
    pub fn is_batchable(&self) -> bool {
        match &self.kind {
            BoundKind::Literal(_) | BoundKind::Param { .. } | BoundKind::ColumnRef(_) => true,
            BoundKind::Apply { batch, args, .. } => {
                batch.is_some() && args.iter().all(BoundExpr::is_batchable)
            }
            BoundKind::Cast { arg, .. } | BoundKind::Neg(arg) | BoundKind::Not(arg) => {
                arg.is_batchable()
            }
            BoundKind::And(a, b) | BoundKind::Or(a, b) => a.is_batchable() && b.is_batchable(),
            BoundKind::IsNull { arg, .. } => arg.is_batchable(),
            BoundKind::Case { branches, else_ } => {
                branches
                    .iter()
                    .all(|(w, t)| w.is_batchable() && t.is_batchable())
                    && else_.as_ref().is_none_or(|e| e.is_batchable())
            }
        }
    }

    /// Rewrites every column reference through `map` (old index → new
    /// index). Used by projection pushdown when a scan materializes only
    /// a subset of the table's columns.
    pub fn remap_columns(&mut self, map: &std::collections::HashMap<usize, usize>) {
        match &mut self.kind {
            BoundKind::Literal(_) | BoundKind::Param { .. } => {}
            BoundKind::ColumnRef(i) => {
                *i = *map.get(i).expect("projection pushdown missed a column");
            }
            BoundKind::Apply { args, .. } => {
                for a in args {
                    a.remap_columns(map);
                }
            }
            BoundKind::Cast { arg, .. } | BoundKind::Neg(arg) | BoundKind::Not(arg) => {
                arg.remap_columns(map)
            }
            BoundKind::And(a, b) | BoundKind::Or(a, b) => {
                a.remap_columns(map);
                b.remap_columns(map);
            }
            BoundKind::IsNull { arg, .. } => arg.remap_columns(map),
            BoundKind::Case { branches, else_ } => {
                for (w, t) in branches {
                    w.remap_columns(map);
                    t.remap_columns(map);
                }
                if let Some(e) = else_ {
                    e.remap_columns(map);
                }
            }
        }
    }

    /// `true` when the expression contains a deferred parameter. Such an
    /// expression must never be constant-folded: its value belongs to
    /// one execution, not to the (cacheable) plan.
    pub fn contains_param(&self) -> bool {
        match &self.kind {
            BoundKind::Param { .. } => true,
            BoundKind::Literal(_) | BoundKind::ColumnRef(_) => false,
            BoundKind::Apply { args, .. } => args.iter().any(BoundExpr::contains_param),
            BoundKind::Cast { arg, .. } | BoundKind::Neg(arg) | BoundKind::Not(arg) => {
                arg.contains_param()
            }
            BoundKind::And(a, b) | BoundKind::Or(a, b) => a.contains_param() || b.contains_param(),
            BoundKind::IsNull { arg, .. } => arg.contains_param(),
            BoundKind::Case { branches, else_ } => {
                branches
                    .iter()
                    .any(|(w, t)| w.contains_param() || t.contains_param())
                    || else_.as_ref().is_some_and(|e| e.contains_param())
            }
        }
    }

    /// Evaluates against one input row.
    pub fn eval(&self, ctx: &ExecCtx, row: &[Value]) -> DbResult<Value> {
        match &self.kind {
            BoundKind::Literal(v) => Ok(v.clone()),
            BoundKind::Param { name } => ctx
                .param(name)
                .cloned()
                .ok_or_else(|| DbError::MissingParam { name: name.clone() }),
            BoundKind::ColumnRef(i) => Ok(row[*i].clone()),
            BoundKind::Apply { f, args, .. } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    let v = a.eval(ctx, row)?;
                    if v.is_null() {
                        return Ok(Value::Null); // strict semantics
                    }
                    vals.push(v);
                }
                f(ctx, &vals)
            }
            BoundKind::Cast { f, arg } => {
                let v = arg.eval(ctx, row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                f(ctx, &v)
            }
            BoundKind::Neg(arg) => match arg.eval(ctx, row)? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => i
                    .checked_neg()
                    .map(Value::Int)
                    .ok_or_else(|| DbError::exec("integer overflow in negation")),
                Value::Float(f) => Ok(Value::Float(-f)),
                other => Err(DbError::exec(format!("cannot negate {other:?}"))),
            },
            BoundKind::And(a, b) => {
                // Three-valued AND with short circuit on FALSE.
                match a.eval(ctx, row)? {
                    Value::Bool(false) => Ok(Value::Bool(false)),
                    av => match (av, b.eval(ctx, row)?) {
                        (_, Value::Bool(false)) => Ok(Value::Bool(false)),
                        (Value::Bool(true), Value::Bool(true)) => Ok(Value::Bool(true)),
                        _ => Ok(Value::Null),
                    },
                }
            }
            BoundKind::Or(a, b) => match a.eval(ctx, row)? {
                Value::Bool(true) => Ok(Value::Bool(true)),
                av => match (av, b.eval(ctx, row)?) {
                    (_, Value::Bool(true)) => Ok(Value::Bool(true)),
                    (Value::Bool(false), Value::Bool(false)) => Ok(Value::Bool(false)),
                    _ => Ok(Value::Null),
                },
            },
            BoundKind::Not(a) => match a.eval(ctx, row)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                Value::Null => Ok(Value::Null),
                other => Err(DbError::exec(format!("NOT applied to {other:?}"))),
            },
            BoundKind::IsNull { arg, negated } => {
                let v = arg.eval(ctx, row)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            BoundKind::Case { branches, else_ } => {
                for (when, then) in branches {
                    if when.eval(ctx, row)?.as_bool() == Some(true) {
                        return then.eval(ctx, row);
                    }
                }
                match else_ {
                    Some(e) => e.eval(ctx, row),
                    None => Ok(Value::Null),
                }
            }
        }
    }
}

/// SQL LIKE matching: `%` matches any run of characters, `_` any single
/// character. Implemented with the classic two-pointer backtracking scan
/// (linear for patterns with a single `%`, worst-case quadratic).
pub fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut ti, mut pi) = (0usize, 0usize);
    let (mut star, mut t_backtrack) = (None::<usize>, 0usize);
    while ti < t.len() {
        // The '%' wildcard must be handled before the literal branch:
        // a literal '%' in the *text* must not consume a pattern '%'.
        if pi < p.len() && p[pi] == '%' {
            star = Some(pi);
            t_backtrack = ti;
            pi += 1;
        } else if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if let Some(sp) = star {
            pi = sp + 1;
            t_backtrack += 1;
            ti = t_backtrack;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

/// Binds expressions for one statement.
pub struct Binder<'a> {
    pub catalog: &'a Catalog,
    pub params: &'a HashMap<String, Value>,
    /// When `true`, `:name` binds to a [`BoundKind::Param`] slot (typed
    /// from the provided value) instead of freezing the value into the
    /// tree — the mode used for cacheable SELECT plans.
    pub defer_params: bool,
}

impl<'a> Binder<'a> {
    /// Creates a binder over a catalog and a set of named parameters.
    pub fn new(catalog: &'a Catalog, params: &'a HashMap<String, Value>) -> Binder<'a> {
        Binder {
            catalog,
            params,
            defer_params: false,
        }
    }

    /// Creates a binder that leaves parameters unresolved (see
    /// [`Binder::defer_params`]).
    pub fn deferred(catalog: &'a Catalog, params: &'a HashMap<String, Value>) -> Binder<'a> {
        Binder {
            catalog,
            params,
            defer_params: true,
        }
    }

    /// Binds a scalar expression against a scope.
    pub fn bind(&self, expr: &Expr, scope: &Scope) -> DbResult<BoundExpr> {
        match expr {
            Expr::Literal(lit) => Ok(BoundExpr::literal(match lit {
                Lit::Int(i) => Value::Int(*i),
                Lit::Float(f) => Value::Float(*f),
                Lit::Str(s) => Value::Str(s.clone()),
                Lit::Bool(b) => Value::Bool(*b),
                Lit::Null => Value::Null,
            })),
            Expr::Column { qualifier, name } => {
                let idx = scope.resolve(qualifier.as_deref(), name)?;
                Ok(BoundExpr {
                    ty: scope.cols[idx].ty,
                    now_dep: false,
                    kind: BoundKind::ColumnRef(idx),
                })
            }
            Expr::BoundValue(v) => Ok(BoundExpr::literal(v.clone())),
            Expr::Subquery(_) | Expr::InSubquery { .. } => Err(DbError::binding(
                "subqueries must be resolved by the planner before binding                  (internal ordering error)",
            )),
            Expr::Param(name) => {
                let key = name.to_ascii_lowercase();
                let v = self
                    .params
                    .get(&key)
                    .ok_or_else(|| DbError::MissingParam { name: name.clone() })?;
                if self.defer_params {
                    // The provided value still supplies the type hint, so
                    // overload resolution and coercion behave exactly as in
                    // eager mode; only the *value* is looked up at exec time.
                    Ok(BoundExpr {
                        ty: v.data_type(),
                        now_dep: false,
                        kind: BoundKind::Param { name: key },
                    })
                } else {
                    Ok(BoundExpr::literal(v.clone()))
                }
            }
            Expr::Unary { op: UnaryOp::Not, expr } => {
                let inner = self.bind(expr, scope)?;
                if inner.ty != DataType::Bool && inner.ty != DataType::Null {
                    return Err(DbError::type_err(format!(
                        "NOT requires BOOLEAN, got {}",
                        self.catalog.type_name(inner.ty)
                    )));
                }
                Ok(BoundExpr {
                    ty: DataType::Bool,
                    now_dep: inner.now_dep,
                    kind: BoundKind::Not(Box::new(inner)),
                })
            }
            Expr::Unary { op: UnaryOp::Neg, expr } => {
                let inner = self.bind(expr, scope)?;
                if inner.ty.is_numeric() || inner.ty == DataType::Null {
                    let ty = if inner.ty == DataType::Null { DataType::Int } else { inner.ty };
                    return Ok(BoundExpr {
                        ty,
                        now_dep: inner.now_dep,
                        kind: BoundKind::Neg(Box::new(inner)),
                    });
                }
                // Fall back to a registered `neg` routine (e.g. -Span).
                self.bind_call("neg", vec![inner])
            }
            Expr::Binary { op, lhs, rhs } => self.bind_binary(*op, lhs, rhs, scope),
            Expr::IsNull { expr, negated } => {
                let inner = self.bind(expr, scope)?;
                Ok(BoundExpr {
                    ty: DataType::Bool,
                    now_dep: inner.now_dep,
                    kind: BoundKind::IsNull { arg: Box::new(inner), negated: *negated },
                })
            }
            Expr::Between { expr, low, high, negated } => {
                // x BETWEEN a AND b  ==>  x >= a AND x <= b
                let ge = Expr::binary(AstBinOp::Ge, (**expr).clone(), (**low).clone());
                let le = Expr::binary(AstBinOp::Le, (**expr).clone(), (**high).clone());
                let both = Expr::binary(AstBinOp::And, ge, le);
                let rewritten = if *negated {
                    Expr::Unary { op: UnaryOp::Not, expr: Box::new(both) }
                } else {
                    both
                };
                self.bind(&rewritten, scope)
            }
            Expr::InList { expr, list, negated } => {
                // x IN (a, b)  ==>  x = a OR x = b
                let mut it = list.iter();
                let first = it.next().ok_or_else(|| DbError::binding("empty IN list"))?;
                let mut acc = Expr::binary(AstBinOp::Eq, (**expr).clone(), first.clone());
                for item in it {
                    let eq = Expr::binary(AstBinOp::Eq, (**expr).clone(), item.clone());
                    acc = Expr::binary(AstBinOp::Or, acc, eq);
                }
                let rewritten = if *negated {
                    Expr::Unary { op: UnaryOp::Not, expr: Box::new(acc) }
                } else {
                    acc
                };
                self.bind(&rewritten, scope)
            }
            Expr::Call {
                name,
                args,
                star,
                distinct,
            } => {
                if *star {
                    return Err(DbError::binding(format!(
                        "{name}(*) is only valid as an aggregate in SELECT/HAVING"
                    )));
                }
                if *distinct {
                    return Err(DbError::binding(format!(
                        "{name}(DISTINCT …) is only valid as an aggregate in SELECT/HAVING"
                    )));
                }
                let mut bound = Vec::with_capacity(args.len());
                for a in args {
                    bound.push(self.bind(a, scope)?);
                }
                self.bind_call(name, bound)
            }
            Expr::Cast { expr, ty } => {
                let inner = self.bind(expr, scope)?;
                let target = self.catalog.lookup_type_name(&ty.name)?;
                self.coerce(inner, target, true)
            }
            Expr::Like { expr, pattern, negated } => {
                let text = self.bind(expr, scope)?;
                let pat = self.bind(pattern, scope)?;
                for side in [&text, &pat] {
                    if side.ty != DataType::Str && side.ty != DataType::Null {
                        return Err(DbError::type_err(format!(
                            "LIKE requires strings, got {}",
                            self.catalog.type_name(side.ty)
                        )));
                    }
                }
                let now_dep = text.now_dep || pat.now_dep;
                let matcher: ScalarFnImpl = Arc::new(|_, args: &[Value]| {
                    let (Some(t), Some(p)) = (args[0].as_str(), args[1].as_str()) else {
                        return Err(DbError::exec("LIKE expects strings"));
                    };
                    Ok(Value::Bool(like_match(t, p)))
                });
                let applied = BoundExpr {
                    ty: DataType::Bool,
                    now_dep,
                    kind: BoundKind::Apply {
                        batch: Some(crate::exec::elementwise(matcher.clone())),
                        f: matcher,
                        args: vec![text, pat],
                    },
                };
                Ok(if *negated {
                    BoundExpr {
                        ty: DataType::Bool,
                        now_dep,
                        kind: BoundKind::Not(Box::new(applied)),
                    }
                } else {
                    applied
                })
            }
            Expr::Case { operand, branches, else_ } => {
                // Lower simple CASE to searched CASE: each WHEN becomes
                // `operand = when`, reusing operator overload resolution.
                let searched: Vec<(Expr, Expr)> = match operand {
                    Some(op) => branches
                        .iter()
                        .map(|(w, t)| {
                            (Expr::binary(AstBinOp::Eq, (**op).clone(), w.clone()), t.clone())
                        })
                        .collect(),
                    None => branches.clone(),
                };
                let mut now_dep = false;
                let mut conds = Vec::with_capacity(searched.len());
                let mut results = Vec::with_capacity(searched.len() + 1);
                for (w, t) in &searched {
                    let cond = self.bind(w, scope)?;
                    if cond.ty != DataType::Bool && cond.ty != DataType::Null {
                        return Err(DbError::type_err("WHEN condition must be BOOLEAN"));
                    }
                    now_dep |= cond.now_dep;
                    conds.push(cond);
                    let result = self.bind(t, scope)?;
                    now_dep |= result.now_dep;
                    results.push(result);
                }
                let bound_else = match else_ {
                    Some(e) => {
                        let b = self.bind(e, scope)?;
                        now_dep |= b.now_dep;
                        Some(b)
                    }
                    None => None,
                };
                // Unify: pick the first result type every other result
                // implicitly casts to (NULLs unify with anything).
                let all_tys: Vec<DataType> = results
                    .iter()
                    .chain(bound_else.as_ref())
                    .map(|r| r.ty)
                    .filter(|t| *t != DataType::Null)
                    .collect();
                let unifies = |target: DataType| {
                    all_tys.iter().all(|&t| {
                        t == target || self.catalog.find_cast(t, target, false).is_some()
                    })
                };
                let result_ty = all_tys
                    .iter()
                    .copied()
                    .find(|&t| unifies(t))
                    .unwrap_or(DataType::Null);
                if result_ty == DataType::Null && !all_tys.is_empty() {
                    return Err(DbError::type_err(format!(
                        "CASE branches have irreconcilable types {:?}",
                        all_tys.iter().map(|t| self.catalog.type_name(*t)).collect::<Vec<_>>()
                    )));
                }
                let coerce_result = |this: &Self, r: BoundExpr| -> DbResult<BoundExpr> {
                    if result_ty == DataType::Null || r.ty == DataType::Null {
                        Ok(r)
                    } else {
                        this.coerce(r, result_ty, false)
                    }
                };
                let mut branches_bound = Vec::with_capacity(conds.len());
                for (cond, result) in conds.into_iter().zip(results) {
                    branches_bound.push((cond, coerce_result(self, result)?));
                }
                let else_bound = match bound_else {
                    Some(b) => Some(Box::new(coerce_result(self, b)?)),
                    None => None,
                };
                Ok(BoundExpr {
                    ty: result_ty,
                    now_dep,
                    kind: BoundKind::Case { branches: branches_bound, else_: else_bound },
                })
            }
        }
    }

    fn bind_binary(
        &self,
        op: AstBinOp,
        lhs: &Expr,
        rhs: &Expr,
        scope: &Scope,
    ) -> DbResult<BoundExpr> {
        match op {
            AstBinOp::And | AstBinOp::Or => {
                let l = self.bind(lhs, scope)?;
                let r = self.bind(rhs, scope)?;
                for side in [&l, &r] {
                    if side.ty != DataType::Bool && side.ty != DataType::Null {
                        return Err(DbError::type_err(format!(
                            "logical operator requires BOOLEAN, got {}",
                            self.catalog.type_name(side.ty)
                        )));
                    }
                }
                let now_dep = l.now_dep || r.now_dep;
                let kind = if op == AstBinOp::And {
                    BoundKind::And(Box::new(l), Box::new(r))
                } else {
                    BoundKind::Or(Box::new(l), Box::new(r))
                };
                Ok(BoundExpr {
                    ty: DataType::Bool,
                    now_dep,
                    kind,
                })
            }
            _ => {
                let cat_op = match op {
                    AstBinOp::Add => BinaryOp::Add,
                    AstBinOp::Sub => BinaryOp::Sub,
                    AstBinOp::Mul => BinaryOp::Mul,
                    AstBinOp::Div => BinaryOp::Div,
                    AstBinOp::Mod => BinaryOp::Mod,
                    AstBinOp::Eq => BinaryOp::Eq,
                    AstBinOp::Ne => BinaryOp::Ne,
                    AstBinOp::Lt => BinaryOp::Lt,
                    AstBinOp::Le => BinaryOp::Le,
                    AstBinOp::Gt => BinaryOp::Gt,
                    AstBinOp::Ge => BinaryOp::Ge,
                    AstBinOp::Concat => BinaryOp::Concat,
                    AstBinOp::And | AstBinOp::Or => unreachable!(),
                };
                let l = self.bind(lhs, scope)?;
                let r = self.bind(rhs, scope)?;
                if l.ty == DataType::Null && r.ty == DataType::Null {
                    // Strict semantics make the result NULL no matter
                    // which overload would be chosen.
                    let ty = if cat_op.is_comparison() {
                        DataType::Bool
                    } else {
                        DataType::Null
                    };
                    return Ok(BoundExpr {
                        ty,
                        now_dep: false,
                        kind: BoundKind::Literal(Value::Null),
                    });
                }
                let ov = self.catalog.resolve_operator(cat_op, l.ty, r.ty)?;
                let (ov_lhs, ov_rhs, ov_ret, ov_now, ov_f) =
                    (ov.lhs, ov.rhs, ov.ret, ov.now_dependent, ov.f.clone());
                let batch = self.catalog.operator_batch_kernel(cat_op, ov_lhs, ov_rhs);
                let l = self.coerce(l, ov_lhs, false)?;
                let r = self.coerce(r, ov_rhs, false)?;
                let now_dep = ov_now || l.now_dep || r.now_dep;
                Ok(BoundExpr {
                    ty: ov_ret,
                    now_dep,
                    kind: BoundKind::Apply {
                        f: ov_f,
                        batch,
                        args: vec![l, r],
                    },
                })
            }
        }
    }

    /// Resolves and applies a scalar routine to already-bound arguments.
    pub fn bind_call(&self, name: &str, args: Vec<BoundExpr>) -> DbResult<BoundExpr> {
        let arg_types: Vec<DataType> = args.iter().map(|a| a.ty).collect();
        let ov = self.catalog.resolve_function(name, &arg_types)?;
        let (params, ret, ov_now, f) = (ov.params.clone(), ov.ret, ov.now_dependent, ov.f.clone());
        let batch = self.catalog.function_batch_kernel(name, &params);
        let mut coerced = Vec::with_capacity(args.len());
        let mut now_dep = ov_now;
        for (a, &p) in args.into_iter().zip(&params) {
            let a = self.coerce(a, p, false)?;
            now_dep |= a.now_dep;
            coerced.push(a);
        }
        Ok(BoundExpr {
            ty: ret,
            now_dep,
            kind: BoundKind::Apply {
                f,
                batch,
                args: coerced,
            },
        })
    }

    /// Inserts a cast to `target` when needed. `explicit` selects whether
    /// explicit-only casts may be used (`::`/`CAST` vs automatic
    /// coercion on INSERT/arguments).
    pub fn coerce(&self, e: BoundExpr, target: DataType, explicit: bool) -> DbResult<BoundExpr> {
        if e.ty == target || e.ty == DataType::Null {
            return Ok(e);
        }
        let Some(cast) = self.catalog.find_cast(e.ty, target, explicit) else {
            return Err(DbError::NoOverload {
                what: format!(
                    "cast {} -> {}",
                    self.catalog.type_name(e.ty),
                    self.catalog.type_name(target)
                ),
            });
        };
        let now_dep = e.now_dep || cast.now_dependent;
        Ok(BoundExpr {
            ty: target,
            now_dep,
            kind: BoundKind::Cast {
                f: cast.f.clone(),
                arg: Box::new(e),
            },
        })
    }
}

/// Normalizes an AST expression for syntactic comparison (GROUP BY
/// matching): lowercases identifiers and routine names.
pub fn normalize_expr(e: &Expr) -> Expr {
    match e {
        Expr::Literal(_)
        | Expr::Param(_)
        | Expr::Subquery(_)
        | Expr::InSubquery { .. }
        | Expr::BoundValue(_) => e.clone(),
        Expr::Column { qualifier, name } => Expr::Column {
            qualifier: qualifier.as_ref().map(|q| q.to_ascii_lowercase()),
            name: name.to_ascii_lowercase(),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(normalize_expr(expr)),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(normalize_expr(lhs)),
            rhs: Box::new(normalize_expr(rhs)),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(normalize_expr(expr)),
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(normalize_expr(expr)),
            low: Box::new(normalize_expr(low)),
            high: Box::new(normalize_expr(high)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(normalize_expr(expr)),
            list: list.iter().map(normalize_expr).collect(),
            negated: *negated,
        },
        Expr::Call {
            name,
            args,
            star,
            distinct,
        } => Expr::Call {
            name: name.to_ascii_lowercase(),
            args: args.iter().map(normalize_expr).collect(),
            star: *star,
            distinct: *distinct,
        },
        Expr::Cast { expr, ty } => Expr::Cast {
            expr: Box::new(normalize_expr(expr)),
            ty: crate::sql::ast::TypeName {
                name: ty.name.to_ascii_lowercase(),
                arg: ty.arg,
            },
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(normalize_expr(expr)),
            pattern: Box::new(normalize_expr(pattern)),
            negated: *negated,
        },
        Expr::Case {
            operand,
            branches,
            else_,
        } => Expr::Case {
            operand: operand.as_ref().map(|o| Box::new(normalize_expr(o))),
            branches: branches
                .iter()
                .map(|(w, t)| (normalize_expr(w), normalize_expr(t)))
                .collect(),
            else_: else_.as_ref().map(|e| Box::new(normalize_expr(e))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;
    use crate::sql::parse_expression;

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        builtin::install(&mut c);
        c
    }

    fn ctx() -> ExecCtx {
        ExecCtx::new(0)
    }

    fn scope() -> Scope {
        Scope::new(vec![
            ScopeCol {
                binding: Some("t".into()),
                name: "a".into(),
                ty: DataType::Int,
            },
            ScopeCol {
                binding: Some("t".into()),
                name: "b".into(),
                ty: DataType::Str,
            },
            ScopeCol {
                binding: Some("u".into()),
                name: "a".into(),
                ty: DataType::Float,
            },
        ])
    }

    fn eval_const(catalog: &Catalog, text: &str) -> DbResult<Value> {
        let params = HashMap::new();
        let b = Binder::new(catalog, &params);
        let e = b.bind(&parse_expression(text).unwrap(), &Scope::default())?;
        e.eval(&ctx(), &[])
    }

    #[test]
    fn arithmetic_and_precedence() {
        let c = cat();
        assert_eq!(eval_const(&c, "1 + 2 * 3").unwrap().as_int(), Some(7));
        assert_eq!(eval_const(&c, "-(1 + 2)").unwrap().as_int(), Some(-3));
        assert_eq!(eval_const(&c, "7 % 3").unwrap().as_int(), Some(1));
        assert_eq!(eval_const(&c, "1 + 0.5").unwrap().as_float(), Some(1.5));
    }

    #[test]
    fn three_valued_logic() {
        let c = cat();
        assert_eq!(
            eval_const(&c, "NULL AND FALSE").unwrap().as_bool(),
            Some(false)
        );
        assert!(eval_const(&c, "NULL AND TRUE").unwrap().is_null());
        assert_eq!(
            eval_const(&c, "NULL OR TRUE").unwrap().as_bool(),
            Some(true)
        );
        assert!(eval_const(&c, "NULL OR FALSE").unwrap().is_null());
        assert!(eval_const(&c, "NOT NULL").unwrap().is_null());
        assert_eq!(
            eval_const(&c, "NULL IS NULL").unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(
            eval_const(&c, "1 IS NOT NULL").unwrap().as_bool(),
            Some(true)
        );
    }

    #[test]
    fn strictness_of_operators() {
        let c = cat();
        assert!(eval_const(&c, "1 + NULL").unwrap().is_null());
        assert!(eval_const(&c, "NULL = NULL").unwrap().is_null());
        assert!(eval_const(&c, "upper(NULL)").unwrap().is_null());
    }

    #[test]
    fn between_and_in_rewrites() {
        let c = cat();
        assert_eq!(
            eval_const(&c, "2 BETWEEN 1 AND 3").unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(
            eval_const(&c, "2 NOT BETWEEN 1 AND 3").unwrap().as_bool(),
            Some(false)
        );
        assert_eq!(
            eval_const(&c, "2 IN (1, 2, 3)").unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(
            eval_const(&c, "5 NOT IN (1, 2)").unwrap().as_bool(),
            Some(true)
        );
    }

    #[test]
    fn column_resolution() {
        let c = cat();
        let params = HashMap::new();
        let b = Binder::new(&c, &params);
        let s = scope();
        // Unqualified unique name resolves.
        let e = b.bind(&parse_expression("b").unwrap(), &s).unwrap();
        assert!(matches!(e.kind, BoundKind::ColumnRef(1)));
        // Unqualified ambiguous name errors.
        assert!(matches!(
            b.bind(&parse_expression("a").unwrap(), &s),
            Err(DbError::Binding { .. })
        ));
        // Qualification disambiguates.
        let e = b.bind(&parse_expression("u.a").unwrap(), &s).unwrap();
        assert!(matches!(e.kind, BoundKind::ColumnRef(2)));
        assert_eq!(e.ty, DataType::Float);
        // Unknown column errors.
        assert!(b.bind(&parse_expression("t.zzz").unwrap(), &s).is_err());
    }

    #[test]
    fn params_bind_as_literals() {
        let c = cat();
        let mut params = HashMap::new();
        params.insert("w".to_owned(), Value::Int(6));
        let b = Binder::new(&c, &params);
        let e = b
            .bind(&parse_expression("1 + :w").unwrap(), &Scope::default())
            .unwrap();
        assert_eq!(e.eval(&ctx(), &[]).unwrap().as_int(), Some(7));
        // Missing param.
        let empty = HashMap::new();
        let b = Binder::new(&c, &empty);
        assert!(matches!(
            b.bind(&parse_expression(":w").unwrap(), &Scope::default()),
            Err(DbError::MissingParam { .. })
        ));
    }

    #[test]
    fn explicit_cast_via_double_colon() {
        let c = cat();
        assert_eq!(eval_const(&c, "'42'::INT").unwrap().as_int(), Some(42));
        assert_eq!(
            eval_const(&c, "CAST(2.9 AS INT)").unwrap().as_int(),
            Some(2)
        );
        // Str -> Int is explicit-only; using it implicitly fails.
        assert!(eval_const(&c, "1 + '42'").is_err());
    }

    #[test]
    fn type_errors_reported() {
        let c = cat();
        assert!(matches!(
            eval_const(&c, "1 AND TRUE"),
            Err(DbError::Type { .. })
        ));
        assert!(matches!(eval_const(&c, "NOT 1"), Err(DbError::Type { .. })));
        // Paper §2: Chronon + Chronon is a type error; for built-ins the
        // analogue is Str + Str.
        assert!(matches!(
            eval_const(&c, "'a' + 'b'"),
            Err(DbError::NoOverload { .. })
        ));
    }

    #[test]
    fn is_column_free_and_collect() {
        let c = cat();
        let params = HashMap::new();
        let b = Binder::new(&c, &params);
        let s = scope();
        let e = b.bind(&parse_expression("t.a + 1").unwrap(), &s).unwrap();
        assert!(!e.is_column_free());
        let mut cols = Vec::new();
        e.collect_columns(&mut cols);
        assert_eq!(cols, vec![0]);
        let e = b.bind(&parse_expression("1 + 2").unwrap(), &s).unwrap();
        assert!(e.is_column_free());
    }

    #[test]
    fn normalize_for_group_by_matching() {
        let a = normalize_expr(&parse_expression("Patient").unwrap());
        let b = normalize_expr(&parse_expression("patient").unwrap());
        assert_eq!(a, b);
        let a = normalize_expr(&parse_expression("START(Valid)").unwrap());
        let b = normalize_expr(&parse_expression("start(valid)").unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn division_by_zero_reported_at_eval() {
        let c = cat();
        assert!(matches!(
            eval_const(&c, "1 / 0"),
            Err(DbError::Execution { .. })
        ));
    }
}
