//! Runtime values, including opaque UDT payloads.

use crate::types::{DataType, UdtId};
use std::any::Any;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Behaviour a user-defined type's payload must provide so the engine can
/// compare, hash, and group it without knowing its structure. This is the
/// minidb analogue of the support functions an Informix DataBlade supplies
/// for an opaque type.
pub trait UdtObject: Any + fmt::Debug + Send + Sync {
    /// Downcast support.
    fn as_any(&self) -> &dyn Any;
    /// Equality against another payload of the *same* UDT.
    fn eq_udt(&self, other: &dyn UdtObject) -> bool;
    /// Ordering against another payload of the same UDT, when the type is
    /// ordered (`None` for unordered types).
    fn cmp_udt(&self, other: &dyn UdtObject) -> Option<Ordering>;
    /// A stable hash of the payload (used for hash joins and GROUP BY).
    fn hash_udt(&self) -> u64;
}

/// An opaque UDT value: the type tag plus a shared payload.
#[derive(Clone)]
pub struct UdtValue {
    type_id: UdtId,
    payload: Arc<dyn UdtObject>,
}

impl UdtValue {
    /// Wraps a payload of the given registered type.
    pub fn new(type_id: UdtId, payload: Arc<dyn UdtObject>) -> UdtValue {
        UdtValue { type_id, payload }
    }

    /// The registered type of this value.
    pub fn type_id(&self) -> UdtId {
        self.type_id
    }

    /// The raw payload.
    pub fn payload(&self) -> &dyn UdtObject {
        self.payload.as_ref()
    }

    /// Downcasts the payload to a concrete Rust type.
    pub fn downcast<T: 'static>(&self) -> Option<&T> {
        self.payload.as_any().downcast_ref::<T>()
    }
}

impl fmt::Debug for UdtValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UdtValue(#{}, {:?})", self.type_id.0, self.payload)
    }
}

/// A runtime SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Udt(UdtValue),
}

impl Value {
    /// The value's runtime type.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
            Value::Udt(u) => DataType::Udt(u.type_id()),
        }
    }

    /// `true` for SQL `NULL`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL equality with two-valued semantics used for join keys and
    /// grouping: `NULL` equals `NULL` here (grouping semantics), floats
    /// compare by bits for NaN stability.
    pub fn eq_grouping(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Udt(a), Value::Udt(b)) => {
                a.type_id() == b.type_id() && a.payload().eq_udt(b.payload())
            }
            _ => false,
        }
    }

    /// Total ordering used by ORDER BY and B-tree indexes: `NULL` sorts
    /// first; values of the same type compare naturally; unordered UDTs
    /// fall back to hash order (stable within a process).
    pub fn cmp_ordering(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Float(_) => 2,
                Value::Str(_) => 3,
                Value::Udt(_) => 4,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Udt(a), Value::Udt(b)) if a.type_id() == b.type_id() => a
                .payload()
                .cmp_udt(b.payload())
                .unwrap_or_else(|| a.payload().hash_udt().cmp(&b.payload().hash_udt())),
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// Extracts an `i64`, accepting INT only.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extracts an `f64`, widening INT.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Extracts a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extracts a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extracts the UDT wrapper.
    pub fn as_udt(&self) -> Option<&UdtValue> {
        match self {
            Value::Udt(u) => Some(u),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    /// Structural equality with grouping semantics (`NULL == NULL`,
    /// floats by bits, UDTs via their `eq_udt` support function). SQL's
    /// three-valued `=` lives in the comparison operators, not here.
    fn eq(&self, other: &Value) -> bool {
        self.eq_grouping(other)
    }
}

/// A hashable/equatable wrapper for grouping keys and hash-join keys.
#[derive(Debug, Clone)]
pub struct GroupKey(pub Vec<Value>);

impl PartialEq for GroupKey {
    fn eq(&self, other: &GroupKey) -> bool {
        self.0.len() == other.0.len() && self.0.iter().zip(&other.0).all(|(a, b)| a.eq_grouping(b))
    }
}

impl Eq for GroupKey {}

impl Hash for GroupKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for v in &self.0 {
            match v {
                Value::Null => 0u8.hash(state),
                Value::Bool(b) => (1u8, b).hash(state),
                Value::Int(i) => (2u8, i).hash(state),
                Value::Float(f) => (3u8, f.to_bits()).hash(state),
                Value::Str(s) => (4u8, s).hash(state),
                Value::Udt(u) => (5u8, u.type_id().0, u.payload().hash_udt()).hash(state),
            }
        }
    }
}

/// One stored or produced tuple.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    #[derive(Debug, PartialEq)]
    struct Tag(i64);
    impl UdtObject for Tag {
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn eq_udt(&self, other: &dyn UdtObject) -> bool {
            other
                .as_any()
                .downcast_ref::<Tag>()
                .is_some_and(|o| o.0 == self.0)
        }
        fn cmp_udt(&self, other: &dyn UdtObject) -> Option<Ordering> {
            other
                .as_any()
                .downcast_ref::<Tag>()
                .map(|o| self.0.cmp(&o.0))
        }
        fn hash_udt(&self) -> u64 {
            self.0 as u64
        }
    }

    fn tag(v: i64) -> Value {
        Value::Udt(UdtValue::new(UdtId(1), Arc::new(Tag(v))))
    }

    #[test]
    fn data_types() {
        assert_eq!(Value::Int(1).data_type(), DataType::Int);
        assert_eq!(Value::Null.data_type(), DataType::Null);
        assert_eq!(tag(1).data_type(), DataType::Udt(UdtId(1)));
    }

    #[test]
    fn grouping_equality() {
        assert!(Value::Null.eq_grouping(&Value::Null));
        assert!(Value::Int(3).eq_grouping(&Value::Int(3)));
        assert!(!Value::Int(3).eq_grouping(&Value::Float(3.0)));
        assert!(tag(5).eq_grouping(&tag(5)));
        assert!(!tag(5).eq_grouping(&tag(6)));
    }

    #[test]
    fn ordering() {
        assert_eq!(Value::Null.cmp_ordering(&Value::Int(0)), Ordering::Less);
        assert_eq!(
            Value::Int(2).cmp_ordering(&Value::Float(2.5)),
            Ordering::Less
        );
        assert_eq!(
            Value::Str("a".into()).cmp_ordering(&Value::Str("b".into())),
            Ordering::Less
        );
        assert_eq!(tag(1).cmp_ordering(&tag(2)), Ordering::Less);
    }

    #[test]
    fn group_key_hash_and_eq() {
        let a = GroupKey(vec![Value::Int(1), Value::Str("x".into()), tag(7)]);
        let b = GroupKey(vec![Value::Int(1), Value::Str("x".into()), tag(7)]);
        assert_eq!(a, b);
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn downcast() {
        let v = tag(9);
        let u = v.as_udt().unwrap();
        assert_eq!(u.downcast::<Tag>().unwrap().0, 9);
        assert!(u.downcast::<String>().is_none());
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Str("s".into()).as_str(), Some("s"));
        assert!(Value::Null.as_int().is_none());
        assert!(Value::Null.is_null());
    }
}
