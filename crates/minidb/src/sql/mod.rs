//! SQL front-end: lexer, AST, and parser.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{
    AstBinOp, Expr, Lit, OrderItem, SelectItem, SelectStmt, Statement, TableRef, TypeName, UnaryOp,
};
pub use parser::{parse_expression, parse_statement};
