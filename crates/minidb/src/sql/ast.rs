//! Abstract syntax for the supported SQL dialect.

use crate::value::Value;

/// A literal value as written in the query text.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Null,
}

/// A type name with an optional length argument, e.g. `CHAR(20)` or
/// `Element`.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeName {
    pub name: String,
    pub arg: Option<u32>,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// Binary operators at the AST level (the catalog-level
/// [`BinaryOp`](crate::catalog::BinaryOp) excludes the logical ones,
/// which the binder lowers specially for three-valued logic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Concat,
    And,
    Or,
}

/// An unbound scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Lit),
    /// `name` or `qualifier.name`.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    /// Named parameter `:name`.
    Param(String),
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        op: AstBinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// Routine or aggregate call; `star` marks `COUNT(*)`, `distinct`
    /// marks `agg(DISTINCT expr)`.
    Call {
        name: String,
        args: Vec<Expr>,
        star: bool,
        distinct: bool,
    },
    /// `expr::Type` or `CAST(expr AS Type)`.
    Cast {
        expr: Box<Expr>,
        ty: TypeName,
    },
    /// `expr [NOT] LIKE pattern` (`%` any run, `_` any one character).
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    /// Searched or simple CASE expression.
    Case {
        /// `CASE operand WHEN …` (simple form); `None` for searched CASE.
        operand: Option<Box<Expr>>,
        /// `(WHEN, THEN)` pairs.
        branches: Vec<(Expr, Expr)>,
        else_: Option<Box<Expr>>,
    },
    /// `(SELECT …)` as a scalar value (uncorrelated; evaluated once per
    /// statement by the planner).
    Subquery(Box<SelectStmt>),
    /// `expr [NOT] IN (SELECT …)` (uncorrelated).
    InSubquery {
        expr: Box<Expr>,
        query: Box<SelectStmt>,
        negated: bool,
    },
    /// An engine value injected by the planner (subquery results,
    /// pre-bound parameters). Never produced by the parser.
    BoundValue(Value),
}

impl Expr {
    /// Convenience constructor for binary nodes.
    pub fn binary(op: AstBinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Convenience constructor for unqualified column refs.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_owned(),
        }
    }
}

/// One item in the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// An expression with an optional `AS alias`.
    Expr { expr: Expr, alias: Option<String> },
}

/// One table in the FROM clause (explicit `JOIN … ON` is normalized by
/// the parser into the from-list plus WHERE conjuncts).
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name the table is referred to by in the query.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// The time-travel point of a `SELECT … AS OF …` query.
#[derive(Debug, Clone, PartialEq)]
pub enum AsOf {
    /// `AS OF COMMIT <expr>` — a global commit sequence number.
    Commit(Expr),
    /// `AS OF <expr>` — a wall-clock instant (unix seconds, a temporal
    /// value with interval bounds, or NOW under a what-if override).
    Instant(Expr),
}

/// A SELECT statement, possibly the head of a UNION chain.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
    /// `UNION [ALL] <next arm>`; ORDER BY/LIMIT/OFFSET of the head apply
    /// to the whole chain.
    pub union: Option<(bool, Box<SelectStmt>)>,
    /// `AS OF …` time travel, only meaningful on the top-level statement.
    pub as_of: Option<AsOf>,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

/// The data source of an INSERT.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// `VALUES (…), (…)`.
    Values(Vec<Vec<Expr>>),
    /// `INSERT INTO t SELECT …`.
    Query(Box<SelectStmt>),
}

/// Any supported statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable {
        name: String,
        columns: Vec<(String, TypeName)>,
    },
    CreateIndex {
        name: String,
        table: String,
        column: String,
    },
    DropTable {
        name: String,
        if_exists: bool,
    },
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        source: InsertSource,
    },
    Update {
        table: String,
        sets: Vec<(String, Expr)>,
        where_clause: Option<Expr>,
    },
    Delete {
        table: String,
        where_clause: Option<Expr>,
    },
    Select(Box<SelectStmt>),
    /// `EXPLAIN [ANALYZE] SELECT …` — returns the physical plan shape as
    /// one row; with ANALYZE, executes the query and returns the plan
    /// tree annotated with per-operator row counts and timings.
    Explain {
        inner: Box<Statement>,
        analyze: bool,
    },
    /// `SHOW STATS` — the session's query-metrics counters as
    /// `(metric, value)` rows.
    ShowStats,
    /// `CREATE VIEW name AS SELECT …`. `body_start` is the byte offset of
    /// the SELECT in the original statement text, so the session can
    /// store the view body verbatim.
    CreateView {
        name: String,
        query: Box<SelectStmt>,
        body_start: usize,
    },
    /// `DROP VIEW [IF EXISTS] name`.
    DropView {
        name: String,
        if_exists: bool,
    },
    /// `BEGIN [WORK | TRANSACTION]` — opens a multi-statement
    /// transaction on the session.
    Begin,
    /// `COMMIT [WORK]` — commits the open transaction atomically.
    Commit,
    /// `ROLLBACK [WORK]` — discards the open transaction.
    Rollback,
}
