//! Recursive-descent parser for the supported SQL dialect.
//!
//! Supported statements: `CREATE TABLE`, `CREATE INDEX`, `DROP TABLE`,
//! `INSERT`, `UPDATE`, `DELETE`, and `SELECT` with joins (comma-style and
//! `[INNER] JOIN … ON`, normalized into the from-list plus WHERE
//! conjuncts), `WHERE`, `GROUP BY`, `HAVING`, `ORDER BY`, `LIMIT`,
//! `DISTINCT`, named parameters `:name`, and both Informix-style
//! `expr::Type` casts (used throughout the paper) and `CAST(expr AS t)`.

use super::ast::*;
use super::lexer::{lex, Token, TokenKind};
use crate::error::{DbError, DbResult};

/// Parses one SQL statement (an optional trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> DbResult<Statement> {
    let tokens = lex(sql)?;
    let mut p = Parser {
        tokens,
        i: 0,
        depth: 0,
    };
    let stmt = p.statement()?;
    p.eat_sym(";");
    p.expect_eof()?;
    Ok(stmt)
}

/// Parses a standalone scalar expression (used by tests and by the
/// layered stratum's generated fragments).
pub fn parse_expression(text: &str) -> DbResult<Expr> {
    let tokens = lex(text)?;
    let mut p = Parser {
        tokens,
        i: 0,
        depth: 0,
    };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Maximum expression nesting depth — guards the recursive-descent
/// parser against stack exhaustion on adversarial input.
const MAX_EXPR_DEPTH: usize = 64;

struct Parser {
    tokens: Vec<Token>,
    i: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.i].kind
    }

    fn pos(&self) -> usize {
        self.tokens[self.i].pos
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.i].kind.clone();
        if self.i + 1 < self.tokens.len() {
            self.i += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> DbError {
        DbError::Syntax {
            pos: self.pos(),
            message: message.into(),
        }
    }

    /// Is the current token the given keyword (case-insensitive)?
    fn at_kw(&self, kw: &str) -> bool {
        self.peek()
            .ident()
            .is_some_and(|s| s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn at_sym(&self, s: &str) -> bool {
        matches!(self.peek(), TokenKind::Sym(x) if *x == s)
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if self.at_sym(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> DbResult<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> DbResult<String> {
        match self.peek() {
            TokenKind::Ident(_) => match self.bump() {
                TokenKind::Ident(s) => Ok(s),
                _ => unreachable!(),
            },
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_eof(&self) -> DbResult<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing input {:?}", self.peek())))
        }
    }

    // ----- statements ----------------------------------------------------

    fn statement(&mut self) -> DbResult<Statement> {
        if self.eat_kw("explain") {
            let analyze = self.eat_kw("analyze");
            let inner = self.statement()?;
            if !matches!(inner, Statement::Select(_)) {
                return Err(self.err("EXPLAIN supports SELECT statements"));
            }
            return Ok(Statement::Explain {
                inner: Box::new(inner),
                analyze,
            });
        }
        if self.eat_kw("show") {
            self.expect_kw("stats")?;
            return Ok(Statement::ShowStats);
        }
        if self.at_kw("create") {
            self.bump();
            if self.eat_kw("table") {
                return self.create_table();
            }
            if self.eat_kw("index") {
                return self.create_index();
            }
            if self.eat_kw("view") {
                let name = self.expect_ident()?;
                self.expect_kw("as")?;
                let body_start = self.pos();
                let query = self.select()?;
                return Ok(Statement::CreateView {
                    name,
                    query: Box::new(query),
                    body_start,
                });
            }
            return Err(self.err("expected TABLE, INDEX, or VIEW after CREATE"));
        }
        if self.eat_kw("drop") {
            let is_view = if self.eat_kw("table") {
                false
            } else if self.eat_kw("view") {
                true
            } else {
                return Err(self.err("expected TABLE or VIEW after DROP"));
            };
            let if_exists = if self.eat_kw("if") {
                self.expect_kw("exists")?;
                true
            } else {
                false
            };
            let name = self.expect_ident()?;
            return Ok(if is_view {
                Statement::DropView { name, if_exists }
            } else {
                Statement::DropTable { name, if_exists }
            });
        }
        if self.eat_kw("insert") {
            return self.insert();
        }
        if self.eat_kw("update") {
            return self.update();
        }
        if self.eat_kw("delete") {
            return self.delete();
        }
        if self.eat_kw("begin") {
            if !self.eat_kw("work") {
                self.eat_kw("transaction");
            }
            return Ok(Statement::Begin);
        }
        if self.eat_kw("commit") {
            self.eat_kw("work");
            return Ok(Statement::Commit);
        }
        if self.eat_kw("rollback") {
            self.eat_kw("work");
            return Ok(Statement::Rollback);
        }
        if self.at_kw("select") {
            let mut sel = self.select()?;
            // `AS OF …` time travel binds to the whole statement (after
            // any UNION arms and trailing ORDER BY/LIMIT).
            if self.eat_kw("as") {
                self.expect_kw("of")?;
                sel.as_of = Some(if self.eat_kw("commit") {
                    AsOf::Commit(self.expr()?)
                } else {
                    AsOf::Instant(self.expr()?)
                });
            }
            return Ok(Statement::Select(Box::new(sel)));
        }
        Err(self.err(format!("expected a statement, found {:?}", self.peek())))
    }

    fn create_table(&mut self) -> DbResult<Statement> {
        let name = self.expect_ident()?;
        self.expect_sym("(")?;
        let mut columns = Vec::new();
        loop {
            let col = self.expect_ident()?;
            let ty = self.type_name()?;
            columns.push((col, ty));
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn create_index(&mut self) -> DbResult<Statement> {
        let name = self.expect_ident()?;
        self.expect_kw("on")?;
        let table = self.expect_ident()?;
        self.expect_sym("(")?;
        let column = self.expect_ident()?;
        self.expect_sym(")")?;
        Ok(Statement::CreateIndex {
            name,
            table,
            column,
        })
    }

    fn type_name(&mut self) -> DbResult<TypeName> {
        let mut name = self.expect_ident()?;
        // Allow `DOUBLE PRECISION`.
        if name.eq_ignore_ascii_case("double") && self.at_kw("precision") {
            self.bump();
            name = "double precision".to_owned();
        }
        let arg = if self.eat_sym("(") {
            let n = match self.bump() {
                TokenKind::Int(n) if n >= 0 => n as u32,
                other => return Err(self.err(format!("expected length, found {other:?}"))),
            };
            self.expect_sym(")")?;
            Some(n)
        } else {
            None
        };
        Ok(TypeName { name, arg })
    }

    fn insert(&mut self) -> DbResult<Statement> {
        self.expect_kw("into")?;
        let table = self.expect_ident()?;
        let columns = if self.eat_sym("(") {
            let mut cols = vec![self.expect_ident()?];
            while self.eat_sym(",") {
                cols.push(self.expect_ident()?);
            }
            self.expect_sym(")")?;
            Some(cols)
        } else {
            None
        };
        if self.at_kw("select") {
            let source = InsertSource::Query(Box::new(self.select()?));
            return Ok(Statement::Insert {
                table,
                columns,
                source,
            });
        }
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_sym("(")?;
            let mut row = vec![self.expr()?];
            while self.eat_sym(",") {
                row.push(self.expr()?);
            }
            self.expect_sym(")")?;
            rows.push(row);
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            source: InsertSource::Values(rows),
        })
    }

    fn update(&mut self) -> DbResult<Statement> {
        let table = self.expect_ident()?;
        self.expect_kw("set")?;
        let mut sets = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect_sym("=")?;
            sets.push((col, self.expr()?));
            if !self.eat_sym(",") {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            where_clause,
        })
    }

    fn delete(&mut self) -> DbResult<Statement> {
        self.expect_kw("from")?;
        let table = self.expect_ident()?;
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            table,
            where_clause,
        })
    }

    /// Parses a SELECT possibly followed by `UNION [ALL] SELECT …`; the
    /// trailing ORDER BY/LIMIT/OFFSET bind to the whole chain.
    fn select(&mut self) -> DbResult<SelectStmt> {
        let mut head = self.select_core()?;
        let mut tail: Vec<(bool, SelectStmt)> = Vec::new();
        while self.eat_kw("union") {
            let all = self.eat_kw("all");
            tail.push((all, self.select_core()?));
        }
        if !tail.is_empty() {
            // ORDER BY/LIMIT may only appear on the final arm; move them
            // to the head, which owns them for the whole chain.
            for (_, arm) in tail
                .iter()
                .take(tail.len() - 1)
                .chain(std::iter::once(&(false, head.clone())))
            {
                if !arm.order_by.is_empty() || arm.limit.is_some() || arm.offset.is_some() {
                    return Err(self.err("ORDER BY/LIMIT in a UNION must follow the last arm"));
                }
            }
            let last = tail.len() - 1;
            head.order_by = tail[last].1.order_by.drain(..).collect();
            head.limit = tail[last].1.limit.take();
            head.offset = tail[last].1.offset.take();
            // Fold the arms into a right-nested chain.
            let mut chain: Option<(bool, Box<SelectStmt>)> = None;
            for (all, arm) in tail.into_iter().rev() {
                let mut arm = arm;
                arm.union = chain;
                chain = Some((all, Box::new(arm)));
            }
            head.union = chain;
        }
        Ok(head)
    }

    /// One SELECT arm (no UNION handling).
    fn select_core(&mut self) -> DbResult<SelectStmt> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut items = vec![self.select_item()?];
        while self.eat_sym(",") {
            items.push(self.select_item()?);
        }
        let mut from = Vec::new();
        let mut join_preds: Vec<Expr> = Vec::new();
        if self.eat_kw("from") {
            from.push(self.table_ref()?);
            loop {
                if self.eat_sym(",") {
                    from.push(self.table_ref()?);
                } else if self.at_kw("join") || self.at_kw("inner") {
                    self.eat_kw("inner");
                    self.expect_kw("join")?;
                    from.push(self.table_ref()?);
                    self.expect_kw("on")?;
                    join_preds.push(self.expr()?);
                } else {
                    break;
                }
            }
        }
        let mut where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        // Fold JOIN … ON conditions into the WHERE clause (inner joins only).
        for p in join_preds {
            where_clause = Some(match where_clause {
                Some(w) => Expr::binary(AstBinOp::And, w, p),
                None => p,
            });
        }
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.expr()?);
            while self.eat_sym(",") {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.bump() {
                TokenKind::Int(n) if n >= 0 => Some(n as u64),
                other => return Err(self.err(format!("expected LIMIT count, found {other:?}"))),
            }
        } else {
            None
        };
        let offset = if self.eat_kw("offset") {
            match self.bump() {
                TokenKind::Int(n) if n >= 0 => Some(n as u64),
                other => return Err(self.err(format!("expected OFFSET count, found {other:?}"))),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            offset,
            union: None,
            as_of: None,
        })
    }

    fn select_item(&mut self) -> DbResult<SelectItem> {
        if self.eat_sym("*") {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let TokenKind::Ident(name) = self.peek().clone() {
            if matches!(
                self.tokens.get(self.i + 1).map(|t| &t.kind),
                Some(TokenKind::Sym("."))
            ) && matches!(
                self.tokens.get(self.i + 2).map(|t| &t.kind),
                Some(TokenKind::Sym("*"))
            ) {
                self.bump();
                self.bump();
                self.bump();
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("as") {
            // See table_ref: `AS OF` is the time-travel clause.
            if self.at_kw("of") {
                self.i -= 1;
                None
            } else {
                Some(self.expect_ident()?)
            }
        } else if let TokenKind::Ident(id) = self.peek() {
            // Bare alias, but not a clause keyword.
            const CLAUSES: [&str; 12] = [
                "from", "where", "group", "having", "order", "limit", "offset", "join", "inner",
                "on", "union", "like",
            ];
            if CLAUSES.iter().any(|k| id.eq_ignore_ascii_case(k)) {
                None
            } else {
                Some(self.expect_ident()?)
            }
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> DbResult<TableRef> {
        let table = self.expect_ident()?;
        let alias = if self.eat_kw("as") {
            // `… FROM t AS OF <point>`: that AS belongs to the
            // statement-level time-travel clause, not an alias — back
            // off and let the statement parser consume it.
            if self.at_kw("of") {
                self.i -= 1;
                None
            } else {
                Some(self.expect_ident()?)
            }
        } else if let TokenKind::Ident(id) = self.peek() {
            const CLAUSES: [&str; 11] = [
                "where", "group", "having", "order", "limit", "offset", "join", "inner", "on",
                "set", "union",
            ];
            if CLAUSES.iter().any(|k| id.eq_ignore_ascii_case(k)) {
                None
            } else {
                Some(self.expect_ident()?)
            }
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    // ----- expressions (precedence climbing) ------------------------------

    fn expr(&mut self) -> DbResult<Expr> {
        if self.depth >= MAX_EXPR_DEPTH {
            return Err(self.err(format!(
                "expression nesting exceeds the maximum depth of {MAX_EXPR_DEPTH}"
            )));
        }
        self.depth += 1;
        let r = self.or_expr();
        self.depth -= 1;
        r
    }

    fn or_expr(&mut self) -> DbResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::binary(AstBinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> DbResult<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            lhs = Expr::binary(AstBinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> DbResult<Expr> {
        if self.eat_kw("not") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> DbResult<Expr> {
        let lhs = self.additive()?;
        // IS [NOT] NULL
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        // [NOT] BETWEEN / IN
        let negated = self.eat_kw("not");
        if self.eat_kw("between") {
            let low = self.additive()?;
            self.expect_kw("and")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("in") {
            self.expect_sym("(")?;
            if self.at_kw("select") {
                let sub = self.select()?;
                self.expect_sym(")")?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(lhs),
                    query: Box::new(sub),
                    negated,
                });
            }
            let mut list = vec![self.expr()?];
            while self.eat_sym(",") {
                list.push(self.expr()?);
            }
            self.expect_sym(")")?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_kw("like") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(lhs),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(self.err("expected BETWEEN, IN, or LIKE after NOT"));
        }
        let op = if self.eat_sym("=") {
            AstBinOp::Eq
        } else if self.eat_sym("<>") {
            AstBinOp::Ne
        } else if self.eat_sym("<=") {
            AstBinOp::Le
        } else if self.eat_sym(">=") {
            AstBinOp::Ge
        } else if self.eat_sym("<") {
            AstBinOp::Lt
        } else if self.eat_sym(">") {
            AstBinOp::Gt
        } else {
            return Ok(lhs);
        };
        let rhs = self.additive()?;
        Ok(Expr::binary(op, lhs, rhs))
    }

    fn additive(&mut self) -> DbResult<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = if self.eat_sym("+") {
                AstBinOp::Add
            } else if self.eat_sym("-") {
                AstBinOp::Sub
            } else if self.eat_sym("||") {
                AstBinOp::Concat
            } else {
                return Ok(lhs);
            };
            let rhs = self.multiplicative()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
    }

    fn multiplicative(&mut self) -> DbResult<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = if self.eat_sym("*") {
                AstBinOp::Mul
            } else if self.eat_sym("/") {
                AstBinOp::Div
            } else if self.eat_sym("%") {
                AstBinOp::Mod
            } else {
                return Ok(lhs);
            };
            let rhs = self.unary()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
    }

    fn unary(&mut self) -> DbResult<Expr> {
        if self.eat_sym("-") {
            let inner = self.unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        self.postfix()
    }

    /// Postfix `::Type` casts (Informix explicit-cast syntax, paper §2).
    fn postfix(&mut self) -> DbResult<Expr> {
        let mut e = self.primary()?;
        while self.eat_sym("::") {
            let ty = self.type_name()?;
            e = Expr::Cast {
                expr: Box::new(e),
                ty,
            };
        }
        Ok(e)
    }

    fn primary(&mut self) -> DbResult<Expr> {
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::Literal(Lit::Int(n)))
            }
            TokenKind::Float(f) => {
                self.bump();
                Ok(Expr::Literal(Lit::Float(f)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Lit::Str(s)))
            }
            TokenKind::Param(name) => {
                self.bump();
                Ok(Expr::Param(name))
            }
            TokenKind::Sym("(") => {
                self.bump();
                if self.at_kw("select") {
                    let sub = self.select()?;
                    self.expect_sym(")")?;
                    return Ok(Expr::Subquery(Box::new(sub)));
                }
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            TokenKind::Ident(id) => {
                if id.eq_ignore_ascii_case("null") {
                    self.bump();
                    return Ok(Expr::Literal(Lit::Null));
                }
                if id.eq_ignore_ascii_case("true") {
                    self.bump();
                    return Ok(Expr::Literal(Lit::Bool(true)));
                }
                if id.eq_ignore_ascii_case("false") {
                    self.bump();
                    return Ok(Expr::Literal(Lit::Bool(false)));
                }
                if id.eq_ignore_ascii_case("case") {
                    self.bump();
                    return self.case_expr();
                }
                const RESERVED: [&str; 25] = [
                    "select", "from", "where", "group", "by", "having", "order", "limit", "and",
                    "or", "not", "join", "inner", "on", "as", "set", "values", "into", "update",
                    "delete", "create", "drop", "table", "between", "distinct",
                ];
                if RESERVED.iter().any(|k| id.eq_ignore_ascii_case(k)) {
                    return Err(self.err(format!("unexpected keyword {id} in expression")));
                }
                if id.eq_ignore_ascii_case("cast") {
                    self.bump();
                    self.expect_sym("(")?;
                    let inner = self.expr()?;
                    self.expect_kw("as")?;
                    let ty = self.type_name()?;
                    self.expect_sym(")")?;
                    return Ok(Expr::Cast {
                        expr: Box::new(inner),
                        ty,
                    });
                }
                self.bump();
                // Function call?
                if self.eat_sym("(") {
                    if self.eat_sym("*") {
                        self.expect_sym(")")?;
                        return Ok(Expr::Call {
                            name: id,
                            args: vec![],
                            star: true,
                            distinct: false,
                        });
                    }
                    let distinct = self.eat_kw("distinct");
                    let mut args = Vec::new();
                    if !self.at_sym(")") {
                        args.push(self.expr()?);
                        while self.eat_sym(",") {
                            args.push(self.expr()?);
                        }
                    }
                    self.expect_sym(")")?;
                    return Ok(Expr::Call {
                        name: id,
                        args,
                        star: false,
                        distinct,
                    });
                }
                // Qualified column?
                if self.eat_sym(".") {
                    let name = self.expect_ident()?;
                    return Ok(Expr::Column {
                        qualifier: Some(id),
                        name,
                    });
                }
                Ok(Expr::Column {
                    qualifier: None,
                    name: id,
                })
            }
            other => Err(self.err(format!("expected an expression, found {other:?}"))),
        }
    }
}

impl Parser {
    /// Parses the remainder of a CASE expression (the `CASE` keyword is
    /// already consumed): simple (`CASE x WHEN v THEN r …`) or searched
    /// (`CASE WHEN cond THEN r …`), with optional ELSE, closed by END.
    fn case_expr(&mut self) -> DbResult<Expr> {
        let operand = if self.at_kw("when") {
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        let mut branches = Vec::new();
        while self.eat_kw("when") {
            let w = self.expr()?;
            self.expect_kw("then")?;
            let t = self.expr()?;
            branches.push((w, t));
        }
        if branches.is_empty() {
            return Err(self.err("CASE requires at least one WHEN branch"));
        }
        let else_ = if self.eat_kw("else") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("end")?;
        Ok(Expr::Case {
            operand,
            branches,
            else_,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_create_table() {
        let s = parse_statement(
            "CREATE TABLE Prescription (doctor CHAR(20), patient CHAR(20), \
             patientDOB Chronon, drug CHAR(20), dosage INT, frequency Span, valid Element)",
        )
        .unwrap();
        match s {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "Prescription");
                assert_eq!(columns.len(), 7);
                assert_eq!(
                    columns[0].1,
                    TypeName {
                        name: "CHAR".into(),
                        arg: Some(20)
                    }
                );
                assert_eq!(
                    columns[6].1,
                    TypeName {
                        name: "Element".into(),
                        arg: None
                    }
                );
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn parses_paper_insert() {
        let s = parse_statement(
            "INSERT INTO Prescription VALUES ('Dr.Pepper', 'Mr.Showbiz', '1955-03-15', \
             'Diabeta', 1, '0 08:00:00', '{[1999-10-01, NOW]}')",
        )
        .unwrap();
        match s {
            Statement::Insert {
                table,
                columns,
                source,
            } => {
                assert_eq!(table, "Prescription");
                assert!(columns.is_none());
                let InsertSource::Values(rows) = source else {
                    panic!("expected VALUES")
                };
                assert_eq!(rows.len(), 1);
                assert_eq!(rows[0].len(), 7);
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn parses_paper_tylenol_query() {
        let s = parse_statement(
            "SELECT patient FROM Prescription \
             WHERE drug = 'Tylenol' AND start(valid) - patientDOB < '7 00:00:00'::Span * :w",
        )
        .unwrap();
        let Statement::Select(sel) = s else {
            panic!("not a select")
        };
        assert_eq!(sel.items.len(), 1);
        let Some(Expr::Binary {
            op: AstBinOp::And,
            rhs,
            ..
        }) = sel.where_clause
        else {
            panic!("expected AND")
        };
        // rhs: start(valid) - patientDOB < cast * :w
        let Expr::Binary {
            op: AstBinOp::Lt,
            rhs: mul,
            ..
        } = *rhs
        else {
            panic!("expected <")
        };
        let Expr::Binary {
            op: AstBinOp::Mul,
            lhs: cast,
            rhs: param,
        } = *mul
        else {
            panic!("expected *")
        };
        assert!(matches!(*cast, Expr::Cast { .. }));
        assert!(matches!(*param, Expr::Param(ref p) if p == "w"));
    }

    #[test]
    fn parses_paper_self_join() {
        let s = parse_statement(
            "SELECT p1.*, p2.*, intersect(p1.valid, p2.valid) \
             FROM Prescription p1, Prescription p2 \
             WHERE p1.drug = 'Diabeta' AND p2.drug = 'Aspirin' \
               AND overlaps(p1.valid, p2.valid)",
        )
        .unwrap();
        let Statement::Select(sel) = s else {
            panic!("not a select")
        };
        assert_eq!(sel.from.len(), 2);
        assert_eq!(sel.from[0].binding_name(), "p1");
        assert!(matches!(sel.items[0], SelectItem::QualifiedWildcard(ref q) if q == "p1"));
        assert!(matches!(
            sel.items[2],
            SelectItem::Expr { expr: Expr::Call { ref name, .. }, .. } if name == "intersect"
        ));
    }

    #[test]
    fn parses_paper_group_union() {
        let s = parse_statement(
            "SELECT patient, length(group_union(valid)) FROM Prescription GROUP BY patient",
        )
        .unwrap();
        let Statement::Select(sel) = s else {
            panic!("not a select")
        };
        assert_eq!(sel.group_by.len(), 1);
    }

    #[test]
    fn join_on_normalized_into_where() {
        let s =
            parse_statement("SELECT a.x FROM t a JOIN u b ON a.id = b.id WHERE a.x > 1").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.from.len(), 2);
        // WHERE (a.x > 1) AND (a.id = b.id)
        assert!(matches!(
            sel.where_clause,
            Some(Expr::Binary {
                op: AstBinOp::And,
                ..
            })
        ));
    }

    #[test]
    fn precedence() {
        let e = parse_expression("1 + 2 * 3").unwrap();
        let Expr::Binary {
            op: AstBinOp::Add,
            rhs,
            ..
        } = e
        else {
            panic!()
        };
        assert!(matches!(
            *rhs,
            Expr::Binary {
                op: AstBinOp::Mul,
                ..
            }
        ));

        let e = parse_expression("NOT a = 1 OR b = 2 AND c = 3").unwrap();
        // OR(NOT(a=1), AND(b=2, c=3))
        let Expr::Binary {
            op: AstBinOp::Or,
            lhs,
            rhs,
        } = e
        else {
            panic!()
        };
        assert!(matches!(
            *lhs,
            Expr::Unary {
                op: UnaryOp::Not,
                ..
            }
        ));
        assert!(matches!(
            *rhs,
            Expr::Binary {
                op: AstBinOp::And,
                ..
            }
        ));
    }

    #[test]
    fn cast_binds_tighter_than_unary_minus() {
        let e = parse_expression("-x::INT").unwrap();
        let Expr::Unary {
            op: UnaryOp::Neg,
            expr,
        } = e
        else {
            panic!()
        };
        assert!(matches!(*expr, Expr::Cast { .. }));
    }

    #[test]
    fn chained_casts() {
        let e = parse_expression("'1999-01-01'::Chronon::Period").unwrap();
        let Expr::Cast { expr, ty } = e else { panic!() };
        assert_eq!(ty.name, "Period");
        assert!(matches!(*expr, Expr::Cast { .. }));
    }

    #[test]
    fn between_in_isnull() {
        assert!(matches!(
            parse_expression("x BETWEEN 1 AND 5").unwrap(),
            Expr::Between { negated: false, .. }
        ));
        assert!(matches!(
            parse_expression("x NOT IN (1, 2, 3)").unwrap(),
            Expr::InList { negated: true, .. }
        ));
        assert!(matches!(
            parse_expression("x IS NOT NULL").unwrap(),
            Expr::IsNull { negated: true, .. }
        ));
    }

    #[test]
    fn count_star_and_cast_call() {
        assert!(matches!(
            parse_expression("COUNT(*)").unwrap(),
            Expr::Call { star: true, .. }
        ));
        let e = parse_expression("CAST(x AS FLOAT)").unwrap();
        assert!(matches!(e, Expr::Cast { ref ty, .. } if ty.name == "FLOAT"));
    }

    #[test]
    fn update_delete_drop() {
        assert!(matches!(
            parse_statement("UPDATE t SET a = 1, b = 'x' WHERE c = 2").unwrap(),
            Statement::Update { ref sets, .. } if sets.len() == 2
        ));
        assert!(matches!(
            parse_statement("DELETE FROM t WHERE a = 1").unwrap(),
            Statement::Delete { .. }
        ));
        assert!(matches!(
            parse_statement("DROP TABLE IF EXISTS t").unwrap(),
            Statement::DropTable {
                if_exists: true,
                ..
            }
        ));
    }

    #[test]
    fn multi_row_insert_with_columns() {
        let s = parse_statement("INSERT INTO t (a, b) VALUES (1, 2), (3, 4)").unwrap();
        let Statement::Insert {
            columns, source, ..
        } = s
        else {
            panic!()
        };
        assert_eq!(columns.unwrap(), vec!["a", "b"]);
        let InsertSource::Values(rows) = source else {
            panic!("expected VALUES")
        };
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn order_limit_distinct() {
        let s = parse_statement("SELECT DISTINCT a FROM t ORDER BY a DESC, b LIMIT 10").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert!(sel.distinct);
        assert!(sel.order_by[0].desc);
        assert!(!sel.order_by[1].desc);
        assert_eq!(sel.limit, Some(10));
    }

    #[test]
    fn select_without_from() {
        let s = parse_statement("SELECT 1 + 1 AS two").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert!(sel.from.is_empty());
        assert!(matches!(
            sel.items[0],
            SelectItem::Expr { alias: Some(ref a), .. } if a == "two"
        ));
    }

    #[test]
    fn create_index() {
        assert!(matches!(
            parse_statement("CREATE INDEX idx_drug ON Prescription(drug)").unwrap(),
            Statement::CreateIndex { .. }
        ));
    }

    #[test]
    fn syntax_errors_have_positions() {
        let err = parse_statement("SELECT FROM").unwrap_err();
        assert!(matches!(err, DbError::Syntax { .. }));
        assert!(parse_statement("SELEC 1").is_err());
        assert!(parse_statement("SELECT 1 2").is_err());
        assert!(parse_expression("1 +").is_err());
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse_statement("SELECT 1;").is_ok());
    }

    #[test]
    fn txn_statements() {
        assert!(matches!(
            parse_statement("BEGIN").unwrap(),
            Statement::Begin
        ));
        assert!(matches!(
            parse_statement("begin work;").unwrap(),
            Statement::Begin
        ));
        assert!(matches!(
            parse_statement("BEGIN TRANSACTION").unwrap(),
            Statement::Begin
        ));
        assert!(matches!(
            parse_statement("COMMIT WORK").unwrap(),
            Statement::Commit
        ));
        assert!(matches!(
            parse_statement("rollback").unwrap(),
            Statement::Rollback
        ));
        assert!(parse_statement("BEGIN SELECT").is_err());
    }

    #[test]
    fn as_of_clause() {
        let s = parse_statement("SELECT * FROM t AS OF COMMIT 3").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert!(sel.from[0].alias.is_none());
        assert!(matches!(sel.as_of, Some(AsOf::Commit(_))));

        let s = parse_statement("SELECT * FROM t AS OF 1700000000").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert!(matches!(sel.as_of, Some(AsOf::Instant(_))));

        // After ORDER BY/LIMIT, and with an aliased table.
        let s = parse_statement("SELECT v FROM t x ORDER BY v LIMIT 2 AS OF COMMIT 7").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.from[0].alias.as_deref(), Some("x"));
        assert!(matches!(sel.as_of, Some(AsOf::Commit(_))));

        // A real alias still parses.
        let s = parse_statement("SELECT o.v FROM t AS o").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.from[0].alias.as_deref(), Some("o"));
        assert!(sel.as_of.is_none());
    }
}
