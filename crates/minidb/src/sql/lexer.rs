//! Hand-written SQL lexer.

use crate::error::{DbError, DbResult};

/// A lexical token with its byte position in the input.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub pos: usize,
}

/// Token kinds. Keywords are not distinguished from identifiers here; the
/// parser matches identifier text case-insensitively.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Bare or keyword identifier (original case preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal, quotes stripped, `''` unescaped.
    Str(String),
    /// Named parameter `:name`.
    Param(String),
    /// Punctuation: one of `( ) , . * + - / % = <> != < <= > >= || ::`.
    Sym(&'static str),
    /// End of input.
    Eof,
}

impl TokenKind {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// Lexes a full statement into tokens (including a trailing `Eof`).
pub fn lex(input: &str) -> DbResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(DbError::Syntax {
                                pos: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Copy the full UTF-8 character.
                            let ch_len = utf8_len(bytes[i]);
                            s.push_str(&input[i..i + ch_len]);
                            i += ch_len;
                        }
                    }
                }
                out.push(Token {
                    kind: TokenKind::Str(s),
                    pos: start,
                });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| DbError::Syntax {
                        pos: start,
                        message: format!("bad float literal {text:?}"),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| DbError::Syntax {
                        pos: start,
                        message: format!("integer literal {text:?} out of range"),
                    })?)
                };
                out.push(Token { kind, pos: start });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident(input[start..i].to_owned()),
                    pos: start,
                });
            }
            b':' if bytes.get(i + 1) == Some(&b':') => {
                out.push(Token {
                    kind: TokenKind::Sym("::"),
                    pos: i,
                });
                i += 2;
            }
            b':' => {
                let start = i;
                i += 1;
                let name_start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                if i == name_start {
                    return Err(DbError::Syntax {
                        pos: start,
                        message: "expected parameter name after ':'".into(),
                    });
                }
                out.push(Token {
                    kind: TokenKind::Param(input[name_start..i].to_owned()),
                    pos: start,
                });
            }
            b'<' if bytes.get(i + 1) == Some(&b'>') => {
                out.push(Token {
                    kind: TokenKind::Sym("<>"),
                    pos: i,
                });
                i += 2;
            }
            b'<' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token {
                    kind: TokenKind::Sym("<="),
                    pos: i,
                });
                i += 2;
            }
            b'>' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token {
                    kind: TokenKind::Sym(">="),
                    pos: i,
                });
                i += 2;
            }
            b'!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token {
                    kind: TokenKind::Sym("<>"),
                    pos: i,
                });
                i += 2;
            }
            b'|' if bytes.get(i + 1) == Some(&b'|') => {
                out.push(Token {
                    kind: TokenKind::Sym("||"),
                    pos: i,
                });
                i += 2;
            }
            b'(' | b')' | b',' | b'.' | b'*' | b'+' | b'-' | b'/' | b'%' | b'=' | b'<' | b'>'
            | b';' => {
                let sym: &'static str = match b {
                    b'(' => "(",
                    b')' => ")",
                    b',' => ",",
                    b'.' => ".",
                    b'*' => "*",
                    b'+' => "+",
                    b'-' => "-",
                    b'/' => "/",
                    b'%' => "%",
                    b'=' => "=",
                    b'<' => "<",
                    b'>' => ">",
                    b';' => ";",
                    _ => unreachable!(),
                };
                out.push(Token {
                    kind: TokenKind::Sym(sym),
                    pos: i,
                });
                i += 1;
            }
            _ => {
                return Err(DbError::Syntax {
                    pos: i,
                    message: format!("unexpected character {:?}", input[i..].chars().next()),
                })
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        pos: input.len(),
    });
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<TokenKind> {
        lex(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let ks = kinds("SELECT a, b FROM t WHERE x = 3");
        assert_eq!(ks[0], TokenKind::Ident("SELECT".into()));
        assert_eq!(ks[2], TokenKind::Sym(","));
        assert_eq!(ks[9], TokenKind::Int(3));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds("'Dr.Pepper'")[0], TokenKind::Str("Dr.Pepper".into()));
        assert_eq!(kinds("'it''s'")[0], TokenKind::Str("it's".into()));
        assert_eq!(
            kinds("'{[1999-10-01, NOW]}'")[0],
            TokenKind::Str("{[1999-10-01, NOW]}".into())
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("4.25")[0], TokenKind::Float(4.25));
        // "1." is Int then Sym "." (qualified-name friendly).
        let ks = kinds("1 .x");
        assert_eq!(ks[0], TokenKind::Int(1));
        assert_eq!(ks[1], TokenKind::Sym("."));
    }

    #[test]
    fn params_and_cast_symbol() {
        let ks = kinds("x < '7'::Span * :w");
        assert!(ks.contains(&TokenKind::Sym("::")));
        assert!(ks.contains(&TokenKind::Param("w".into())));
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(kinds("<>")[0], TokenKind::Sym("<>"));
        assert_eq!(kinds("!=")[0], TokenKind::Sym("<>"));
        assert_eq!(kinds("<=")[0], TokenKind::Sym("<="));
        assert_eq!(kinds(">=")[0], TokenKind::Sym(">="));
        assert_eq!(kinds("||")[0], TokenKind::Sym("||"));
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("SELECT -- the patient\n patient");
        assert_eq!(ks.len(), 3); // SELECT, patient, EOF
    }

    #[test]
    fn unexpected_character() {
        assert!(lex("SELECT @").is_err());
        assert!(lex(":").is_err());
    }

    #[test]
    fn positions_recorded() {
        let ts = lex("a = b").unwrap();
        assert_eq!(ts[1].pos, 2);
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(kinds("'Müller'")[0], TokenKind::Str("Müller".into()));
    }
}
