//! Error type for the minidb engine.

use std::fmt;

/// Any error raised while parsing, planning, or executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Lexical or syntactic error in the SQL text.
    Syntax { pos: usize, message: String },
    /// A referenced catalog object does not exist.
    NotFound { kind: &'static str, name: String },
    /// An object with the same name already exists.
    AlreadyExists { kind: &'static str, name: String },
    /// Column/name resolution failed.
    Binding { message: String },
    /// No function/operator/cast overload matches the argument types.
    NoOverload { what: String },
    /// More than one overload matches ambiguously.
    AmbiguousOverload { what: String },
    /// Static type error (e.g. non-boolean WHERE clause).
    Type { message: String },
    /// Runtime evaluation error (raised by routines, casts, arithmetic).
    Execution { message: String },
    /// A named parameter was not supplied.
    MissingParam { name: String },
    /// A constraint (arity, duplicate column, …) was violated.
    Constraint { message: String },
    /// Snapshot persistence failed.
    Persist { message: String },
    /// The service is temporarily unable to take the request (server at
    /// its connection limit, shutting down, or the transport failed).
    Unavailable { message: String },
    /// This node is a read-only replica; writes must go to the primary
    /// at the named address.
    ReadOnly { primary: String },
}

impl DbError {
    /// Convenience constructor for routine implementations.
    pub fn exec(message: impl Into<String>) -> DbError {
        DbError::Execution {
            message: message.into(),
        }
    }

    /// Convenience constructor for binder errors.
    pub fn binding(message: impl Into<String>) -> DbError {
        DbError::Binding {
            message: message.into(),
        }
    }

    /// Convenience constructor for type errors.
    pub fn type_err(message: impl Into<String>) -> DbError {
        DbError::Type {
            message: message.into(),
        }
    }

    /// Convenience constructor for temporary-unavailability errors.
    pub fn unavailable(message: impl Into<String>) -> DbError {
        DbError::Unavailable {
            message: message.into(),
        }
    }

    /// Convenience constructor for read-only-replica rejections.
    pub fn read_only(primary: impl Into<String>) -> DbError {
        DbError::ReadOnly {
            primary: primary.into(),
        }
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Syntax { pos, message } => write!(f, "syntax error at byte {pos}: {message}"),
            DbError::NotFound { kind, name } => write!(f, "{kind} {name:?} does not exist"),
            DbError::AlreadyExists { kind, name } => write!(f, "{kind} {name:?} already exists"),
            DbError::Binding { message } => write!(f, "binding error: {message}"),
            DbError::NoOverload { what } => write!(f, "no overload matches {what}"),
            DbError::AmbiguousOverload { what } => write!(f, "ambiguous overloads for {what}"),
            DbError::Type { message } => write!(f, "type error: {message}"),
            DbError::Execution { message } => write!(f, "execution error: {message}"),
            DbError::MissingParam { name } => write!(f, "missing value for parameter :{name}"),
            DbError::Constraint { message } => write!(f, "constraint violation: {message}"),
            DbError::Persist { message } => write!(f, "persistence error: {message}"),
            DbError::Unavailable { message } => write!(f, "service unavailable: {message}"),
            DbError::ReadOnly { primary } => {
                write!(
                    f,
                    "read-only replica: writes go to the primary at {primary}"
                )
            }
        }
    }
}

impl std::error::Error for DbError {}

/// Result alias used across the engine.
pub type DbResult<T> = std::result::Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DbError::NotFound {
            kind: "table",
            name: "prescription".into(),
        };
        assert_eq!(e.to_string(), "table \"prescription\" does not exist");
        let e = DbError::Syntax {
            pos: 7,
            message: "unexpected ')'".into(),
        };
        assert!(e.to_string().contains("byte 7"));
    }

    #[test]
    fn constructors() {
        assert!(matches!(DbError::exec("x"), DbError::Execution { .. }));
        assert!(matches!(DbError::binding("x"), DbError::Binding { .. }));
        assert!(matches!(DbError::type_err("x"), DbError::Type { .. }));
    }
}
