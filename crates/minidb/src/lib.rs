//! # minidb — an extensible in-process relational DBMS
//!
//! A from-scratch relational engine standing in for Informix in the TIP
//! reproduction. Its defining feature is the DataBlade-style extension
//! API ([`catalog::Blade`]): plugins register opaque types, routines,
//! casts, operator overloads and aggregates, and the SQL binder resolves
//! queries against those registries exactly as it does for built-ins —
//! "as if they were built into the DBMS" (paper §1).

pub mod binder;
pub mod builtin;
pub mod cache;
pub mod catalog;
pub mod error;
pub mod exec;
pub mod obs;
pub mod pin;
pub mod plan;
pub mod repl;
pub mod session;
pub mod sql;
pub mod storage;
pub mod types;
pub mod value;
pub mod wal;

pub use cache::{CachedPlan, PlanCache};
pub use catalog::{Blade, Catalog, ExecCtx};
pub use error::{DbError, DbResult};
pub use obs::{AccessPath, MetricsSnapshot, OpProfile, QueryMetrics, SlowQuery, SlowQueryLogger};
pub use pin::{PinnedTables, TableSet, TableSource};
pub use repl::{LogRead, ReplSnapshot, ReplStats, ReplicaApplier};
pub use session::{Database, Prepared, QueryResult, Session, StatementOutcome};
pub use types::{DataType, UdtId};
pub use value::{Row, UdtObject, UdtValue, Value};
pub use wal::{DurabilityConfig, RecoveryReport, SyncMode, WalStatsSnapshot};
