//! Column batches, the vectorized expression evaluator, and the batch
//! operator implementations.
//!
//! A [`Batch`] carries ~[`BATCH_ROWS`] rows as column [`Vector`]s plus a
//! selection [`Bitmap`]; operators narrow the selection instead of
//! copying survivors. Expressions are evaluated whole-column at a time
//! by [`eval_vec`], which routes each scalar application through its
//! registered batch kernel (hand-specialized for the hot temporal
//! predicates, an elementwise wrapper otherwise) and preserves the row
//! evaluator's semantics exactly: strict NULLs, three-valued AND/OR with
//! lane-masked short circuit, first-match CASE.

use crate::binder::{BoundExpr, BoundKind};
use crate::catalog::ExecCtx;
use crate::error::{DbError, DbResult};
use crate::value::{GroupKey, Row, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use super::vector_ops::Bitmap;

/// Target number of rows per batch.
pub const BATCH_ROWS: usize = 1024;

/// One column of a batch: either a materialized vector or a constant
/// broadcast to every lane (literals and parameters stay constants all
/// the way through evaluation, so a constant probe — e.g. the window
/// Element of an OVERLAPS selection — is resolved once per batch, not
/// once per row).
#[derive(Clone)]
pub enum Vector {
    /// The same value in every lane.
    Const(Value),
    /// One value per lane.
    Vals(Arc<Vec<Value>>),
}

impl Vector {
    /// Wraps a materialized column.
    pub fn vals(v: Vec<Value>) -> Vector {
        Vector::Vals(Arc::new(v))
    }

    /// The value in lane `i`.
    pub fn get(&self, i: usize) -> &Value {
        match self {
            Vector::Const(v) => v,
            Vector::Vals(v) => &v[i],
        }
    }
}

/// A column-oriented chunk of rows with a selection bitmap.
pub struct Batch {
    pub cols: Vec<Vector>,
    /// Lane count (every `Vals` column has exactly this many entries).
    pub len: usize,
    /// Which lanes are live.
    pub sel: Bitmap,
}

impl Batch {
    /// Builds a batch from row-major input, consuming the rows.
    pub fn from_rows(rows: &mut [Row], arity: usize) -> Batch {
        let len = rows.len();
        let mut cols: Vec<Vec<Value>> = (0..arity).map(|_| Vec::with_capacity(len)).collect();
        for row in rows.iter_mut() {
            let row = std::mem::take(row);
            for (c, v) in row.into_iter().enumerate() {
                cols[c].push(v);
            }
        }
        Batch {
            cols: cols.into_iter().map(Vector::vals).collect(),
            len,
            sel: Bitmap::all(len),
        }
    }

    /// Gathers the selected lanes back into rows, moving values out when
    /// this batch holds the only reference to a column.
    pub fn into_rows(self) -> Vec<Row> {
        let idxs: Vec<usize> = self.sel.iter().collect();
        let mut rows: Vec<Row> = idxs
            .iter()
            .map(|_| Vec::with_capacity(self.cols.len()))
            .collect();
        for col in self.cols {
            match col {
                Vector::Const(v) => {
                    for r in rows.iter_mut() {
                        r.push(v.clone());
                    }
                }
                Vector::Vals(arc) => match Arc::try_unwrap(arc) {
                    Ok(vals) => {
                        let mut k = 0;
                        for (i, v) in vals.into_iter().enumerate() {
                            if k < idxs.len() && i == idxs[k] {
                                rows[k].push(v);
                                k += 1;
                            }
                        }
                    }
                    Err(arc) => {
                        for (k, &i) in idxs.iter().enumerate() {
                            rows[k].push(arc[i].clone());
                        }
                    }
                },
            }
        }
        rows
    }

    /// Clones the selected lanes of one logical row (used by join
    /// assembly, which emits row-major output).
    fn gather(&self, lane: usize) -> Row {
        self.cols.iter().map(|c| c.get(lane).clone()).collect()
    }
}

/// A pull-based batch stream. `next_batch` never returns a batch with an
/// empty selection; operators loop internally instead, so downstream
/// evaluation always sees at least one live lane (this is what keeps
/// error behavior aligned with the row path, which only evaluates
/// expressions when a row actually flows).
pub trait BatchStream {
    fn next_batch(&mut self) -> DbResult<Option<Batch>>;
}

// ----- vectorized expression evaluation -------------------------------------

/// Evaluates `e` over the selected lanes of `batch`. Unselected lanes of
/// the result are unspecified (NULL in practice) and must never be read.
pub fn eval_vec(e: &BoundExpr, ctx: &ExecCtx, batch: &Batch, sel: &Bitmap) -> DbResult<Vector> {
    match &e.kind {
        BoundKind::Literal(v) => Ok(Vector::Const(v.clone())),
        BoundKind::Param { name } => ctx
            .param(name)
            .cloned()
            .map(Vector::Const)
            .ok_or_else(|| DbError::MissingParam { name: name.clone() }),
        BoundKind::ColumnRef(i) => Ok(batch.cols[*i].clone()),
        BoundKind::Apply {
            f: _,
            batch: k,
            args,
        } => {
            let Some(kernel) = k else {
                // No kernel: the capability check routes such plans to the
                // row executor; this path only runs for sub-expressions of
                // an otherwise batchable tree and keeps eval_vec total.
                return eval_gather(e, ctx, batch, sel);
            };
            let mut argv = Vec::with_capacity(args.len());
            for a in args {
                argv.push(eval_vec(a, ctx, batch, sel)?);
            }
            kernel(ctx, &argv, sel, batch.len)
        }
        BoundKind::Cast { f, arg } => {
            let av = eval_vec(arg, ctx, batch, sel)?;
            if let Vector::Const(v) = &av {
                return Ok(Vector::Const(if v.is_null() {
                    Value::Null
                } else {
                    f(ctx, v)?
                }));
            }
            let mut out = vec![Value::Null; batch.len];
            for i in sel.iter() {
                let v = av.get(i);
                if !v.is_null() {
                    out[i] = f(ctx, v)?;
                }
            }
            Ok(Vector::vals(out))
        }
        BoundKind::Neg(arg) => {
            let av = eval_vec(arg, ctx, batch, sel)?;
            let mut out = vec![Value::Null; batch.len];
            for i in sel.iter() {
                out[i] = match av.get(i) {
                    Value::Null => Value::Null,
                    Value::Int(x) => x
                        .checked_neg()
                        .map(Value::Int)
                        .ok_or_else(|| DbError::exec("integer overflow in negation"))?,
                    Value::Float(f) => Value::Float(-f),
                    other => return Err(DbError::exec(format!("cannot negate {other:?}"))),
                };
            }
            Ok(Vector::vals(out))
        }
        BoundKind::And(a, b) => {
            let av = eval_vec(a, ctx, batch, sel)?;
            // The row evaluator only short-circuits the rhs when the lhs
            // is FALSE; mirror that per lane so rhs errors and NULL
            // semantics match exactly.
            let mut rhs_sel = sel.clone();
            for i in sel.iter() {
                if matches!(av.get(i), Value::Bool(false)) {
                    rhs_sel.clear(i);
                }
            }
            let bv = if rhs_sel.any() {
                Some(eval_vec(b, ctx, batch, &rhs_sel)?)
            } else {
                None
            };
            let mut out = vec![Value::Null; batch.len];
            for i in sel.iter() {
                out[i] = match av.get(i) {
                    Value::Bool(false) => Value::Bool(false),
                    av => match (av, bv.as_ref().expect("rhs evaluated").get(i)) {
                        (_, Value::Bool(false)) => Value::Bool(false),
                        (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
                        _ => Value::Null,
                    },
                };
            }
            Ok(Vector::vals(out))
        }
        BoundKind::Or(a, b) => {
            let av = eval_vec(a, ctx, batch, sel)?;
            let mut rhs_sel = sel.clone();
            for i in sel.iter() {
                if matches!(av.get(i), Value::Bool(true)) {
                    rhs_sel.clear(i);
                }
            }
            let bv = if rhs_sel.any() {
                Some(eval_vec(b, ctx, batch, &rhs_sel)?)
            } else {
                None
            };
            let mut out = vec![Value::Null; batch.len];
            for i in sel.iter() {
                out[i] = match av.get(i) {
                    Value::Bool(true) => Value::Bool(true),
                    av => match (av, bv.as_ref().expect("rhs evaluated").get(i)) {
                        (_, Value::Bool(true)) => Value::Bool(true),
                        (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
                        _ => Value::Null,
                    },
                };
            }
            Ok(Vector::vals(out))
        }
        BoundKind::Not(a) => {
            let av = eval_vec(a, ctx, batch, sel)?;
            let mut out = vec![Value::Null; batch.len];
            for i in sel.iter() {
                out[i] = match av.get(i) {
                    Value::Bool(b) => Value::Bool(!b),
                    Value::Null => Value::Null,
                    other => return Err(DbError::exec(format!("NOT applied to {other:?}"))),
                };
            }
            Ok(Vector::vals(out))
        }
        BoundKind::IsNull { arg, negated } => {
            let av = eval_vec(arg, ctx, batch, sel)?;
            let mut out = vec![Value::Null; batch.len];
            for i in sel.iter() {
                out[i] = Value::Bool(av.get(i).is_null() != *negated);
            }
            Ok(Vector::vals(out))
        }
        BoundKind::Case { branches, else_ } => {
            let mut out = vec![Value::Null; batch.len];
            let mut remaining = sel.clone();
            for (when, then) in branches {
                if !remaining.any() {
                    break;
                }
                let wv = eval_vec(when, ctx, batch, &remaining)?;
                let mut matched = Bitmap::none(batch.len);
                for i in remaining.iter() {
                    if wv.get(i).as_bool() == Some(true) {
                        matched.set(i);
                    }
                }
                for i in matched.iter() {
                    remaining.clear(i);
                }
                if matched.any() {
                    let tv = eval_vec(then, ctx, batch, &matched)?;
                    for i in matched.iter() {
                        out[i] = tv.get(i).clone();
                    }
                }
            }
            if let Some(els) = else_ {
                if remaining.any() {
                    let ev = eval_vec(els, ctx, batch, &remaining)?;
                    for i in remaining.iter() {
                        out[i] = ev.get(i).clone();
                    }
                }
            }
            Ok(Vector::vals(out))
        }
    }
}

/// Row-at-a-time fallback inside the batch evaluator: gathers each
/// selected lane into a row and defers to [`BoundExpr::eval`].
fn eval_gather(e: &BoundExpr, ctx: &ExecCtx, batch: &Batch, sel: &Bitmap) -> DbResult<Vector> {
    let mut out = vec![Value::Null; batch.len];
    for i in sel.iter() {
        let row = batch.gather(i);
        out[i] = e.eval(ctx, &row)?;
    }
    Ok(Vector::vals(out))
}

/// Narrows the batch's selection to the lanes where `pred` evaluates
/// TRUE. The selection is detached during evaluation (the evaluator only
/// reads columns and length) to keep the borrows disjoint.
fn apply_pred(pred: &BoundExpr, ctx: &ExecCtx, batch: &mut Batch) -> DbResult<()> {
    let mut sel = std::mem::replace(&mut batch.sel, Bitmap::none(0));
    let pv = match eval_vec(pred, ctx, batch, &sel) {
        Ok(v) => v,
        Err(e) => {
            batch.sel = sel;
            return Err(e);
        }
    };
    let lanes: Vec<usize> = sel.iter().collect();
    for i in lanes {
        if pv.get(i).as_bool() != Some(true) {
            sel.clear(i);
        }
    }
    batch.sel = sel;
    Ok(())
}

// ----- batch operators ------------------------------------------------------

/// Full-table scan source fed column-at-a-time by
/// [`crate::storage::Table::scan_columns`]: the storage layer clones the
/// referenced columns straight out of the version slots, so no per-row
/// `Vec` is ever materialized. Batches move values out of the column
/// vectors (pointer-bump iteration, no second copy).
pub(super) struct ColumnScan<'a> {
    cols: Vec<std::vec::IntoIter<Value>>,
    remaining: usize,
    filter: &'a Option<BoundExpr>,
    ctx: &'a ExecCtx,
}

impl<'a> ColumnScan<'a> {
    pub fn new(
        count: usize,
        cols: Vec<Vec<Value>>,
        filter: &'a Option<BoundExpr>,
        ctx: &'a ExecCtx,
    ) -> ColumnScan<'a> {
        ColumnScan {
            cols: cols.into_iter().map(Vec::into_iter).collect(),
            remaining: count,
            filter,
            ctx,
        }
    }
}

impl BatchStream for ColumnScan<'_> {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        while self.remaining > 0 {
            let n = self.remaining.min(BATCH_ROWS);
            self.remaining -= n;
            let cols = self
                .cols
                .iter_mut()
                .map(|c| Vector::vals(c.by_ref().take(n).collect()))
                .collect();
            let mut batch = Batch {
                cols,
                len: n,
                sel: Bitmap::all(n),
            };
            if let Some(pred) = self.filter {
                apply_pred(pred, self.ctx, &mut batch)?;
                if !batch.sel.any() {
                    continue;
                }
            }
            return Ok(Some(batch));
        }
        Ok(None)
    }
}

/// Scan source: rows are materialized (and projected) at open time by
/// the shared scan helper; this operator slices them into batches and
/// applies the residual filter vectorized.
pub(super) struct BatchScan<'a> {
    pub rows: Vec<Row>,
    pub pos: usize,
    pub arity: usize,
    pub filter: &'a Option<BoundExpr>,
    pub ctx: &'a ExecCtx,
}

impl BatchStream for BatchScan<'_> {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        while self.pos < self.rows.len() {
            let end = (self.pos + BATCH_ROWS).min(self.rows.len());
            let mut batch = Batch::from_rows(&mut self.rows[self.pos..end], self.arity);
            self.pos = end;
            if let Some(pred) = self.filter {
                apply_pred(pred, self.ctx, &mut batch)?;
                if !batch.sel.any() {
                    continue;
                }
            }
            return Ok(Some(batch));
        }
        Ok(None)
    }
}

pub(super) struct BatchFilter<'a> {
    pub input: Box<dyn BatchStream + 'a>,
    pub pred: &'a BoundExpr,
    pub ctx: &'a ExecCtx,
}

impl BatchStream for BatchFilter<'_> {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        while let Some(mut batch) = self.input.next_batch()? {
            apply_pred(self.pred, self.ctx, &mut batch)?;
            if batch.sel.any() {
                return Ok(Some(batch));
            }
        }
        Ok(None)
    }
}

pub(super) struct BatchProject<'a> {
    pub input: Box<dyn BatchStream + 'a>,
    pub exprs: &'a [BoundExpr],
    pub ctx: &'a ExecCtx,
}

impl BatchStream for BatchProject<'_> {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        match self.input.next_batch()? {
            Some(batch) => {
                let mut cols = Vec::with_capacity(self.exprs.len());
                for e in self.exprs {
                    cols.push(eval_vec(e, self.ctx, &batch, &batch.sel)?);
                }
                Ok(Some(Batch {
                    cols,
                    len: batch.len,
                    sel: batch.sel,
                }))
            }
            None => Ok(None),
        }
    }
}

pub(super) struct BatchTake<'a> {
    pub input: Box<dyn BatchStream + 'a>,
    pub keep: usize,
}

impl BatchStream for BatchTake<'_> {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        match self.input.next_batch()? {
            Some(mut batch) => {
                batch.cols.truncate(self.keep);
                Ok(Some(batch))
            }
            None => Ok(None),
        }
    }
}

pub(super) struct BatchLimit<'a> {
    pub input: Box<dyn BatchStream + 'a>,
    pub remaining: u64,
}

impl BatchStream for BatchLimit<'_> {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next_batch()? {
            Some(mut batch) => {
                let live = batch.sel.count() as u64;
                if live <= self.remaining {
                    self.remaining -= live;
                } else {
                    // Keep only the first `remaining` selected lanes.
                    let mut kept = 0;
                    let lanes: Vec<usize> = batch.sel.iter().collect();
                    for i in lanes {
                        if kept < self.remaining {
                            kept += 1;
                        } else {
                            batch.sel.clear(i);
                        }
                    }
                    self.remaining = 0;
                }
                Ok(Some(batch))
            }
            None => Ok(None),
        }
    }
}

pub(super) struct BatchOffset<'a> {
    pub input: Box<dyn BatchStream + 'a>,
    pub to_skip: u64,
}

impl BatchStream for BatchOffset<'_> {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        while let Some(mut batch) = self.input.next_batch()? {
            if self.to_skip == 0 {
                return Ok(Some(batch));
            }
            let live = batch.sel.count() as u64;
            if live <= self.to_skip {
                self.to_skip -= live;
                continue;
            }
            let lanes: Vec<usize> = batch.sel.iter().collect();
            for i in lanes {
                if self.to_skip == 0 {
                    break;
                }
                batch.sel.clear(i);
                self.to_skip -= 1;
            }
            return Ok(Some(batch));
        }
        Ok(None)
    }
}

pub(super) struct BatchChain<'a> {
    pub streams: Vec<Box<dyn BatchStream + 'a>>,
    pub current: usize,
}

impl BatchStream for BatchChain<'_> {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        while self.current < self.streams.len() {
            if let Some(batch) = self.streams[self.current].next_batch()? {
                return Ok(Some(batch));
            }
            self.current += 1;
        }
        Ok(None)
    }
}

/// Emits pre-materialized rows (sort/distinct/aggregate output) as
/// batches.
pub(super) struct MaterializedBatches {
    pub rows: Vec<Row>,
    pub pos: usize,
    pub arity: usize,
}

impl MaterializedBatches {
    pub fn new(rows: Vec<Row>, arity: usize) -> MaterializedBatches {
        MaterializedBatches {
            rows,
            pos: 0,
            arity,
        }
    }
}

impl BatchStream for MaterializedBatches {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        if self.pos >= self.rows.len() {
            return Ok(None);
        }
        let end = (self.pos + BATCH_ROWS).min(self.rows.len());
        let batch = Batch::from_rows(&mut self.rows[self.pos..end], self.arity);
        self.pos = end;
        Ok(Some(batch))
    }
}

/// Materializing sort: drains the input, gathers survivors, and reuses
/// the row comparator (stable, so ties keep arrival order — identical to
/// the row path).
pub(super) fn sort_rows(input: &mut dyn BatchStream, keys: &[(usize, bool)]) -> DbResult<Vec<Row>> {
    let mut rows = drain_rows(input)?;
    rows.sort_by(|a, b| {
        for (i, desc) in keys {
            let ord = a[*i].cmp_ordering(&b[*i]);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(rows)
}

/// Materializing distinct over the first `visible` columns, keeping
/// first-seen order.
pub(super) fn distinct_rows(input: &mut dyn BatchStream, visible: usize) -> DbResult<Vec<Row>> {
    let mut seen: HashMap<GroupKey, ()> = HashMap::new();
    let mut out = Vec::new();
    while let Some(batch) = input.next_batch()? {
        for i in batch.sel.iter() {
            let key = GroupKey((0..visible).map(|c| batch.cols[c].get(i).clone()).collect());
            if seen.insert(key, ()).is_none() {
                out.push(batch.gather(i));
            }
        }
    }
    Ok(out)
}

/// Vectorized grouped aggregation: group keys and aggregate arguments
/// are evaluated whole-column, then states step in a tight loop over the
/// selected lanes — no per-row expression dispatch. Group and output
/// ordering (first-seen) matches the row path.
pub(super) fn aggregate_rows(
    input: &mut dyn BatchStream,
    ctx: &ExecCtx,
    keys: &[BoundExpr],
    aggs: &[crate::plan::AggSpec],
) -> DbResult<Vec<Row>> {
    type GroupState = (
        Vec<Box<dyn crate::catalog::AggregateState>>,
        Vec<Option<HashSet<GroupKey>>>,
    );
    let mut groups: HashMap<GroupKey, GroupState> = HashMap::new();
    let mut order: Vec<GroupKey> = Vec::new();
    let fresh = || -> GroupState {
        (
            aggs.iter().map(|a| (a.factory)()).collect(),
            aggs.iter().map(|a| a.distinct.then(HashSet::new)).collect(),
        )
    };
    while let Some(batch) = input.next_batch()? {
        let mut key_vecs = Vec::with_capacity(keys.len());
        for k in keys {
            key_vecs.push(eval_vec(k, ctx, &batch, &batch.sel)?);
        }
        let mut arg_vecs = Vec::with_capacity(aggs.len());
        for a in aggs {
            arg_vecs.push(eval_vec(&a.arg, ctx, &batch, &batch.sel)?);
        }
        for i in batch.sel.iter() {
            let gk = GroupKey(key_vecs.iter().map(|v| v.get(i).clone()).collect());
            let (states, seen) = match groups.get_mut(&gk) {
                Some(s) => s,
                None => {
                    order.push(gk.clone());
                    groups.entry(gk.clone()).or_insert_with(fresh)
                }
            };
            for ((av, st), dedup) in arg_vecs.iter().zip(states.iter_mut()).zip(seen) {
                let v = av.get(i);
                if v.is_null() {
                    continue; // SQL: aggregates skip NULLs
                }
                if let Some(seen_vals) = dedup {
                    if !seen_vals.insert(GroupKey(vec![v.clone()])) {
                        continue; // DISTINCT: already counted
                    }
                }
                st.step(ctx, v)?;
            }
        }
    }
    // Global aggregate over an empty input still yields one row.
    if keys.is_empty() && order.is_empty() {
        let gk = GroupKey(Vec::new());
        order.push(gk.clone());
        groups.insert(gk, fresh());
    }
    let mut out = Vec::with_capacity(order.len());
    for gk in order {
        let (states, _) = groups.remove(&gk).expect("group present");
        let mut row = gk.0;
        for st in states {
            row.push(st.finish(ctx)?);
        }
        out.push(row);
    }
    Ok(out)
}

/// Hash join with vectorized probe-key evaluation. The build side is
/// consumed row-wise at open (identical to the row operator); the probe
/// side evaluates its keys whole-column and assembles joined rows per
/// match. Residual filters run row-wise over the joined row, so they
/// need not be batch-capable.
pub(super) struct BatchHashJoin<'a> {
    pub left: Box<dyn BatchStream + 'a>,
    pub table: HashMap<GroupKey, Vec<Row>>,
    pub left_keys: &'a [BoundExpr],
    pub filter: &'a Option<BoundExpr>,
    pub ctx: &'a ExecCtx,
    pub arity: usize,
}

impl BatchStream for BatchHashJoin<'_> {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        while let Some(batch) = self.left.next_batch()? {
            let mut key_vecs = Vec::with_capacity(self.left_keys.len());
            for k in self.left_keys {
                key_vecs.push(eval_vec(k, self.ctx, &batch, &batch.sel)?);
            }
            let mut out: Vec<Row> = Vec::new();
            for i in batch.sel.iter() {
                let mut key = Vec::with_capacity(key_vecs.len());
                let mut has_null = false;
                for kv in &key_vecs {
                    let v = kv.get(i);
                    has_null |= v.is_null();
                    key.push(v.clone());
                }
                if has_null {
                    continue; // NULL never matches an equi-join key
                }
                let Some(matches) = self.table.get(&GroupKey(key)) else {
                    continue;
                };
                for r in matches {
                    let mut joined = batch.gather(i);
                    joined.extend_from_slice(r);
                    match self.filter {
                        Some(pred) => {
                            if pred.eval(self.ctx, &joined)?.as_bool() == Some(true) {
                                out.push(joined);
                            }
                        }
                        None => out.push(joined),
                    }
                }
            }
            if !out.is_empty() {
                let arity = self.arity;
                return Ok(Some(Batch::from_rows(&mut out, arity)));
            }
        }
        Ok(None)
    }
}

// ----- batch <-> row bridges ------------------------------------------------
//
// Bridges are pure adapters between the two stream shapes. They carry no
// operator profile: they are not plan nodes, so EXPLAIN ANALYZE never
// shows them and the pinned-tables trailer cannot double-count them.

/// Feeds a row stream into a batch consumer.
pub(super) struct RowToBatch<'a> {
    pub input: Box<dyn super::RowStream + 'a>,
}

impl BatchStream for RowToBatch<'_> {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        let mut rows: Vec<Row> = Vec::with_capacity(BATCH_ROWS);
        while rows.len() < BATCH_ROWS {
            match self.input.next_row()? {
                Some(r) => rows.push(r),
                None => break,
            }
        }
        if rows.is_empty() {
            return Ok(None);
        }
        let arity = rows[0].len();
        Ok(Some(Batch::from_rows(&mut rows, arity)))
    }
}

/// Feeds a batch stream into a row consumer.
pub(super) struct BatchToRow<'a> {
    pub input: Box<dyn BatchStream + 'a>,
    pub buffer: std::vec::IntoIter<Row>,
}

impl<'a> BatchToRow<'a> {
    pub fn new(input: Box<dyn BatchStream + 'a>) -> BatchToRow<'a> {
        BatchToRow {
            input,
            buffer: Vec::new().into_iter(),
        }
    }
}

impl super::RowStream for BatchToRow<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        loop {
            if let Some(r) = self.buffer.next() {
                return Ok(Some(r));
            }
            match self.input.next_batch()? {
                Some(batch) => self.buffer = batch.into_rows().into_iter(),
                None => return Ok(None),
            }
        }
    }
}

/// Pulls a batch stream to exhaustion, gathering selected lanes.
pub(super) fn drain_rows(stream: &mut dyn BatchStream) -> DbResult<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(batch) = stream.next_batch()? {
        out.extend(batch.into_rows());
    }
    Ok(out)
}
