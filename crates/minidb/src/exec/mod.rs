//! Plan execution: a vectorized batch engine over column vectors with a
//! Volcano row fallback.
//!
//! Every plan node is opened on the batch path when it (and its
//! expressions) are batch-capable — see [`crate::plan::Plan::batch_capable`]
//! — and on the row path otherwise. The decision is per node: mixed
//! plans bridge between the two shapes with uninstrumented batch↔row
//! adapters, so a single row-only UDT routine only forces its own
//! subtree off the fast path. Both paths produce byte-identical results;
//! the row operators in [`row_fallback`] are the reference semantics.

pub mod batch;
mod row_fallback;
pub mod vector_ops;

pub use batch::{Batch, BatchStream, Vector, BATCH_ROWS};
pub use vector_ops::{elementwise, Bitmap};

use crate::catalog::ExecCtx;
use crate::error::{DbError, DbResult};
use crate::obs::{AccessPath, OpProfile};
use crate::pin::TableSource;
use crate::plan::Plan;
use crate::value::{GroupKey, Row, Value};
use std::collections::HashMap;
use std::time::Instant;

use batch::{
    aggregate_rows, distinct_rows, drain_rows, sort_rows, BatchChain, BatchFilter, BatchHashJoin,
    BatchLimit, BatchOffset, BatchProject, BatchScan, BatchTake, BatchToRow, ColumnScan,
    MaterializedBatches, RowToBatch,
};

/// A pull-based row stream.
pub trait RowStream {
    /// Produces the next row, `None` at end of stream.
    fn next_row(&mut self) -> DbResult<Option<Row>>;
}

/// Executes a plan to completion, materializing all result rows. Batch-
/// capable subtrees run vectorized.
pub fn execute(plan: &Plan, src: &dyn TableSource, ctx: &ExecCtx) -> DbResult<Vec<Row>> {
    execute_with(plan, src, ctx, None)
}

/// [`execute`] with an optional operator profile collecting runtime
/// statistics (see [`OpProfile`]); the profile must have been built from
/// this same plan.
pub fn execute_with(
    plan: &Plan,
    src: &dyn TableSource,
    ctx: &ExecCtx,
    prof: Option<&OpProfile>,
) -> DbResult<Vec<Row>> {
    drain_any(open_impl(plan, src, ctx, prof, false)?)
}

/// [`execute_with`], forced onto the row path for every operator. Used
/// by sessions that disable vectorization (`Session::set_vectorized`)
/// and by the row-vs-batch parity and benchmark harnesses.
pub fn execute_rows(
    plan: &Plan,
    src: &dyn TableSource,
    ctx: &ExecCtx,
    prof: Option<&OpProfile>,
) -> DbResult<Vec<Row>> {
    drain_any(open_impl(plan, src, ctx, prof, true)?)
}

/// Opens a plan into a row stream. Scans snapshot their table at open
/// time, so DML against the same table during iteration cannot corrupt
/// the stream. Batch-capable subtrees still run vectorized internally;
/// the result is adapted back to rows at the top.
pub fn open<'a>(
    plan: &'a Plan,
    src: &dyn TableSource,
    ctx: &'a ExecCtx,
) -> DbResult<Box<dyn RowStream + 'a>> {
    open_with(plan, src, ctx, None)
}

/// [`open`] with an optional operator profile. Scan nodes record their
/// access path and rows touched into the matching profile node; when the
/// profile is timed (`EXPLAIN ANALYZE`), every operator stream is
/// additionally wrapped to count calls/batches, rows produced, and
/// inclusive wall time.
pub fn open_with<'a>(
    plan: &'a Plan,
    src: &dyn TableSource,
    ctx: &'a ExecCtx,
    prof: Option<&'a OpProfile>,
) -> DbResult<Box<dyn RowStream + 'a>> {
    Ok(to_row(open_impl(plan, src, ctx, prof, false)?))
}

/// Either shape of operator stream; bridged on demand.
enum AnyStream<'a> {
    Rows(Box<dyn RowStream + 'a>),
    Batches(Box<dyn BatchStream + 'a>),
}

fn to_row(s: AnyStream<'_>) -> Box<dyn RowStream + '_> {
    match s {
        AnyStream::Rows(r) => r,
        AnyStream::Batches(b) => Box::new(BatchToRow::new(b)),
    }
}

fn to_batch(s: AnyStream<'_>) -> Box<dyn BatchStream + '_> {
    match s {
        AnyStream::Batches(b) => b,
        AnyStream::Rows(r) => Box::new(RowToBatch { input: r }),
    }
}

/// Pulls a stream of either shape to exhaustion.
fn drain_any(s: AnyStream<'_>) -> DbResult<Vec<Row>> {
    match s {
        AnyStream::Rows(r) => drain(r),
        AnyStream::Batches(mut b) => drain_rows(b.as_mut()),
    }
}

/// Pulls a row stream to exhaustion.
fn drain(mut stream: Box<dyn RowStream + '_>) -> DbResult<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(row) = stream.next_row()? {
        out.push(row);
    }
    Ok(out)
}

/// Opens one plan node, choosing the batch path when the node is batch-
/// capable (and `rows_only` is not forced), the row path otherwise.
/// Children are opened recursively with the same policy and bridged to
/// whatever shape this node consumes.
fn open_impl<'a>(
    plan: &'a Plan,
    src: &dyn TableSource,
    ctx: &'a ExecCtx,
    prof: Option<&'a OpProfile>,
    rows_only: bool,
) -> DbResult<AnyStream<'a>> {
    // Open-time work (scan materialization, hash build, aggregation) is
    // charged to this node; child opens record their own share, keeping
    // all reported times inclusive.
    let t0 = match prof {
        Some(p) if p.is_timed() => Some(Instant::now()),
        _ => None,
    };
    let use_batch = !rows_only && plan.node_batchable();
    let child = |i: usize| prof.map(|p| p.child(i));
    let stream: AnyStream<'a> = match plan {
        Plan::Nothing => AnyStream::Rows(Box::new(row_fallback::Once { done: false })),
        Plan::Scan {
            table,
            index_eq,
            index_overlap,
            index_range,
            filter,
            project,
            arity,
        } if use_batch
            && index_eq.is_none()
            && index_overlap.is_none()
            && index_range.is_none() =>
        {
            // Full scans on the batch path read columns straight out of
            // the table's version slots — no per-row materialization.
            let t = src.table(table)?;
            let (count, cols) = t.scan_columns(project.as_deref())?;
            if let Some(p) = prof {
                p.record_scan(AccessPath::FullScan, count as u64);
            }
            AnyStream::Batches(Box::new(ColumnScan::new(count, cols, filter, ctx)))
        }
        Plan::Scan {
            table,
            index_eq,
            index_overlap,
            index_range,
            filter,
            project,
            arity,
        } => {
            let (rows, path) = materialize_scan(
                table,
                index_eq,
                index_overlap,
                index_range,
                project,
                src,
                ctx,
            )?;
            if let Some(p) = prof {
                p.record_scan(path, rows.len() as u64);
            }
            if use_batch {
                AnyStream::Batches(Box::new(BatchScan {
                    rows,
                    pos: 0,
                    arity: *arity,
                    filter,
                    ctx,
                }))
            } else {
                AnyStream::Rows(Box::new(row_fallback::Scan {
                    rows: rows.into_iter(),
                    filter,
                    ctx,
                }))
            }
        }
        Plan::Filter { input, pred } => {
            let inner = open_impl(input, src, ctx, child(0), rows_only)?;
            if use_batch {
                AnyStream::Batches(Box::new(BatchFilter {
                    input: to_batch(inner),
                    pred,
                    ctx,
                }))
            } else {
                AnyStream::Rows(Box::new(row_fallback::Filter {
                    input: to_row(inner),
                    pred,
                    ctx,
                }))
            }
        }
        Plan::Project { input, exprs } => {
            let inner = open_impl(input, src, ctx, child(0), rows_only)?;
            if use_batch {
                AnyStream::Batches(Box::new(BatchProject {
                    input: to_batch(inner),
                    exprs,
                    ctx,
                }))
            } else {
                AnyStream::Rows(Box::new(row_fallback::Project {
                    input: to_row(inner),
                    exprs,
                    ctx,
                }))
            }
        }
        Plan::NlJoin {
            left,
            right,
            filter,
        } => {
            // Materialize the right side once; stream the left. Nested-
            // loop join stays row-only: its per-pair residual evaluation
            // gains nothing from batching.
            let right_rows = drain_any(open_impl(right, src, ctx, child(1), rows_only)?)?;
            let inner = open_impl(left, src, ctx, child(0), rows_only)?;
            AnyStream::Rows(Box::new(row_fallback::NlJoin {
                left: to_row(inner),
                right_rows,
                filter,
                ctx,
                cur_left: None,
                right_pos: 0,
            }))
        }
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            filter,
        } => {
            // Build on the right, probe with the left.
            let mut table: HashMap<GroupKey, Vec<Row>> = HashMap::new();
            for row in drain_any(open_impl(right, src, ctx, child(1), rows_only)?)? {
                let mut key = Vec::with_capacity(right_keys.len());
                let mut has_null = false;
                for k in right_keys {
                    let v = k.eval(ctx, &row)?;
                    has_null |= v.is_null();
                    key.push(v);
                }
                if has_null {
                    continue; // NULL never matches an equi-join key
                }
                table.entry(GroupKey(key)).or_default().push(row);
            }
            let inner = open_impl(left, src, ctx, child(0), rows_only)?;
            if use_batch {
                AnyStream::Batches(Box::new(BatchHashJoin {
                    left: to_batch(inner),
                    table,
                    left_keys,
                    filter,
                    ctx,
                    arity: plan.arity(),
                }))
            } else {
                AnyStream::Rows(Box::new(row_fallback::HashJoin {
                    left: to_row(inner),
                    table,
                    left_keys,
                    filter,
                    ctx,
                    cur_left: None,
                    matches: Vec::new(),
                    match_pos: 0,
                }))
            }
        }
        Plan::Aggregate { input, keys, aggs } => {
            let inner = open_impl(input, src, ctx, child(0), rows_only)?;
            if use_batch {
                let mut input = to_batch(inner);
                let rows = aggregate_rows(input.as_mut(), ctx, keys, aggs)?;
                AnyStream::Batches(Box::new(MaterializedBatches::new(rows, plan.arity())))
            } else {
                let rows = drain(to_row(inner))?;
                type GroupState = (
                    Vec<Box<dyn crate::catalog::AggregateState>>,
                    Vec<Option<std::collections::HashSet<GroupKey>>>,
                );
                let mut groups: HashMap<GroupKey, GroupState> = HashMap::new();
                let mut order: Vec<GroupKey> = Vec::new();
                let fresh = || -> GroupState {
                    (
                        aggs.iter().map(|a| (a.factory)()).collect(),
                        aggs.iter()
                            .map(|a| a.distinct.then(std::collections::HashSet::new))
                            .collect(),
                    )
                };
                for row in &rows {
                    let mut kv = Vec::with_capacity(keys.len());
                    for k in keys {
                        kv.push(k.eval(ctx, row)?);
                    }
                    let gk = GroupKey(kv);
                    let (states, seen) = match groups.get_mut(&gk) {
                        Some(s) => s,
                        None => {
                            order.push(gk.clone());
                            groups.entry(gk.clone()).or_insert_with(fresh)
                        }
                    };
                    for ((spec, st), dedup) in aggs.iter().zip(states.iter_mut()).zip(seen) {
                        let v = spec.arg.eval(ctx, row)?;
                        if v.is_null() {
                            continue; // SQL: aggregates skip NULLs
                        }
                        if let Some(seen_vals) = dedup {
                            if !seen_vals.insert(GroupKey(vec![v.clone()])) {
                                continue; // DISTINCT: already counted
                            }
                        }
                        st.step(ctx, &v)?;
                    }
                }
                // Global aggregate over an empty input still yields one row.
                if keys.is_empty() && order.is_empty() {
                    let gk = GroupKey(Vec::new());
                    order.push(gk.clone());
                    groups.insert(gk, fresh());
                }
                let mut out = Vec::with_capacity(order.len());
                for gk in order {
                    let (states, _) = groups.remove(&gk).expect("group present");
                    let mut row = gk.0;
                    for st in states {
                        row.push(st.finish(ctx)?);
                    }
                    out.push(row);
                }
                AnyStream::Rows(Box::new(row_fallback::Materialized {
                    rows: out.into_iter(),
                }))
            }
        }
        Plan::Distinct { input, visible } => {
            let inner = open_impl(input, src, ctx, child(0), rows_only)?;
            if use_batch {
                let mut input = to_batch(inner);
                let rows = distinct_rows(input.as_mut(), *visible)?;
                AnyStream::Batches(Box::new(MaterializedBatches::new(rows, plan.arity())))
            } else {
                let rows = drain(to_row(inner))?;
                let mut seen: HashMap<GroupKey, ()> = HashMap::with_capacity(rows.len());
                let mut out = Vec::new();
                for row in rows {
                    let key = GroupKey(row[..*visible].to_vec());
                    if seen.insert(key, ()).is_none() {
                        out.push(row);
                    }
                }
                AnyStream::Rows(Box::new(row_fallback::Materialized {
                    rows: out.into_iter(),
                }))
            }
        }
        Plan::Sort { input, keys } => {
            let inner = open_impl(input, src, ctx, child(0), rows_only)?;
            if use_batch {
                let mut input = to_batch(inner);
                let rows = sort_rows(input.as_mut(), keys)?;
                AnyStream::Batches(Box::new(MaterializedBatches::new(rows, plan.arity())))
            } else {
                let mut rows = drain(to_row(inner))?;
                rows.sort_by(|a, b| {
                    for (i, desc) in keys {
                        let ord = a[*i].cmp_ordering(&b[*i]);
                        let ord = if *desc { ord.reverse() } else { ord };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                AnyStream::Rows(Box::new(row_fallback::Materialized {
                    rows: rows.into_iter(),
                }))
            }
        }
        Plan::Take { input, keep } => {
            let inner = open_impl(input, src, ctx, child(0), rows_only)?;
            if use_batch {
                AnyStream::Batches(Box::new(BatchTake {
                    input: to_batch(inner),
                    keep: *keep,
                }))
            } else {
                AnyStream::Rows(Box::new(row_fallback::Take {
                    input: to_row(inner),
                    keep: *keep,
                }))
            }
        }
        Plan::Limit { input, n } => {
            let inner = open_impl(input, src, ctx, child(0), rows_only)?;
            if use_batch {
                AnyStream::Batches(Box::new(BatchLimit {
                    input: to_batch(inner),
                    remaining: *n,
                }))
            } else {
                AnyStream::Rows(Box::new(row_fallback::Limit {
                    input: to_row(inner),
                    remaining: *n,
                }))
            }
        }
        Plan::Offset { input, n } => {
            let inner = open_impl(input, src, ctx, child(0), rows_only)?;
            if use_batch {
                AnyStream::Batches(Box::new(BatchOffset {
                    input: to_batch(inner),
                    to_skip: *n,
                }))
            } else {
                AnyStream::Rows(Box::new(row_fallback::Offset {
                    input: to_row(inner),
                    to_skip: *n,
                }))
            }
        }
        Plan::Union { inputs } => {
            if use_batch {
                let mut streams = Vec::with_capacity(inputs.len());
                for (i, arm) in inputs.iter().enumerate() {
                    streams.push(to_batch(open_impl(arm, src, ctx, child(i), rows_only)?));
                }
                AnyStream::Batches(Box::new(BatchChain {
                    streams,
                    current: 0,
                }))
            } else {
                let mut streams = Vec::with_capacity(inputs.len());
                for (i, arm) in inputs.iter().enumerate() {
                    streams.push(to_row(open_impl(arm, src, ctx, child(i), rows_only)?));
                }
                AnyStream::Rows(Box::new(row_fallback::Chain {
                    streams,
                    current: 0,
                }))
            }
        }
    };
    if let (Some(p), Some(t0)) = (prof, t0) {
        p.record_open_nanos(t0.elapsed().as_nanos() as u64);
    }
    Ok(match (stream, prof) {
        // Row streams only pay per-row clock reads under EXPLAIN ANALYZE.
        (AnyStream::Rows(inner), Some(p)) if p.is_timed() => {
            AnyStream::Rows(Box::new(Instrumented { inner, prof: p }))
        }
        // Batch streams are cheap to count (once per ~1024 rows), so they
        // are instrumented whenever a profile exists — this is what feeds
        // the `exec.batches` metric even for plain SELECTs.
        (AnyStream::Batches(inner), Some(p)) => {
            AnyStream::Batches(Box::new(InstrumentedBatch { inner, prof: p }))
        }
        (s, _) => s,
    })
}

/// Materializes the rows a scan node will stream, honoring the planned
/// index probe (with runtime fallback when a deferred parameter can't
/// drive it) and the pushed-down projection. Returns the access path
/// actually taken.
#[allow(clippy::type_complexity)]
fn materialize_scan(
    table: &str,
    index_eq: &Option<(usize, crate::binder::BoundExpr)>,
    index_overlap: &Option<(usize, crate::binder::BoundExpr)>,
    index_range: &Option<Box<crate::plan::IndexRange>>,
    project: &Option<Vec<usize>>,
    src: &dyn TableSource,
    ctx: &ExecCtx,
) -> DbResult<(Vec<Row>, AccessPath)> {
    let t = src.table(table)?;
    let project_row = |mut r: Row| -> Row {
        match project {
            None => r,
            Some(cols) => cols
                .iter()
                .map(|&c| std::mem::replace(&mut r[c], Value::Null))
                .collect(),
        }
    };
    let fetch = |rowids: Vec<usize>| -> DbResult<Vec<Row>> {
        let mut rows = Vec::new();
        for rowid in rowids {
            if let Some(r) = t.get(rowid)? {
                rows.push(project_row((*r).clone()));
            }
        }
        Ok(rows)
    };
    let full_scan = || -> DbResult<Vec<Row>> {
        Ok(t.scan()?.into_iter().map(|(_, r)| project_row(r)).collect())
    };
    // Probe keys may be deferred parameters whose value is only known
    // now; when the runtime value can't drive the planned probe, fall
    // back. The access path recorded is the one actually taken, not the
    // one planned.
    if let Some((col, key_expr)) = index_eq {
        let key = key_expr.eval(ctx, &[])?;
        if key.is_null() {
            // The eq conjunct was consumed by the probe and `col = NULL`
            // is never TRUE: a NULL key matches nothing.
            Ok((Vec::new(), AccessPath::IndexEq))
        } else {
            let ix = t
                .index_on(*col)
                .ok_or_else(|| DbError::exec(format!("planned index on {table}.{col} vanished")))?;
            Ok((fetch(ix.lookup_eq(&key))?, AccessPath::IndexEq))
        }
    } else if let Some(rng) = index_range {
        let lo = match &rng.lo {
            Some((e, inc)) => Some((e.eval(ctx, &[])?, *inc)),
            None => None,
        };
        let hi = match &rng.hi {
            Some((e, inc)) => Some((e.eval(ctx, &[])?, *inc)),
            None => None,
        };
        let null_bound = lo.as_ref().map(|(v, _)| v.is_null()).unwrap_or(false)
            || hi.as_ref().map(|(v, _)| v.is_null()).unwrap_or(false);
        if null_bound {
            // A NULL bound can't order against keys; the range conjuncts
            // stay in the filter as a recheck, so a full scan is still
            // exact.
            Ok((full_scan()?, AccessPath::FullScan))
        } else {
            let ix = t.index_on(rng.column).ok_or_else(|| {
                DbError::exec(format!("planned index on {table}.{} vanished", rng.column))
            })?;
            let hits = ix.lookup_range(
                lo.as_ref().map(|(v, i)| (v, *i)),
                hi.as_ref().map(|(v, i)| (v, *i)),
            );
            Ok((fetch(hits)?, AccessPath::IndexRange))
        }
    } else if let Some((col, probe_expr)) = index_overlap {
        let probe = probe_expr.eval(ctx, &[])?;
        if probe.as_udt().is_none() {
            // A NULL (or otherwise non-UDT) probe can't be bucketed; the
            // overlaps conjunct stays in the filter, so a full scan is
            // still exact.
            Ok((full_scan()?, AccessPath::FullScan))
        } else {
            let ix = t.interval_index_on(*col).ok_or_else(|| {
                DbError::exec(format!("planned interval index on {table}.{col} vanished"))
            })?;
            Ok((
                fetch(ix.lookup_overlaps_value(&probe))?,
                AccessPath::IndexOverlap,
            ))
        }
    } else {
        Ok((full_scan()?, AccessPath::FullScan))
    }
}

/// Timing wrapper around a row operator stream; only used when the
/// profile is timed, so ordinary queries never pay per-row clock reads.
struct Instrumented<'a> {
    inner: Box<dyn RowStream + 'a>,
    prof: &'a OpProfile,
}
impl RowStream for Instrumented<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        let t0 = Instant::now();
        let r = self.inner.next_row();
        let produced = matches!(&r, Ok(Some(_)));
        self.prof
            .record_call(produced, t0.elapsed().as_nanos() as u64);
        r
    }
}

/// Counting (and, under EXPLAIN ANALYZE, timing) wrapper around a batch
/// operator stream.
struct InstrumentedBatch<'a> {
    inner: Box<dyn BatchStream + 'a>,
    prof: &'a OpProfile,
}
impl BatchStream for InstrumentedBatch<'_> {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        let t0 = self.prof.is_timed().then(Instant::now);
        let r = self.inner.next_batch();
        let nanos = t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
        match &r {
            Ok(Some(b)) => self.prof.record_batch(b.sel.count() as u64, nanos),
            // The exhausted pull still costs time but is not a batch.
            _ => self.prof.record_open_nanos(nanos),
        }
        r
    }
}
