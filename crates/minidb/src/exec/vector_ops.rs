//! Selection bitmaps and specialized batch kernels for built-in scalars.
//!
//! A [`Bitmap`] marks which lanes of a batch are still live; operators
//! narrow it instead of copying survivors, so a filtered batch keeps its
//! column vectors untouched. The kernels here replace the generic
//! per-row overload dispatch for the hottest built-in shapes (integer
//! comparisons against a constant probe, the E9 point-selection pattern)
//! with tight loops over the column storage.

use crate::catalog::{BatchFnImpl, BinaryOp, Catalog, ExecCtx, ScalarFnImpl};
use crate::value::Value;
use std::sync::Arc;

use super::batch::Vector;

/// A fixed-length selection bitmap over the lanes of one batch.
#[derive(Debug, Clone)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All lanes selected.
    pub fn all(len: usize) -> Bitmap {
        let full_words = len / 64;
        let mut words = vec![u64::MAX; full_words];
        let rem = len % 64;
        if rem > 0 {
            words.push((1u64 << rem) - 1);
        }
        Bitmap { words, len }
    }

    /// No lanes selected.
    pub fn none(len: usize) -> Bitmap {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of lanes (selected or not).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no lanes exist at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Is lane `i` selected?
    pub fn is_set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Selects lane `i`.
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Deselects lane `i`.
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Number of selected lanes (popcount).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when at least one lane is selected.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Narrows to the intersection with `other`.
    pub fn intersect(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// Iterates selected lane indexes in ascending order, skipping whole
    /// empty words.
    pub fn iter(&self) -> BitmapIter<'_> {
        BitmapIter {
            words: &self.words,
            word_ix: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over the set bits of a [`Bitmap`].
pub struct BitmapIter<'a> {
    words: &'a [u64],
    word_ix: usize,
    current: u64,
}

impl Iterator for BitmapIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_ix += 1;
            if self.word_ix >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_ix];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // drop lowest set bit
        Some(self.word_ix * 64 + bit)
    }
}

/// Wraps a row-at-a-time scalar into a batch kernel: strict NULL
/// handling per lane, evaluation only on selected lanes. This is the
/// total fallback that makes every scalar overload batch-capable even
/// when no hand-written kernel exists.
pub fn elementwise(f: ScalarFnImpl) -> BatchFnImpl {
    Arc::new(
        move |ctx: &ExecCtx, args: &[Vector], sel: &Bitmap, len: usize| {
            let mut out = vec![Value::Null; len];
            let mut buf: Vec<Value> = Vec::with_capacity(args.len());
            'lanes: for i in sel.iter() {
                buf.clear();
                for a in args {
                    let v = a.get(i);
                    if v.is_null() {
                        continue 'lanes; // strict semantics: stays NULL
                    }
                    buf.push(v.clone());
                }
                out[i] = f(ctx, &buf)?;
            }
            Ok(Vector::vals(out))
        },
    )
}

/// Specialized `Int <cmp> Int` kernel: no argument buffer, no overload
/// dispatch, no `Value` cloning — the inner loop is a plain integer
/// compare per selected lane.
fn int_cmp_kernel(op: BinaryOp) -> BatchFnImpl {
    Arc::new(
        move |_ctx: &ExecCtx, args: &[Vector], sel: &Bitmap, len: usize| {
            let mut out = vec![Value::Null; len];
            for i in sel.iter() {
                let (a, b) = (args[0].get(i), args[1].get(i));
                out[i] = match (a, b) {
                    (Value::Int(x), Value::Int(y)) => Value::Bool(match op {
                        BinaryOp::Eq => x == y,
                        BinaryOp::Ne => x != y,
                        BinaryOp::Lt => x < y,
                        BinaryOp::Le => x <= y,
                        BinaryOp::Gt => x > y,
                        BinaryOp::Ge => x >= y,
                        _ => unreachable!("not a comparison"),
                    }),
                    (Value::Null, _) | (_, Value::Null) => Value::Null,
                    // Defensive: mirror the generic comparison for any
                    // other runtime value the (Int, Int) overload sees.
                    (a, b) => Value::Bool(match op {
                        BinaryOp::Eq => a.cmp_ordering(b).is_eq(),
                        BinaryOp::Ne => a.cmp_ordering(b).is_ne(),
                        BinaryOp::Lt => a.cmp_ordering(b).is_lt(),
                        BinaryOp::Le => a.cmp_ordering(b).is_le(),
                        BinaryOp::Gt => a.cmp_ordering(b).is_gt(),
                        BinaryOp::Ge => a.cmp_ordering(b).is_ge(),
                        _ => unreachable!("not a comparison"),
                    }),
                };
            }
            Ok(Vector::vals(out))
        },
    )
}

/// Registers the hand-specialized built-in kernels. Called by
/// [`crate::builtin::install`] after the elementwise sweep so these
/// overwrite the generic wrappers.
pub fn install_builtin_kernels(cat: &mut Catalog) {
    use crate::types::DataType::Int;
    for op in [
        BinaryOp::Eq,
        BinaryOp::Ne,
        BinaryOp::Lt,
        BinaryOp::Le,
        BinaryOp::Gt,
        BinaryOp::Ge,
    ] {
        cat.register_operator_batch(op, Int, Int, int_cmp_kernel(op));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_all_none_count() {
        let b = Bitmap::all(130);
        assert_eq!(b.count(), 130);
        assert!(b.any());
        let n = Bitmap::none(130);
        assert_eq!(n.count(), 0);
        assert!(!n.any());
        assert_eq!(Bitmap::all(0).count(), 0);
        assert_eq!(Bitmap::all(64).count(), 64);
    }

    #[test]
    fn bitmap_iter_skips_cleared() {
        let mut b = Bitmap::all(200);
        for i in 0..200 {
            if i % 3 != 0 {
                b.clear(i);
            }
        }
        let got: Vec<usize> = b.iter().collect();
        let want: Vec<usize> = (0..200).filter(|i| i % 3 == 0).collect();
        assert_eq!(got, want);
        assert_eq!(b.count(), want.len());
    }

    #[test]
    fn bitmap_intersect() {
        let mut a = Bitmap::all(100);
        let mut b = Bitmap::none(100);
        b.set(3);
        b.set(99);
        a.intersect(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 99]);
    }
}
