//! The Volcano row operators: the total fallback for plans (or plan
//! subtrees) that cannot run on the batch path — typically because they
//! apply a UDT routine with no registered batch kernel, or use an
//! operator shape the batch engine does not implement (nested-loop
//! join). Semantics here are the reference; the batch engine must match
//! them byte for byte.

use crate::binder::BoundExpr;
use crate::catalog::ExecCtx;
use crate::error::DbResult;
use crate::value::{GroupKey, Row};
use std::collections::HashMap;

use super::RowStream;

pub(super) struct Once {
    pub done: bool,
}
impl RowStream for Once {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        if self.done {
            Ok(None)
        } else {
            self.done = true;
            Ok(Some(Vec::new()))
        }
    }
}

pub(super) struct Materialized {
    pub rows: std::vec::IntoIter<Row>,
}
impl RowStream for Materialized {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        Ok(self.rows.next())
    }
}

pub(super) struct Scan<'a> {
    pub rows: std::vec::IntoIter<Row>,
    pub filter: &'a Option<BoundExpr>,
    pub ctx: &'a ExecCtx,
}
impl RowStream for Scan<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        for row in self.rows.by_ref() {
            match self.filter {
                Some(pred) => {
                    if pred.eval(self.ctx, &row)?.as_bool() == Some(true) {
                        return Ok(Some(row));
                    }
                }
                None => return Ok(Some(row)),
            }
        }
        Ok(None)
    }
}

pub(super) struct Filter<'a> {
    pub input: Box<dyn RowStream + 'a>,
    pub pred: &'a BoundExpr,
    pub ctx: &'a ExecCtx,
}
impl RowStream for Filter<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        while let Some(row) = self.input.next_row()? {
            if self.pred.eval(self.ctx, &row)?.as_bool() == Some(true) {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

pub(super) struct Project<'a> {
    pub input: Box<dyn RowStream + 'a>,
    pub exprs: &'a [BoundExpr],
    pub ctx: &'a ExecCtx,
}
impl RowStream for Project<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        match self.input.next_row()? {
            Some(row) => {
                let mut out = Vec::with_capacity(self.exprs.len());
                for e in self.exprs {
                    out.push(e.eval(self.ctx, &row)?);
                }
                Ok(Some(out))
            }
            None => Ok(None),
        }
    }
}

pub(super) struct NlJoin<'a> {
    pub left: Box<dyn RowStream + 'a>,
    pub right_rows: Vec<Row>,
    pub filter: &'a Option<BoundExpr>,
    pub ctx: &'a ExecCtx,
    pub cur_left: Option<Row>,
    pub right_pos: usize,
}
impl RowStream for NlJoin<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        loop {
            if self.cur_left.is_none() {
                self.cur_left = self.left.next_row()?;
                self.right_pos = 0;
                if self.cur_left.is_none() {
                    return Ok(None);
                }
            }
            let l = self.cur_left.as_ref().expect("set above");
            while self.right_pos < self.right_rows.len() {
                let r = &self.right_rows[self.right_pos];
                self.right_pos += 1;
                let mut joined = Vec::with_capacity(l.len() + r.len());
                joined.extend_from_slice(l);
                joined.extend_from_slice(r);
                match self.filter {
                    Some(pred) => {
                        if pred.eval(self.ctx, &joined)?.as_bool() == Some(true) {
                            return Ok(Some(joined));
                        }
                    }
                    None => return Ok(Some(joined)),
                }
            }
            self.cur_left = None;
        }
    }
}

pub(super) struct HashJoin<'a> {
    pub left: Box<dyn RowStream + 'a>,
    pub table: HashMap<GroupKey, Vec<Row>>,
    pub left_keys: &'a [BoundExpr],
    pub filter: &'a Option<BoundExpr>,
    pub ctx: &'a ExecCtx,
    pub cur_left: Option<Row>,
    pub matches: Vec<Row>,
    pub match_pos: usize,
}
impl RowStream for HashJoin<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        loop {
            if self.cur_left.is_none() {
                let Some(l) = self.left.next_row()? else {
                    return Ok(None);
                };
                let mut key = Vec::with_capacity(self.left_keys.len());
                let mut has_null = false;
                for k in self.left_keys {
                    let v = k.eval(self.ctx, &l)?;
                    has_null |= v.is_null();
                    key.push(v);
                }
                self.matches = if has_null {
                    Vec::new()
                } else {
                    self.table.get(&GroupKey(key)).cloned().unwrap_or_default()
                };
                self.match_pos = 0;
                self.cur_left = Some(l);
            }
            let l = self.cur_left.as_ref().expect("set above");
            while self.match_pos < self.matches.len() {
                let r = &self.matches[self.match_pos];
                self.match_pos += 1;
                let mut joined = Vec::with_capacity(l.len() + r.len());
                joined.extend_from_slice(l);
                joined.extend_from_slice(r);
                match self.filter {
                    Some(pred) => {
                        if pred.eval(self.ctx, &joined)?.as_bool() == Some(true) {
                            return Ok(Some(joined));
                        }
                    }
                    None => return Ok(Some(joined)),
                }
            }
            self.cur_left = None;
        }
    }
}

pub(super) struct Take<'a> {
    pub input: Box<dyn RowStream + 'a>,
    pub keep: usize,
}
impl RowStream for Take<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        match self.input.next_row()? {
            Some(mut row) => {
                row.truncate(self.keep);
                Ok(Some(row))
            }
            None => Ok(None),
        }
    }
}

pub(super) struct Limit<'a> {
    pub input: Box<dyn RowStream + 'a>,
    pub remaining: u64,
}
impl RowStream for Limit<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next_row()? {
            Some(row) => {
                self.remaining -= 1;
                Ok(Some(row))
            }
            None => Ok(None),
        }
    }
}

pub(super) struct Offset<'a> {
    pub input: Box<dyn RowStream + 'a>,
    pub to_skip: u64,
}
impl RowStream for Offset<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        while self.to_skip > 0 {
            if self.input.next_row()?.is_none() {
                return Ok(None);
            }
            self.to_skip -= 1;
        }
        self.input.next_row()
    }
}

pub(super) struct Chain<'a> {
    pub streams: Vec<Box<dyn RowStream + 'a>>,
    pub current: usize,
}
impl RowStream for Chain<'_> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        while self.current < self.streams.len() {
            if let Some(row) = self.streams[self.current].next_row()? {
                return Ok(Some(row));
            }
            self.current += 1;
        }
        Ok(None)
    }
}
