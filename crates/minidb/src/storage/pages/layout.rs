//! Slotted page layout: the on-disk unit of the paged storage engine.
//!
//! One page is a fixed-size byte buffer:
//!
//! ```text
//! header (24 bytes):
//!   lsn        u64le @ 0   WAL sequence of the last mutation
//!   crc32      u32le @ 8   CRC over the whole page with this field zeroed
//!   slot_count u16le @ 12  directory entries (including tombstones)
//!   free_off   u16le @ 14  next record write offset (grows upward)
//!   flags      u8    @ 16  bit0 = cold (historical valid-time rows)
//!   reserved         @ 17..24
//! records:   grow up from offset 24
//! slot dir:  4-byte entries (offset u16le, len u16le) grow down from
//!            the page tail; slot i lives at page_size - 4*(i+1)
//! ```
//!
//! A tombstoned slot keeps its directory entry with offset
//! [`TOMBSTONE`]; record bytes are not compacted (cold pages are
//! write-once in practice). The CRC is sealed just before a page is
//! written and verified on every read — a mismatch is a torn page and
//! surfaces as a typed [`DbError::Persist`], never as garbage rows.

use crate::error::{DbError, DbResult};
use crate::wal::record::crc32;

/// Fixed header length.
pub const HDR_LEN: usize = 24;
/// Bytes per slot-directory entry.
pub const SLOT_ENTRY: usize = 4;
/// Directory offset marking a deleted slot.
pub const TOMBSTONE: u16 = u16::MAX;
/// Page flag: the page holds cold (historical) rows.
pub const FLAG_COLD: u8 = 0x01;

/// Default page size (bytes).
pub const DEFAULT_PAGE_SIZE: usize = 8192;
/// Smallest supported page size.
pub const MIN_PAGE_SIZE: usize = 512;
/// Largest supported page size (offsets are u16).
pub const MAX_PAGE_SIZE: usize = 32768;

/// Validates a configured page size: bounds plus 8-byte alignment (so
/// header fields stay aligned and offsets fit in u16).
pub fn validate_page_size(page_size: usize) -> DbResult<()> {
    if !(MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&page_size) || !page_size.is_multiple_of(8) {
        return Err(DbError::Persist {
            message: format!(
                "page size {page_size} out of range \
                 [{MIN_PAGE_SIZE}, {MAX_PAGE_SIZE}] or not 8-byte aligned"
            ),
        });
    }
    Ok(())
}

/// Largest single record a page of `page_size` can hold.
pub fn max_record_len(page_size: usize) -> usize {
    page_size - HDR_LEN - SLOT_ENTRY
}

/// Initializes `buf` as an empty page with the given flags.
pub fn init_page(buf: &mut [u8], flags: u8) {
    buf.fill(0);
    buf[16] = flags;
    set_free_off(buf, HDR_LEN as u16);
}

/// The page's last-mutation LSN.
pub fn page_lsn(buf: &[u8]) -> u64 {
    u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"))
}

/// Stamps the page's last-mutation LSN.
pub fn set_page_lsn(buf: &mut [u8], lsn: u64) {
    buf[0..8].copy_from_slice(&lsn.to_le_bytes());
}

/// The page's flag byte.
pub fn page_flags(buf: &[u8]) -> u8 {
    buf[16]
}

/// Number of slot-directory entries (live + tombstoned).
pub fn slot_count(buf: &[u8]) -> u16 {
    u16::from_le_bytes(buf[12..14].try_into().expect("2 bytes"))
}

fn set_slot_count(buf: &mut [u8], n: u16) {
    buf[12..14].copy_from_slice(&n.to_le_bytes());
}

fn free_off(buf: &[u8]) -> u16 {
    u16::from_le_bytes(buf[14..16].try_into().expect("2 bytes"))
}

fn set_free_off(buf: &mut [u8], off: u16) {
    buf[14..16].copy_from_slice(&off.to_le_bytes());
}

fn dir_pos(page_size: usize, slot: u16) -> usize {
    page_size - SLOT_ENTRY * (slot as usize + 1)
}

fn dir_entry(buf: &[u8], slot: u16) -> (u16, u16) {
    let p = dir_pos(buf.len(), slot);
    (
        u16::from_le_bytes(buf[p..p + 2].try_into().expect("2 bytes")),
        u16::from_le_bytes(buf[p + 2..p + 4].try_into().expect("2 bytes")),
    )
}

fn set_dir_entry(buf: &mut [u8], slot: u16, off: u16, len: u16) {
    let p = dir_pos(buf.len(), slot);
    buf[p..p + 2].copy_from_slice(&off.to_le_bytes());
    buf[p + 2..p + 4].copy_from_slice(&len.to_le_bytes());
}

/// Contiguous free bytes between the record heap and the directory.
pub fn free_space(buf: &[u8]) -> usize {
    let dir_top = dir_pos(buf.len(), slot_count(buf)) + SLOT_ENTRY;
    dir_top.saturating_sub(free_off(buf) as usize)
}

/// `true` when a record of `len` bytes (plus its directory entry) fits.
pub fn can_fit(buf: &[u8], len: usize) -> bool {
    free_space(buf) >= len + SLOT_ENTRY
}

/// Appends a record, returning its slot number, or `None` when it does
/// not fit.
pub fn insert_slot(buf: &mut [u8], bytes: &[u8]) -> Option<u16> {
    if !can_fit(buf, bytes.len()) || bytes.len() > u16::MAX as usize {
        return None;
    }
    let slot = slot_count(buf);
    if slot == u16::MAX {
        return None; // directory full (TOMBSTONE is reserved)
    }
    let off = free_off(buf);
    buf[off as usize..off as usize + bytes.len()].copy_from_slice(bytes);
    set_dir_entry(buf, slot, off, bytes.len() as u16);
    set_slot_count(buf, slot + 1);
    set_free_off(buf, off + bytes.len() as u16);
    Some(slot)
}

/// The record bytes of a live slot; `Ok(None)` for a tombstoned slot,
/// `Err` for an out-of-range slot or a structurally impossible entry
/// (corruption the CRC did not catch, e.g. a stale mapping).
pub fn read_slot(buf: &[u8], slot: u16) -> DbResult<Option<&[u8]>> {
    if slot >= slot_count(buf) {
        return Err(DbError::Persist {
            message: format!("page slot {slot} out of range ({} slots)", slot_count(buf)),
        });
    }
    let (off, len) = dir_entry(buf, slot);
    if off == TOMBSTONE {
        return Ok(None);
    }
    let (start, end) = (off as usize, off as usize + len as usize);
    if start < HDR_LEN || end > free_off(buf) as usize {
        return Err(DbError::Persist {
            message: format!("page slot {slot} points outside the record heap"),
        });
    }
    Ok(Some(&buf[start..end]))
}

/// Tombstones a slot; returns `true` when it was live.
pub fn delete_slot(buf: &mut [u8], slot: u16) -> bool {
    if slot >= slot_count(buf) {
        return false;
    }
    let (off, len) = dir_entry(buf, slot);
    if off == TOMBSTONE {
        return false;
    }
    set_dir_entry(buf, slot, TOMBSTONE, len);
    true
}

/// Number of live (non-tombstoned) slots.
pub fn live_slots(buf: &[u8]) -> u32 {
    (0..slot_count(buf))
        .filter(|&s| dir_entry(buf, s).0 != TOMBSTONE)
        .count() as u32
}

/// Computes and stores the page CRC (over the whole page with the CRC
/// field itself zeroed). Call just before writing the page out.
pub fn seal_crc(buf: &mut [u8]) {
    buf[8..12].fill(0);
    let crc = crc32(buf);
    buf[8..12].copy_from_slice(&crc.to_le_bytes());
}

/// Verifies the stored CRC; `false` means a torn or corrupt page.
pub fn verify_crc(buf: &[u8]) -> bool {
    let stored = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
    let mut copy = buf.to_vec();
    copy[8..12].fill(0);
    crc32(&copy) == stored
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_read_delete_round_trip() {
        let mut p = vec![0u8; 1024];
        init_page(&mut p, FLAG_COLD);
        assert_eq!(page_flags(&p), FLAG_COLD);
        let a = insert_slot(&mut p, b"hello").unwrap();
        let b = insert_slot(&mut p, b"").unwrap();
        let c = insert_slot(&mut p, b"world!").unwrap();
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(read_slot(&p, a).unwrap(), Some(&b"hello"[..]));
        assert_eq!(read_slot(&p, b).unwrap(), Some(&b""[..]));
        assert_eq!(read_slot(&p, c).unwrap(), Some(&b"world!"[..]));
        assert!(delete_slot(&mut p, b));
        assert!(!delete_slot(&mut p, b));
        assert_eq!(read_slot(&p, b).unwrap(), None);
        assert_eq!(live_slots(&p), 2);
        assert!(read_slot(&p, 3).is_err());
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = vec![0u8; MIN_PAGE_SIZE];
        init_page(&mut p, 0);
        let rec = [7u8; 60];
        let mut n = 0;
        while insert_slot(&mut p, &rec).is_some() {
            n += 1;
        }
        assert!(n >= (MIN_PAGE_SIZE - HDR_LEN) / (60 + SLOT_ENTRY));
        assert!(!can_fit(&p, 60));
        // Smaller records may still fit.
        assert_eq!(
            free_space(&p),
            MIN_PAGE_SIZE - HDR_LEN - n * (60 + SLOT_ENTRY)
        );
    }

    #[test]
    fn crc_seal_and_verify() {
        let mut p = vec![0u8; 512];
        init_page(&mut p, 0);
        insert_slot(&mut p, b"payload").unwrap();
        set_page_lsn(&mut p, 42);
        seal_crc(&mut p);
        assert!(verify_crc(&p));
        assert_eq!(page_lsn(&p), 42);
        // Any flipped byte is caught.
        let mut torn = p.clone();
        torn[100] ^= 0xFF;
        assert!(!verify_crc(&torn));
    }

    #[test]
    fn page_size_validation() {
        assert!(validate_page_size(DEFAULT_PAGE_SIZE).is_ok());
        assert!(validate_page_size(MIN_PAGE_SIZE).is_ok());
        assert!(validate_page_size(MAX_PAGE_SIZE).is_ok());
        assert!(validate_page_size(100).is_err());
        assert!(validate_page_size(65536).is_err());
        assert!(validate_page_size(8191).is_err());
    }

    proptest! {
        /// Random insert/delete interleavings round-trip: every record
        /// reads back byte-identical, tombstones stay dead, and the
        /// layout survives a CRC seal + verify cycle.
        #[test]
        fn prop_slotted_round_trip(
            records in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..200), 1..40),
            kill in proptest::collection::vec(any::<u16>(), 0..10),
        ) {
            let mut p = vec![0u8; DEFAULT_PAGE_SIZE];
            init_page(&mut p, FLAG_COLD);
            let mut stored: Vec<Option<Vec<u8>>> = Vec::new();
            for rec in &records {
                match insert_slot(&mut p, rec) {
                    Some(slot) => {
                        prop_assert_eq!(slot as usize, stored.len());
                        stored.push(Some(rec.clone()));
                    }
                    None => prop_assert!(!can_fit(&p, rec.len())),
                }
            }
            for &k in &kill {
                if (k as usize) < stored.len() {
                    let was_live = stored[k as usize].take().is_some();
                    prop_assert_eq!(delete_slot(&mut p, k), was_live);
                }
            }
            seal_crc(&mut p);
            prop_assert!(verify_crc(&p));
            prop_assert_eq!(
                live_slots(&p) as usize,
                stored.iter().filter(|s| s.is_some()).count()
            );
            for (i, want) in stored.iter().enumerate() {
                let got = read_slot(&p, i as u16).unwrap();
                prop_assert_eq!(got, want.as_deref());
            }
        }
    }
}
