//! Paged storage engine: disk manager, evicting buffer pool, and the
//! [`PagedStore`] that tables allocate cold-row slots from.
//!
//! Layering:
//!
//! * [`layout`] — the slotted page format (CRC + LSN header, slot
//!   directory) over raw byte buffers.
//! * [`disk`] — the single `pages.db` file; torn-page detection on read.
//! * [`pool`] — the bounded frame table with CLOCK eviction, pin
//!   guards, and WAL-barriered dirty writeback.
//! * [`PagedStore`] (here) — page allocation and the epoch life cycle
//!   that makes reuse crash-safe.
//!
//! ## Crash-safe page reuse
//!
//! The durable state is `snapshot.db` (the epoch record: every table's
//! slot layout, with cold rows as `(page, slot)` references) plus the
//! WAL. Pages referenced by the *on-disk* snapshot must stay immutable
//! until the next epoch is durably published — otherwise a crash
//! between a page overwrite and the snapshot rename would leave the old
//! snapshot pointing at bytes it never described. `PagedStore` enforces
//! this with three rules:
//!
//! 1. Records are only appended to pages **not** in `durable_refs` (the
//!    pages the last published epoch references). The current fill page
//!    is retired at every epoch publish, so each page is written during
//!    at most one epoch window.
//! 2. Freed slots are bookkeeping only — page bytes are never mutated
//!    by deletion. A page becomes *dead* when its live count reaches
//!    zero.
//! 3. A dead page returns to the free list only after (a) an epoch that
//!    no longer references it has been published, and (b) the MVCC GC
//!    floor has passed the sequence at which it was stamped dead — so
//!    no retained table version (and no in-flight `AS OF` pin) can
//!    still fault it.

pub mod disk;
pub mod layout;
pub mod pool;

pub use disk::{DiskManager, PAGE_FILE};
pub use layout::{DEFAULT_PAGE_SIZE, FLAG_COLD, MAX_PAGE_SIZE, MIN_PAGE_SIZE};
pub use pool::{BufferPool, FlushBarrier, PageGuard, PoolStatsSnapshot};

use crate::error::{DbError, DbResult};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;

/// Address of one cold record: page number + slot within the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColdRef {
    pub page: u32,
    pub slot: u16,
}

#[derive(Default)]
struct StoreMeta {
    /// Next never-allocated page number (page 0 is the file header).
    next_page: u32,
    /// Current fill target for new records; retired at epoch publish.
    open_page: Option<u32>,
    /// Live record count per page still holding current rows.
    live: HashMap<u32, u32>,
    /// Pages cleared for reuse.
    free_pages: Vec<u32>,
    /// Fully dead pages awaiting reclaim: page -> the checkpoint
    /// sequence at which death was durably recorded (`u64::MAX` until
    /// the first publish after death stamps it).
    dead: HashMap<u32, u64>,
    /// Pages the last *published* epoch references — immutable and
    /// unallocatable until a later epoch drops them.
    durable_refs: HashSet<u32>,
}

/// The page allocator over one buffer pool — shared by every table of a
/// database.
pub struct PagedStore {
    pool: Arc<BufferPool>,
    meta: Mutex<StoreMeta>,
}

impl std::fmt::Debug for PagedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = self.meta.lock();
        f.debug_struct("PagedStore")
            .field("next_page", &m.next_page)
            .field("live_pages", &m.live.len())
            .field("free_pages", &m.free_pages.len())
            .field("dead_pages", &m.dead.len())
            .finish()
    }
}

impl PagedStore {
    /// Opens (creating as needed) the page file in `dir` behind a pool
    /// of `pool_pages` frames.
    pub fn open(dir: &Path, page_size: usize, pool_pages: usize) -> DbResult<Arc<PagedStore>> {
        let disk = DiskManager::open(dir, page_size)?;
        Ok(Arc::new(PagedStore {
            pool: Arc::new(BufferPool::new(disk, pool_pages)),
            meta: Mutex::new(StoreMeta {
                next_page: 1,
                ..StoreMeta::default()
            }),
        }))
    }

    /// Installs the WAL flush barrier on the pool (one-shot).
    pub fn set_flush_barrier(&self, f: FlushBarrier) {
        self.pool.set_flush_barrier(f);
    }

    /// Largest record a page can hold; bigger rows stay resident.
    pub fn max_record_len(&self) -> usize {
        layout::max_record_len(self.pool.page_size())
    }

    /// The configured page size.
    pub fn page_size(&self) -> usize {
        self.pool.page_size()
    }

    /// The pool's frame capacity.
    pub fn pool_pages(&self) -> usize {
        self.pool.capacity()
    }

    /// Pool counter snapshot (`bufpool.*` gauges).
    pub fn stats(&self) -> PoolStatsSnapshot {
        self.pool.stats()
    }

    /// `true` when the page is resident in the pool (tests/benches).
    pub fn page_resident(&self, page: u32) -> bool {
        self.pool.contains(page)
    }

    /// Pins a page resident (tests exercise eviction-under-pinning
    /// through this).
    pub fn pin_page(&self, page: u32) -> DbResult<PageGuard> {
        self.pool.pin_page(page)
    }

    /// Appends a record, returning its address. Only pages outside the
    /// durable epoch are written (see the module docs), so a crash
    /// before the next snapshot rename can never corrupt what the
    /// current snapshot references.
    pub fn alloc_slot(&self, bytes: &[u8], lsn: u64) -> DbResult<ColdRef> {
        if bytes.len() > self.max_record_len() {
            return Err(DbError::Persist {
                message: format!(
                    "record of {} bytes exceeds page capacity {}",
                    bytes.len(),
                    self.max_record_len()
                ),
            });
        }
        let mut m = self.meta.lock();
        if let Some(page) = m.open_page {
            if let Some(slot) = self.pool.insert_slot(page, bytes, lsn)? {
                *m.live.entry(page).or_insert(0) += 1;
                return Ok(ColdRef { page, slot });
            }
            m.open_page = None; // full: start a new page
        }
        let page = match m.free_pages.pop() {
            Some(p) => p,
            None => {
                let p = m.next_page;
                m.next_page += 1;
                p
            }
        };
        debug_assert!(
            !m.durable_refs.contains(&page),
            "allocated a page the durable epoch still references"
        );
        self.pool.create_page(page, FLAG_COLD, lsn)?;
        let slot = self
            .pool
            .insert_slot(page, bytes, lsn)?
            .expect("fresh page fits a validated record");
        m.open_page = Some(page);
        *m.live.entry(page).or_insert(0) += 1;
        Ok(ColdRef { page, slot })
    }

    /// Drops one record reference. Pure bookkeeping — page bytes are
    /// never rewritten by deletion (rule 2 of the module docs); when a
    /// page's live count reaches zero it is queued for epoch-gated
    /// reclaim.
    pub fn free_slot(&self, cref: ColdRef) {
        let mut m = self.meta.lock();
        let dead = match m.live.get_mut(&cref.page) {
            Some(n) => {
                *n = n.saturating_sub(1);
                *n == 0
            }
            None => false,
        };
        if dead {
            m.live.remove(&cref.page);
            if m.open_page == Some(cref.page) {
                m.open_page = None;
            }
            m.dead.insert(cref.page, u64::MAX);
        }
    }

    /// Copies one record's bytes out, faulting its page in (and
    /// CRC-checking it) as needed.
    pub fn read(&self, cref: ColdRef) -> DbResult<Vec<u8>> {
        self.pool.read_slot(cref.page, cref.slot)
    }

    /// Writes every dirty page (WAL barrier first) and fsyncs the page
    /// file — called before the snapshot that references those pages is
    /// published. O(dirty), not O(database).
    pub fn flush(&self) -> DbResult<()> {
        self.pool.flush_dirty()
    }

    /// Publishes an epoch: `refs` are the pages the just-written
    /// snapshot references, `seq` its checkpoint sequence, `floor` the
    /// MVCC GC floor after the checkpoint's version sweep. Stamps
    /// newly-dead pages, reclaims pages dead since before `floor` that
    /// the epoch no longer references, retires the fill page, and
    /// installs `refs` as the new immutable set.
    pub fn publish_epoch(&self, refs: &HashSet<u32>, seq: u64, floor: u64) {
        let mut m = self.meta.lock();
        let mut freed = Vec::new();
        for (&page, dead_at) in m.dead.iter_mut() {
            if *dead_at == u64::MAX {
                *dead_at = seq;
            } else if *dead_at < floor && !refs.contains(&page) {
                freed.push(page);
            }
        }
        for page in freed {
            m.dead.remove(&page);
            m.free_pages.push(page);
        }
        // A page can drop out of the reference set without ever seeing
        // `free_slot` — a DROP TABLE discards cold rows wholesale. Such
        // pages still carry a live count; stamp them dead now so they
        // are reclaimed once the floor passes, instead of leaking until
        // the next restart.
        let orphaned: Vec<u32> = m
            .live
            .keys()
            .filter(|p| !refs.contains(p))
            .copied()
            .collect();
        for page in orphaned {
            m.live.remove(&page);
            m.dead.insert(page, seq);
        }
        // The fill page is now (or may now be) durably referenced:
        // retire it so no later write mutates an epoch-referenced page.
        m.open_page = None;
        m.durable_refs = refs.clone();
    }

    /// Adopts the page references of a just-loaded snapshot — the
    /// recovery path. `live_counts` maps each referenced page to its
    /// record count. Every other page below the high-water mark is
    /// free: the loaded snapshot *is* the durable epoch, so nothing
    /// else can be referenced (a torn checkpoint's half-written pages
    /// land here and are simply overwritten on reuse).
    pub fn adopt_refs(&self, live_counts: HashMap<u32, u32>) {
        let mut m = self.meta.lock();
        m.next_page = live_counts.keys().max().map_or(1, |&p| p + 1);
        m.durable_refs = live_counts.keys().copied().collect();
        m.free_pages = (1..m.next_page)
            .filter(|p| !live_counts.contains_key(p))
            .collect();
        m.live = live_counts;
        m.dead.clear();
        m.open_page = None;
    }

    /// `(live, free, dead)` page counts — observability and tests.
    pub fn page_counts(&self) -> (usize, usize, usize) {
        let m = self.meta.lock();
        (m.live.len(), m.free_pages.len(), m.dead.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch() -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "minidb-store-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn alloc_read_free_and_epoch_reclaim() {
        let dir = scratch();
        let store = PagedStore::open(&dir, 512, 8).unwrap();
        let a = store.alloc_slot(b"one", 1).unwrap();
        let b = store.alloc_slot(b"two", 1).unwrap();
        assert_eq!(a.page, b.page, "records pack into the fill page");
        assert_eq!(store.read(a).unwrap(), b"one");
        assert_eq!(store.read(b).unwrap(), b"two");

        // Free both: the page goes dead but is NOT immediately reusable.
        store.free_slot(a);
        store.free_slot(b);
        assert_eq!(store.page_counts(), (0, 0, 1));

        // First publish stamps death at seq 5; the page must survive
        // until the floor passes 5 (a retained MVCC version could still
        // fault it).
        store.publish_epoch(&HashSet::new(), 5, 3);
        assert_eq!(store.page_counts(), (0, 0, 1));
        // Floor moves past 5: reclaimed.
        store.publish_epoch(&HashSet::new(), 9, 8);
        assert_eq!(store.page_counts(), (0, 1, 0));

        // The freed page is reused for the next allocation.
        let c = store.alloc_slot(b"three", 10).unwrap();
        assert_eq!(c.page, a.page);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn epoch_referenced_pages_are_never_refilled() {
        let dir = scratch();
        let store = PagedStore::open(&dir, 512, 8).unwrap();
        let a = store.alloc_slot(b"kept", 1).unwrap();
        // Publish an epoch referencing the fill page: it is retired.
        store.publish_epoch(&HashSet::from([a.page]), 2, 1);
        let b = store.alloc_slot(b"next", 3).unwrap();
        assert_ne!(
            a.page, b.page,
            "a durably-referenced page must not take new records"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn adopt_refs_rebuilds_allocation_state() {
        let dir = scratch();
        let store = PagedStore::open(&dir, 512, 8).unwrap();
        for _ in 0..3 {
            // Burn through pages 1..=3 by filling each with one big
            // record and retiring the fill page.
            let r = store.alloc_slot(&[7u8; 300], 1).unwrap();
            store.publish_epoch(&HashSet::from([r.page]), 1, 0);
        }
        // Recovery says only page 2 is referenced (2 records). Page 1
        // lands on the free list; page 3 is above the adopted
        // high-water mark and returns to the fresh extent (`next_page`
        // resets to 3), so it is reused by extension, not via the list.
        store.adopt_refs(HashMap::from([(2u32, 2u32)]));
        assert_eq!(store.page_counts(), (1, 1, 0), "page 1 is free");
        let r = store.alloc_slot(b"new", 2).unwrap();
        assert_ne!(r.page, 2, "the referenced page is not allocatable");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
