//! Evicting buffer pool: a bounded frame table over the disk manager.
//!
//! The pool core (frame table + clock hand + disk manager) lives under
//! one mutex — faults, reads, and mutations are short critical sections
//! that copy record bytes in or out, so the single lock is simpler and
//! safe: a pin can only be taken under the same lock the eviction scan
//! holds, closing the pin/evict race by construction.
//!
//! Eviction is CLOCK over unpinned frames (a referenced bit grants one
//! lap of grace). Evicting a dirty frame honors the WAL rule: the
//! configured flush barrier is invoked with the page's LSN — forcing the
//! WAL durable through that sequence — before the page bytes are
//! written. A pool at capacity with every frame pinned reports a typed
//! [`DbError::Persist`], never a deadlock.

use super::disk::DiskManager;
use super::layout;
use crate::error::{DbError, DbResult};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Flushes the WAL durable through the given LSN — installed by the
/// durability layer before any dirty page can be evicted.
pub type FlushBarrier = Arc<dyn Fn(u64) -> DbResult<()> + Send + Sync>;

/// Monotonic pool counters plus the resident-page gauge.
#[derive(Default)]
pub struct PoolStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub evictions: AtomicU64,
    pub writebacks: AtomicU64,
    pub pages: AtomicU64,
}

/// A point-in-time copy of [`PoolStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStatsSnapshot {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub writebacks: u64,
    pub pages: u64,
}

struct Frame {
    data: Vec<u8>,
    pin: u32,
    dirty: bool,
    ref_bit: bool,
}

struct Core {
    disk: DiskManager,
    frames: HashMap<u32, Frame>,
    /// Clock order: resident page numbers; stale entries (already
    /// evicted) are skipped and dropped lazily.
    clock: Vec<u32>,
    hand: usize,
}

/// The bounded, evicting page cache.
pub struct BufferPool {
    core: Mutex<Core>,
    capacity: usize,
    page_size: usize,
    stats: PoolStats,
    flush_barrier: OnceLock<FlushBarrier>,
}

impl BufferPool {
    /// Wraps a disk manager with a pool of at most `capacity` frames.
    pub fn new(disk: DiskManager, capacity: usize) -> BufferPool {
        let page_size = disk.page_size();
        BufferPool {
            core: Mutex::new(Core {
                disk,
                frames: HashMap::new(),
                clock: Vec::new(),
                hand: 0,
            }),
            capacity: capacity.max(1),
            page_size,
            stats: PoolStats::default(),
            flush_barrier: OnceLock::new(),
        }
    }

    /// Installs the WAL flush barrier. One-shot; later calls are ignored.
    pub fn set_flush_barrier(&self, f: FlushBarrier) {
        let _ = self.flush_barrier.set(f);
    }

    /// The pool's frame capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The underlying page size.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStatsSnapshot {
        PoolStatsSnapshot {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            writebacks: self.stats.writebacks.load(Ordering::Relaxed),
            pages: self.stats.pages.load(Ordering::Relaxed),
        }
    }

    /// `true` when the page is currently resident (tests/benches).
    pub fn contains(&self, page_no: u32) -> bool {
        self.core.lock().frames.contains_key(&page_no)
    }

    fn flush_frame(&self, disk: &mut DiskManager, page_no: u32, frame: &mut Frame) -> DbResult<()> {
        if !frame.dirty {
            return Ok(());
        }
        // WAL rule: the log must be durable through this page's LSN
        // before the page bytes may reach disk.
        if let Some(barrier) = self.flush_barrier.get() {
            barrier(layout::page_lsn(&frame.data))?;
        }
        layout::seal_crc(&mut frame.data);
        disk.write_page(page_no, &frame.data)?;
        frame.dirty = false;
        self.stats.writebacks.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Makes room for one more frame, evicting a CLOCK victim if the
    /// pool is full. Errors (typed, no deadlock) when every frame is
    /// pinned.
    fn make_room(&self, core: &mut Core) -> DbResult<()> {
        if core.frames.len() < self.capacity {
            return Ok(());
        }
        // Two laps: the first clears referenced bits, the second takes
        // the first unpinned frame. 2 * clock.len() sweep positions
        // bound the scan; if none qualify, everything is pinned.
        let mut swept = 0usize;
        let max_sweep = 2 * core.clock.len().max(1);
        while swept < max_sweep {
            if core.clock.is_empty() {
                break;
            }
            let i = core.hand % core.clock.len();
            let page_no = core.clock[i];
            match core.frames.get_mut(&page_no) {
                None => {
                    // Stale clock entry: drop it, keep the hand in place.
                    core.clock.swap_remove(i);
                    continue;
                }
                Some(f) if f.pin > 0 => {
                    core.hand = (i + 1) % core.clock.len();
                    swept += 1;
                }
                Some(f) if f.ref_bit => {
                    f.ref_bit = false;
                    core.hand = (i + 1) % core.clock.len();
                    swept += 1;
                }
                Some(_) => {
                    let mut frame = core.frames.remove(&page_no).expect("present");
                    core.clock.swap_remove(i);
                    if core.hand >= core.clock.len() {
                        core.hand = 0;
                    }
                    self.flush_frame(&mut core.disk, page_no, &mut frame)?;
                    self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                    self.stats
                        .pages
                        .store(core.frames.len() as u64, Ordering::Relaxed);
                    return Ok(());
                }
            }
        }
        Err(DbError::Persist {
            message: format!("buffer pool exhausted: all {} frames pinned", self.capacity),
        })
    }

    /// Faults `page_no` into the pool (reading and CRC-checking it from
    /// disk) unless already resident. Returns a mutable ref under the
    /// held core lock.
    fn frame_mut<'a>(&self, core: &'a mut Core, page_no: u32) -> DbResult<&'a mut Frame> {
        if core.frames.contains_key(&page_no) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            self.make_room(core)?;
            let mut data = vec![0u8; self.page_size];
            core.disk.read_page(page_no, &mut data)?;
            core.frames.insert(
                page_no,
                Frame {
                    data,
                    pin: 0,
                    dirty: false,
                    ref_bit: false,
                },
            );
            core.clock.push(page_no);
            self.stats
                .pages
                .store(core.frames.len() as u64, Ordering::Relaxed);
        }
        let f = core.frames.get_mut(&page_no).expect("just ensured");
        f.ref_bit = true;
        Ok(f)
    }

    /// Installs a brand-new empty page (never read from disk), dirty
    /// from birth. The caller owns page-number allocation; reusing a
    /// reclaimed page number whose stale frame is still resident
    /// reinitializes that frame in place (the epoch life cycle
    /// guarantees no reader can still want the old bytes).
    pub fn create_page(&self, page_no: u32, flags: u8, lsn: u64) -> DbResult<()> {
        let mut core = self.core.lock();
        if let Some(f) = core.frames.get_mut(&page_no) {
            layout::init_page(&mut f.data, flags);
            layout::set_page_lsn(&mut f.data, lsn);
            f.dirty = true;
            f.ref_bit = true;
            return Ok(());
        }
        self.make_room(&mut core)?;
        let mut data = vec![0u8; self.page_size];
        layout::init_page(&mut data, flags);
        layout::set_page_lsn(&mut data, lsn);
        core.frames.insert(
            page_no,
            Frame {
                data,
                pin: 0,
                dirty: true,
                ref_bit: true,
            },
        );
        core.clock.push(page_no);
        self.stats
            .pages
            .store(core.frames.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Copies the record bytes of a live slot out of the page (faulting
    /// it in as needed). A tombstoned slot is a typed error — the caller
    /// holds the only mapping, so a dangling reference is corruption.
    pub fn read_slot(&self, page_no: u32, slot: u16) -> DbResult<Vec<u8>> {
        let mut core = self.core.lock();
        let frame = self.frame_mut(&mut core, page_no)?;
        match layout::read_slot(&frame.data, slot)? {
            Some(bytes) => Ok(bytes.to_vec()),
            None => Err(DbError::Persist {
                message: format!("page {page_no} slot {slot} is tombstoned"),
            }),
        }
    }

    /// Appends a record to the page, stamping the page LSN; returns the
    /// slot, or `None` when the record does not fit.
    pub fn insert_slot(&self, page_no: u32, bytes: &[u8], lsn: u64) -> DbResult<Option<u16>> {
        let mut core = self.core.lock();
        let frame = self.frame_mut(&mut core, page_no)?;
        match layout::insert_slot(&mut frame.data, bytes) {
            Some(slot) => {
                layout::set_page_lsn(&mut frame.data, lsn);
                frame.dirty = true;
                Ok(Some(slot))
            }
            None => Ok(None),
        }
    }

    /// Tombstones a slot, stamping the page LSN; `true` when it was live.
    pub fn free_slot(&self, page_no: u32, slot: u16, lsn: u64) -> DbResult<bool> {
        let mut core = self.core.lock();
        let frame = self.frame_mut(&mut core, page_no)?;
        if layout::delete_slot(&mut frame.data, slot) {
            layout::set_page_lsn(&mut frame.data, lsn);
            frame.dirty = true;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Writes every dirty frame back (WAL barrier first) and fsyncs the
    /// page file — the checkpoint's O(dirty) flush.
    pub fn flush_dirty(&self) -> DbResult<()> {
        let mut core = self.core.lock();
        let dirty: Vec<u32> = core
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&p, _)| p)
            .collect();
        for page_no in dirty {
            let mut frame = core.frames.remove(&page_no).expect("listed");
            self.flush_frame(&mut core.disk, page_no, &mut frame)?;
            core.frames.insert(page_no, frame);
        }
        core.disk.sync()
    }

    /// Pins a page resident (faulting it in as needed). The guard keeps
    /// it unevictable until dropped.
    pub fn pin_page(self: &Arc<Self>, page_no: u32) -> DbResult<PageGuard> {
        let mut core = self.core.lock();
        let frame = self.frame_mut(&mut core, page_no)?;
        frame.pin += 1;
        Ok(PageGuard {
            pool: Arc::clone(self),
            page_no,
        })
    }
}

/// RAII pin on one page: while alive, the page cannot be evicted.
pub struct PageGuard {
    pool: Arc<BufferPool>,
    page_no: u32,
}

impl PageGuard {
    /// The pinned page number.
    pub fn page_no(&self) -> u32 {
        self.page_no
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        let mut core = self.pool.core.lock();
        if let Some(f) = core.frames.get_mut(&self.page_no) {
            f.pin = f.pin.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::disk::DiskManager;
    use super::*;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::AtomicU64 as TestSeq;

    fn scratch() -> PathBuf {
        static SEQ: TestSeq = TestSeq::new(0);
        let dir = std::env::temp_dir().join(format!(
            "minidb-pool-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn pool(dir: &Path, capacity: usize) -> Arc<BufferPool> {
        let disk = DiskManager::open(dir, 512).unwrap();
        Arc::new(BufferPool::new(disk, capacity))
    }

    #[test]
    fn spill_and_fault_round_trip() {
        let dir = scratch();
        let p = pool(&dir, 2);
        // Three pages through a 2-frame pool: something must evict.
        for page in 1..=3u32 {
            p.create_page(page, layout::FLAG_COLD, page as u64).unwrap();
            let slot = p
                .insert_slot(page, format!("rec-{page}").as_bytes(), page as u64)
                .unwrap()
                .unwrap();
            assert_eq!(slot, 0);
        }
        let s = p.stats();
        assert!(s.evictions >= 1, "{s:?}");
        assert!(s.pages <= 2);
        // Every record still reads back, faulting from disk as needed.
        for page in 1..=3u32 {
            assert_eq!(
                p.read_slot(page, 0).unwrap(),
                format!("rec-{page}").into_bytes()
            );
        }
        assert!(p.stats().misses >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pinned_pages_never_evicted_and_full_pool_errors() {
        let dir = scratch();
        let p = pool(&dir, 2);
        p.create_page(1, 0, 1).unwrap();
        p.create_page(2, 0, 1).unwrap();
        let g1 = p.pin_page(1).unwrap();
        let g2 = p.pin_page(2).unwrap();
        // Pool at capacity, all pinned: a third page is a typed error,
        // not a deadlock.
        let err = p.create_page(3, 0, 1).unwrap_err();
        assert!(
            matches!(&err, DbError::Persist { message } if message.contains("exhausted")),
            "{err}"
        );
        assert!(p.contains(1) && p.contains(2));
        // Releasing one pin unblocks eviction; the pinned page survives.
        drop(g2);
        p.create_page(3, 0, 1).unwrap();
        assert!(p.contains(1), "pinned page must never be evicted");
        assert!(!p.contains(2), "unpinned page was the victim");
        drop(g1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dirty_eviction_invokes_wal_barrier_first() {
        let dir = scratch();
        let p = pool(&dir, 1);
        let barrier_lsn = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&barrier_lsn);
        p.set_flush_barrier(Arc::new(move |lsn| {
            seen.fetch_max(lsn, Ordering::SeqCst);
            Ok(())
        }));
        p.create_page(1, 0, 77).unwrap();
        p.insert_slot(1, b"dirty", 77).unwrap();
        // Faulting page 2 evicts dirty page 1 → barrier sees LSN 77.
        p.create_page(2, 0, 78).unwrap();
        assert_eq!(barrier_lsn.load(Ordering::SeqCst), 77);
        assert_eq!(p.stats().writebacks, 1);
        // The evicted page reads back from disk intact.
        assert_eq!(p.read_slot(1, 0).unwrap(), b"dirty");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_dirty_persists_everything() {
        let dir = scratch();
        {
            let p = pool(&dir, 4);
            for page in 1..=3u32 {
                p.create_page(page, 0, 5).unwrap();
                p.insert_slot(page, b"keep", 5).unwrap();
            }
            p.flush_dirty().unwrap();
        }
        // A fresh pool over the same file sees the data.
        let p2 = pool(&dir, 4);
        for page in 1..=3u32 {
            assert_eq!(p2.read_slot(page, 0).unwrap(), b"keep");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
