//! Disk manager: owns the single page file (`pages.db`).
//!
//! Page 0 is the file header (`TIPPAGE1` magic + page size); data pages
//! start at 1, page `i` at byte offset `i * page_size`. Every read
//! verifies the page CRC — a short read or CRC mismatch is a torn page
//! and surfaces as a typed [`DbError::Persist`].

use super::layout;
use crate::error::{DbError, DbResult};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Name of the page file inside a data directory.
pub const PAGE_FILE: &str = "pages.db";

const FILE_MAGIC: &[u8; 8] = b"TIPPAGE1";

fn io_err(what: &str, e: std::io::Error) -> DbError {
    DbError::Persist {
        message: format!("{what}: {e}"),
    }
}

/// The page file plus its fixed page size.
#[derive(Debug)]
pub struct DiskManager {
    file: File,
    page_size: usize,
}

impl DiskManager {
    /// Opens (creating if absent) the page file in `dir`. An existing
    /// file must carry the magic and the same page size — the page size
    /// is a property of the file, not of the process that opens it.
    pub fn open(dir: &Path, page_size: usize) -> DbResult<DiskManager> {
        layout::validate_page_size(page_size)?;
        let path = dir.join(PAGE_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open page file", e))?;
        let len = file
            .metadata()
            .map_err(|e| io_err("stat page file", e))?
            .len();
        if len == 0 {
            // Fresh file: write the header page.
            let mut hdr = vec![0u8; page_size];
            hdr[..8].copy_from_slice(FILE_MAGIC);
            hdr[8..12].copy_from_slice(&(page_size as u32).to_le_bytes());
            file.write_all(&hdr)
                .map_err(|e| io_err("write page-file header", e))?;
            file.sync_all().map_err(|e| io_err("sync page file", e))?;
        } else {
            let mut hdr = [0u8; 12];
            file.seek(SeekFrom::Start(0))
                .map_err(|e| io_err("seek page file", e))?;
            file.read_exact(&mut hdr)
                .map_err(|e| io_err("read page-file header", e))?;
            if &hdr[..8] != FILE_MAGIC {
                return Err(DbError::Persist {
                    message: "bad page-file magic".into(),
                });
            }
            let stored = u32::from_le_bytes(hdr[8..12].try_into().expect("4 bytes")) as usize;
            if stored != page_size {
                return Err(DbError::Persist {
                    message: format!(
                        "page file uses {stored}-byte pages but {page_size} was configured"
                    ),
                });
            }
        }
        Ok(DiskManager { file, page_size })
    }

    /// The file's fixed page size.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Reads page `page_no` into `buf`, verifying its CRC. A page that
    /// was never written (or only partially written) fails here with a
    /// typed torn-page error.
    pub fn read_page(&mut self, page_no: u32, buf: &mut [u8]) -> DbResult<()> {
        debug_assert_eq!(buf.len(), self.page_size);
        if page_no == 0 {
            return Err(DbError::Persist {
                message: "page 0 is the file header".into(),
            });
        }
        self.file
            .seek(SeekFrom::Start(page_no as u64 * self.page_size as u64))
            .map_err(|e| io_err("seek page", e))?;
        self.file.read_exact(buf).map_err(|e| DbError::Persist {
            message: format!("torn page {page_no}: short read ({e})"),
        })?;
        if !layout::verify_crc(buf) {
            return Err(DbError::Persist {
                message: format!("torn page {page_no}: checksum mismatch"),
            });
        }
        Ok(())
    }

    /// Writes page `page_no` from `buf` (whose CRC the caller has
    /// already sealed). Extends the file as needed.
    pub fn write_page(&mut self, page_no: u32, buf: &[u8]) -> DbResult<()> {
        debug_assert_eq!(buf.len(), self.page_size);
        debug_assert!(page_no != 0, "page 0 is the file header");
        self.file
            .seek(SeekFrom::Start(page_no as u64 * self.page_size as u64))
            .map_err(|e| io_err("seek page", e))?;
        self.file
            .write_all(buf)
            .map_err(|e| io_err("write page", e))
    }

    /// Fsyncs the page file.
    pub fn sync(&mut self) -> DbResult<()> {
        self.file
            .sync_all()
            .map_err(|e| io_err("sync page file", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch() -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "minidb-disk-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_read_round_trip_and_reopen() {
        let dir = scratch();
        let ps = 512;
        let mut page = vec![0u8; ps];
        layout::init_page(&mut page, 0);
        layout::insert_slot(&mut page, b"persisted").unwrap();
        layout::set_page_lsn(&mut page, 9);
        layout::seal_crc(&mut page);
        {
            let mut dm = DiskManager::open(&dir, ps).unwrap();
            dm.write_page(3, &page).unwrap();
            dm.sync().unwrap();
        }
        let mut dm = DiskManager::open(&dir, ps).unwrap();
        let mut back = vec![0u8; ps];
        dm.read_page(3, &mut back).unwrap();
        assert_eq!(back, page);
        // Pages 1 and 2 were never written: zero fill, caught as torn.
        let err = dm.read_page(1, &mut back).unwrap_err();
        assert!(matches!(err, DbError::Persist { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_page_is_typed_error() {
        let dir = scratch();
        let ps = 512;
        let mut page = vec![0u8; ps];
        layout::init_page(&mut page, 0);
        layout::insert_slot(&mut page, b"abc").unwrap();
        layout::seal_crc(&mut page);
        {
            let mut dm = DiskManager::open(&dir, ps).unwrap();
            dm.write_page(1, &page).unwrap();
        }
        // Corrupt one byte mid-page on disk.
        let path = dir.join(PAGE_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[ps + 40] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let mut dm = DiskManager::open(&dir, ps).unwrap();
        let mut back = vec![0u8; ps];
        let err = dm.read_page(1, &mut back).unwrap_err();
        assert!(
            matches!(&err, DbError::Persist { message } if message.contains("torn page")),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn page_size_mismatch_rejected() {
        let dir = scratch();
        DiskManager::open(&dir, 512).unwrap();
        let err = DiskManager::open(&dir, 1024).unwrap_err();
        assert!(matches!(err, DbError::Persist { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
