//! The engine's type system, including opaque user-defined types (UDTs).
//!
//! Built-in scalar types cover what the paper's examples need
//! (`CHAR(20)`, `INT`, …); everything temporal arrives through the
//! DataBlade-style extension API as an opaque [`DataType::Udt`].

use std::fmt;

/// Identifier of a registered user-defined type within one database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UdtId(pub u32);

/// A column or expression type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// The type of the bare `NULL` literal before coercion.
    Null,
    Bool,
    Int,
    Float,
    Str,
    /// An opaque extension type; semantics live in the catalog's
    /// [`UdtTypeDef`](crate::catalog::UdtTypeDef).
    Udt(UdtId),
}

impl DataType {
    /// `true` for the built-in numeric types.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// `true` when a value of this type can be stored in a column of type
    /// `target` without any cast (exact match, or an untyped NULL).
    pub fn fits(self, target: DataType) -> bool {
        self == target || self == DataType::Null
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Null => f.write_str("NULL"),
            DataType::Bool => f.write_str("BOOLEAN"),
            DataType::Int => f.write_str("INT"),
            DataType::Float => f.write_str("FLOAT"),
            DataType::Str => f.write_str("CHAR"),
            DataType::Udt(id) => write!(f, "UDT#{}", id.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_predicate() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Str.is_numeric());
        assert!(!DataType::Udt(UdtId(0)).is_numeric());
    }

    #[test]
    fn fits() {
        assert!(DataType::Int.fits(DataType::Int));
        assert!(DataType::Null.fits(DataType::Str));
        assert!(!DataType::Int.fits(DataType::Float));
    }

    #[test]
    fn display() {
        assert_eq!(DataType::Udt(UdtId(3)).to_string(), "UDT#3");
        assert_eq!(DataType::Int.to_string(), "INT");
    }
}
