//! The parameterized plan cache: prepare-once / execute-many.
//!
//! Repeat executions of the same SELECT skip the entire SQL front end
//! (lex, parse, bind, plan). Plans are cached with `:name` parameters
//! still *unresolved* ([`BoundKind::Param`](crate::binder::BoundKind)
//! slots evaluated from the [`ExecCtx`](crate::catalog::ExecCtx) at
//! execution time), so one cached plan serves every parameter value.
//!
//! * **Key** — the statement text, normalized only by trimming
//!   whitespace and a trailing `;` (SQL is case-sensitive inside string
//!   literals, so no case folding). An `EXPLAIN [ANALYZE]` prefix is
//!   stripped before keying: EXPLAIN shares the cache with the SELECT
//!   it wraps.
//! * **Invalidation** — the owning [`Database`](crate::session::Database)
//!   bumps a generation counter on every registry write (CREATE/DROP
//!   table/index/view), blade install, and snapshot restore. Lookups
//!   compare generations lazily and evict stale entries on contact.
//! * **Parameter shape** — a plan is only reusable when the sorted
//!   `(name, type)` signature of the supplied parameters matches the one
//!   it was bound with (the types drove overload resolution); a
//!   mismatch replans and replaces the entry.
//! * **Bound** — an LRU capped at [`PlanCache::DEFAULT_CAP`] entries.

use crate::plan::Plan;
use crate::types::DataType;
use std::sync::Arc;

/// A bound, parameter-deferred plan ready for re-execution.
pub struct CachedPlan {
    pub plan: Plan,
    /// Output column names and types (the `QueryResult` header).
    pub columns: Vec<(String, DataType)>,
    /// Sorted `(lowercase name, type)` signature of the parameters the
    /// plan was bound with.
    pub param_sig: Vec<(String, DataType)>,
    /// Lowercase keys of every table the statement pins, sorted — the
    /// re-pin list for later executions.
    pub tables: Vec<String>,
    /// DDL generation the plan was built against.
    pub generation: u64,
    /// Whether the plan qualified for the vectorized batch path when it
    /// was built. Recorded (rather than recomputed per execution) so the
    /// executor's routing decision is stable for a cached plan; a blade
    /// install bumps the generation and evicts the entry, so capability
    /// is re-resolved the first execution after any catalog change.
    pub batch: bool,
}

/// Outcome of a cache probe.
pub enum CacheLookup {
    /// Reusable plan; already promoted to most-recently-used.
    Hit(Arc<CachedPlan>),
    /// An entry existed but its generation was stale; it has been
    /// evicted (counted as an invalidation).
    Stale,
    /// No usable entry (missing, or parameter shape changed).
    Absent,
}

/// Bounded LRU of [`CachedPlan`]s, keyed by normalized SQL text. Small
/// enough that a `Vec` scan beats hashing for the expected working set.
pub struct PlanCache {
    /// LRU order: most recently used last.
    entries: Vec<(String, Arc<CachedPlan>)>,
    cap: usize,
}

impl PlanCache {
    /// Default entry cap.
    pub const DEFAULT_CAP: usize = 128;

    pub fn new(cap: usize) -> PlanCache {
        PlanCache {
            entries: Vec::new(),
            cap: cap.max(1),
        }
    }

    /// Probes for `key` at `generation` with the caller's parameter
    /// signature (sorted `(lowercase name, type)` pairs).
    pub fn lookup(
        &mut self,
        key: &str,
        generation: u64,
        param_sig: &[(String, DataType)],
    ) -> CacheLookup {
        let Some(i) = self.entries.iter().position(|(k, _)| k == key) else {
            return CacheLookup::Absent;
        };
        let (k, entry) = self.entries.remove(i);
        if entry.generation != generation {
            // Lazy invalidation: the schema moved on under this entry.
            return CacheLookup::Stale;
        }
        if entry.param_sig != param_sig {
            // Same text, different parameter shape (types drove overload
            // resolution): replan; the fill will replace this entry.
            return CacheLookup::Absent;
        }
        self.entries.push((k, Arc::clone(&entry)));
        CacheLookup::Hit(entry)
    }

    /// Inserts (or replaces) the entry for `key`, evicting the least
    /// recently used entry when full.
    pub fn insert(&mut self, key: String, entry: CachedPlan) {
        self.entries.retain(|(k, _)| *k != key);
        if self.entries.len() >= self.cap {
            self.entries.remove(0);
        }
        self.entries.push((key, Arc::new(entry)));
    }

    /// Current number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every cached plan — for wholesale world swaps (snapshot
    /// restore), where lazy per-entry staleness discovery is not enough.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Normalizes statement text into a cache key: trims surrounding
/// whitespace and any run of trailing `;` (interleaved with whitespace),
/// so `SELECT 1`, `SELECT 1;;` and `SELECT 1 ;  ` share one entry.
pub fn normalize_sql(sql: &str) -> &str {
    let mut s = sql.trim();
    while let Some(stripped) = s.strip_suffix(';') {
        s = stripped.trim_end();
    }
    s
}

/// Splits a leading `EXPLAIN [ANALYZE]` prefix (case-insensitive, on
/// word boundaries) off normalized statement text, returning
/// `(is_explain, analyze, inner_text)`. The inner text is what keys the
/// cache, so `EXPLAIN q` and `q` share an entry.
pub fn split_explain(sql: &str) -> (bool, bool, &str) {
    let Some(rest) = strip_keyword(sql, "explain") else {
        return (false, false, sql);
    };
    match strip_keyword(rest, "analyze") {
        Some(inner) => (true, true, inner),
        None => (true, false, rest),
    }
}

/// Strips one leading keyword (case-insensitive) followed by at least
/// one whitespace character.
fn strip_keyword<'a>(s: &'a str, kw: &str) -> Option<&'a str> {
    if s.len() <= kw.len() || !s.is_char_boundary(kw.len()) {
        return None;
    }
    let (head, tail) = s.split_at(kw.len());
    if head.eq_ignore_ascii_case(kw) && tail.starts_with(char::is_whitespace) {
        Some(tail.trim_start())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_stub() -> CachedPlan {
        CachedPlan {
            plan: Plan::Nothing,
            columns: Vec::new(),
            param_sig: Vec::new(),
            tables: Vec::new(),
            generation: 1,
            batch: false,
        }
    }

    #[test]
    fn normalization_trims_whitespace_and_trailing_semicolons() {
        assert_eq!(normalize_sql("  SELECT 1 ;  "), "SELECT 1");
        assert_eq!(normalize_sql("SELECT 1"), "SELECT 1");
        assert_eq!(normalize_sql("SELECT 1;;"), "SELECT 1");
        assert_eq!(normalize_sql("SELECT 1 ; ; "), "SELECT 1");
        assert_eq!(normalize_sql("SELECT ';'"), "SELECT ';'");
        assert_eq!(normalize_sql("SELECT ';';"), "SELECT ';'");
    }

    #[test]
    fn explain_prefix_is_split_on_word_boundaries() {
        assert_eq!(split_explain("SELECT 1"), (false, false, "SELECT 1"));
        assert_eq!(split_explain("EXPLAIN SELECT 1"), (true, false, "SELECT 1"));
        assert_eq!(
            split_explain("explain   analyze  SELECT 1"),
            (true, true, "SELECT 1")
        );
        // Not keywords: no whitespace boundary.
        assert_eq!(
            split_explain("EXPLAINX SELECT 1"),
            (false, false, "EXPLAINX SELECT 1")
        );
        assert_eq!(
            split_explain("EXPLAIN ANALYZER"),
            (true, false, "ANALYZER"),
            "ANALYZER is the statement, not the ANALYZE keyword"
        );
    }

    #[test]
    fn lru_evicts_oldest_and_promotes_on_hit() {
        let mut c = PlanCache::new(2);
        c.insert("a".into(), plan_stub());
        c.insert("b".into(), plan_stub());
        // Touch "a" so "b" becomes the eviction candidate.
        assert!(matches!(c.lookup("a", 1, &[]), CacheLookup::Hit(_)));
        c.insert("c".into(), plan_stub());
        assert_eq!(c.len(), 2);
        assert!(matches!(c.lookup("b", 1, &[]), CacheLookup::Absent));
        assert!(matches!(c.lookup("a", 1, &[]), CacheLookup::Hit(_)));
        assert!(matches!(c.lookup("c", 1, &[]), CacheLookup::Hit(_)));
    }

    #[test]
    fn stale_generation_evicts_and_reports() {
        let mut c = PlanCache::new(4);
        c.insert("q".into(), plan_stub());
        assert!(matches!(c.lookup("q", 2, &[]), CacheLookup::Stale));
        // The stale entry is gone, not retried.
        assert!(matches!(c.lookup("q", 2, &[]), CacheLookup::Absent));
    }

    #[test]
    fn param_signature_mismatch_is_absent_not_hit() {
        let mut c = PlanCache::new(4);
        c.insert(
            "q".into(),
            CachedPlan {
                param_sig: vec![("w".into(), DataType::Int)],
                ..plan_stub()
            },
        );
        let other = vec![("w".into(), DataType::Str)];
        assert!(matches!(c.lookup("q", 1, &other), CacheLookup::Absent));
    }
}
