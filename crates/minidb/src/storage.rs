//! Row storage: tables, slotted heap with reuse, secondary B-tree
//! indexes, and binary snapshot persistence.
//!
//! [`Storage`] is a *registry*: it maps names to [`SharedTable`] handles
//! (`Arc<TableCell>` — a live table plus its MVCC version chain) and
//! view definitions. The registry lock a
//! [`Database`](crate::session::Database) wraps around it is held only
//! for name resolution and DDL; writers lock individual tables through
//! [`crate::pin::TableSet`], while readers resolve published snapshots
//! from the version chains and hold no table lock at all.

pub mod pages;

use crate::catalog::{Catalog, UdtDecodeFn, UdtEncodeFn, UdtIntervalKeyFn};
use crate::error::{DbError, DbResult};
use crate::types::DataType;
use crate::value::{Row, Value};
use bytes::{Buf, BufMut};
use pages::{ColdRef, PagedStore};
use parking_lot::RwLock;
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

// ----- cold-row spill support ----------------------------------------------

/// Per-column codec for the on-page cold row encoding. Built once per
/// table from the catalog at spill/load time, so faulting a page never
/// re-enters the catalog lock.
pub enum ColdCodec {
    /// Built-in types encode through the value tag alone.
    Builtin,
    /// A UDT column: cloned binary support functions of its type.
    Udt {
        encode: UdtEncodeFn,
        decode: UdtDecodeFn,
    },
}

/// Everything a table needs to spill and fault cold rows: the shared
/// page store, its column codecs, and the age key that decides hot vs
/// cold (the first interval-capable column, whose period end predating
/// NOW marks a row historical).
#[derive(Clone)]
pub struct ColdAttach {
    pub store: Arc<PagedStore>,
    pub codecs: Arc<Vec<ColdCodec>>,
    pub age_key: Option<(usize, UdtIntervalKeyFn)>,
}

impl std::fmt::Debug for ColdAttach {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColdAttach")
            .field("codecs", &self.codecs.len())
            .field("age_key", &self.age_key.as_ref().map(|(c, _)| *c))
            .finish()
    }
}

/// Builds a table's cold attachment from the catalog: per-column codecs
/// plus the age key (first interval-capable column, if any).
pub fn cold_attach_for(
    cat: &Catalog,
    schema: &TableSchema,
    store: &Arc<PagedStore>,
) -> DbResult<ColdAttach> {
    let codecs = cold_codecs(cat, schema)?;
    let mut age_key = None;
    for (i, c) in schema.columns.iter().enumerate() {
        if let DataType::Udt(id) = c.ty {
            if let Some(bounds) = cat.type_def(id)?.interval_key.clone() {
                age_key = Some((i, bounds));
                break;
            }
        }
    }
    Ok(ColdAttach {
        store: store.clone(),
        codecs: Arc::new(codecs),
        age_key,
    })
}

/// Builds the per-column cold codecs for a schema. The schema is fixed
/// per table, so records need no per-value type names — one tag byte
/// per column suffices.
pub fn cold_codecs(cat: &Catalog, schema: &TableSchema) -> DbResult<Vec<ColdCodec>> {
    schema
        .columns
        .iter()
        .map(|c| match c.ty {
            DataType::Udt(id) => {
                let def = cat.type_def(id)?;
                Ok(ColdCodec::Udt {
                    encode: def.encode.clone(),
                    decode: def.decode.clone(),
                })
            }
            _ => Ok(ColdCodec::Builtin),
        })
        .collect()
}

/// Encodes a row into the lean on-page format: per column, a tag byte
/// (0 NULL, 1 bool, 2 int, 3 float, 4 str, 5 UDT payload), no type
/// names.
pub fn encode_cold_row(codecs: &[ColdCodec], row: &Row) -> DbResult<Vec<u8>> {
    debug_assert_eq!(codecs.len(), row.len());
    let mut out = Vec::with_capacity(16 * row.len());
    for (v, codec) in row.iter().zip(codecs) {
        match v {
            Value::Null => out.put_u8(0),
            Value::Bool(b) => {
                out.put_u8(1);
                out.put_u8(*b as u8);
            }
            Value::Int(i) => {
                out.put_u8(2);
                out.put_i64_le(*i);
            }
            Value::Float(f) => {
                out.put_u8(3);
                out.put_f64_le(*f);
            }
            Value::Str(s) => {
                out.put_u8(4);
                put_str(&mut out, s);
            }
            Value::Udt(u) => {
                let ColdCodec::Udt { encode, .. } = codec else {
                    return Err(DbError::Persist {
                        message: "UDT value in a non-UDT column".into(),
                    });
                };
                out.put_u8(5);
                let mut payload = Vec::new();
                encode(u, &mut payload);
                out.put_u32_le(payload.len() as u32);
                out.put_slice(&payload);
            }
        }
    }
    Ok(out)
}

/// Decodes a cold record back into a row.
pub fn decode_cold_row(codecs: &[ColdCodec], mut buf: &[u8]) -> DbResult<Row> {
    let mut row = Vec::with_capacity(codecs.len());
    for codec in codecs {
        if buf.remaining() < 1 {
            return Err(DbError::Persist {
                message: "truncated cold record".into(),
            });
        }
        let v = match buf.get_u8() {
            0 => Value::Null,
            1 => {
                if buf.remaining() < 1 {
                    return Err(DbError::Persist {
                        message: "truncated cold bool".into(),
                    });
                }
                Value::Bool(buf.get_u8() != 0)
            }
            2 => {
                if buf.remaining() < 8 {
                    return Err(DbError::Persist {
                        message: "truncated cold int".into(),
                    });
                }
                Value::Int(buf.get_i64_le())
            }
            3 => {
                if buf.remaining() < 8 {
                    return Err(DbError::Persist {
                        message: "truncated cold float".into(),
                    });
                }
                Value::Float(buf.get_f64_le())
            }
            4 => Value::Str(get_str(&mut buf)?),
            5 => {
                let ColdCodec::Udt { decode, .. } = codec else {
                    return Err(DbError::Persist {
                        message: "UDT tag in a non-UDT column".into(),
                    });
                };
                if buf.remaining() < 4 {
                    return Err(DbError::Persist {
                        message: "truncated cold udt length".into(),
                    });
                }
                let n = buf.get_u32_le() as usize;
                if buf.remaining() < n {
                    return Err(DbError::Persist {
                        message: "truncated cold udt payload".into(),
                    });
                }
                let mut payload = &buf[..n];
                let u = decode(&mut payload).map_err(|e| DbError::Persist {
                    message: format!("cold udt decode: {e}"),
                })?;
                buf.advance(n);
                Value::Udt(u)
            }
            t => {
                return Err(DbError::Persist {
                    message: format!("unknown cold value tag {t}"),
                })
            }
        };
        row.push(v);
    }
    if buf.has_remaining() {
        return Err(DbError::Persist {
            message: "trailing bytes in cold record".into(),
        });
    }
    Ok(row)
}

/// A column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    pub name: String,
    pub ty: DataType,
}

/// A table's schema.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    /// Canonical (as-created) table name.
    pub name: String,
    pub columns: Vec<Column>,
}

impl TableSchema {
    /// Finds a column index by case-insensitive name.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }
}

/// Ordering wrapper so `Value`s can key a `BTreeMap`.
#[derive(Debug, Clone)]
pub struct OrdKey(pub Value);

impl PartialEq for OrdKey {
    fn eq(&self, other: &OrdKey) -> bool {
        self.0.cmp_ordering(&other.0) == Ordering::Equal
    }
}
impl Eq for OrdKey {}
impl PartialOrd for OrdKey {
    fn partial_cmp(&self, other: &OrdKey) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdKey {
    fn cmp(&self, other: &OrdKey) -> Ordering {
        self.0.cmp_ordering(&other.0)
    }
}

/// How many buckets a single entry may span before it is routed to the
/// overflow list (bounds touching the axis extremes go there too).
const MAX_BUCKETS_PER_ENTRY: i64 = 64;

/// A bucketed interval index: the axis is divided into fixed-stride
/// buckets; each entry is registered in every bucket its `[lo, hi]`
/// bounds overlap. Entries spanning too many buckets (including
/// NOW-relative data, whose conservative bounds reach the axis extremes)
/// live in an overflow list — the classic difficulty of indexing
/// now-relative data that the paper's reference [2] studies. Queries are
/// conservative: they return a superset of the matching rows, and the
/// scan's residual filter rechecks the exact predicate.
pub struct IntervalIndex {
    bounds: UdtIntervalKeyFn,
    stride: i64,
    buckets: BTreeMap<i64, Vec<usize>>,
    overflow: Vec<usize>,
    /// rowid -> bounds used at insert (needed for removal); `None` when
    /// the value produced no bounds (empty/NULL) and was not indexed.
    entries: HashMap<usize, Option<(i64, i64)>>,
}

impl std::fmt::Debug for IntervalIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntervalIndex")
            .field("stride", &self.stride)
            .field("buckets", &self.buckets.len())
            .field("overflow", &self.overflow.len())
            .field("entries", &self.entries.len())
            .finish()
    }
}

impl Clone for IntervalIndex {
    fn clone(&self) -> IntervalIndex {
        IntervalIndex {
            bounds: self.bounds.clone(),
            stride: self.stride,
            buckets: self.buckets.clone(),
            overflow: self.overflow.clone(),
            entries: self.entries.clone(),
        }
    }
}

impl IntervalIndex {
    fn new(bounds: UdtIntervalKeyFn, stride: i64) -> IntervalIndex {
        IntervalIndex {
            bounds,
            stride: stride.max(1),
            buckets: BTreeMap::new(),
            overflow: Vec::new(),
            entries: HashMap::new(),
        }
    }

    fn bucket_of(&self, x: i64) -> i64 {
        x.div_euclid(self.stride)
    }

    fn value_bounds(&self, v: &Value) -> Option<(i64, i64)> {
        v.as_udt().and_then(|u| (self.bounds)(u))
    }

    fn insert(&mut self, v: &Value, rowid: usize) {
        let bounds = self.value_bounds(v);
        self.entries.insert(rowid, bounds);
        let Some((lo, hi)) = bounds else { return };
        let span_buckets = self
            .bucket_of(hi.max(lo))
            .saturating_sub(self.bucket_of(lo))
            .saturating_add(1);
        if lo == i64::MIN || hi == i64::MAX || span_buckets > MAX_BUCKETS_PER_ENTRY {
            self.overflow.push(rowid);
            return;
        }
        for b in self.bucket_of(lo)..=self.bucket_of(hi) {
            self.buckets.entry(b).or_default().push(rowid);
        }
    }

    fn remove(&mut self, _v: &Value, rowid: usize) {
        let Some(bounds) = self.entries.remove(&rowid) else {
            return;
        };
        let Some((lo, hi)) = bounds else { return };
        let span_buckets = self
            .bucket_of(hi.max(lo))
            .saturating_sub(self.bucket_of(lo))
            .saturating_add(1);
        if lo == i64::MIN || hi == i64::MAX || span_buckets > MAX_BUCKETS_PER_ENTRY {
            self.overflow.retain(|&r| r != rowid);
            return;
        }
        for b in self.bucket_of(lo)..=self.bucket_of(hi) {
            if let Some(list) = self.buckets.get_mut(&b) {
                list.retain(|&r| r != rowid);
                if list.is_empty() {
                    self.buckets.remove(&b);
                }
            }
        }
    }

    /// Candidate row ids whose bounds *may* overlap `[qlo, qhi]` —
    /// a superset; the caller rechecks the exact predicate.
    pub fn lookup_overlaps(&self, qlo: i64, qhi: i64) -> Vec<usize> {
        let mut out: Vec<usize> = self.overflow.clone();
        if qlo <= qhi {
            let from = if qlo == i64::MIN {
                i64::MIN
            } else {
                self.bucket_of(qlo)
            };
            let to = if qhi == i64::MAX {
                i64::MAX
            } else {
                self.bucket_of(qhi)
            };
            for list in self.buckets.range(from..=to).map(|(_, l)| l) {
                out.extend_from_slice(list);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Ordering wrapper already defined above backs the B-tree variant.
#[derive(Debug, Clone)]
enum IndexBackend {
    BTree(BTreeMap<OrdKey, Vec<usize>>),
    Interval(IntervalIndex),
}

/// A secondary index over one column: equality B-tree, or bucketed
/// interval index for types with interval-bounds support.
#[derive(Debug, Clone)]
pub struct Index {
    pub name: String,
    pub column: usize,
    backend: IndexBackend,
}

impl Index {
    fn new_btree(name: String, column: usize) -> Index {
        Index {
            name,
            column,
            backend: IndexBackend::BTree(BTreeMap::new()),
        }
    }

    fn new_interval(name: String, column: usize, bounds: UdtIntervalKeyFn, stride: i64) -> Index {
        Index {
            name,
            column,
            backend: IndexBackend::Interval(IntervalIndex::new(bounds, stride)),
        }
    }

    /// `true` for the interval variant.
    pub fn is_interval(&self) -> bool {
        matches!(self.backend, IndexBackend::Interval(_))
    }

    fn insert(&mut self, key: &Value, rowid: usize) {
        match &mut self.backend {
            IndexBackend::BTree(map) => {
                map.entry(OrdKey(key.clone())).or_default().push(rowid);
            }
            IndexBackend::Interval(ix) => ix.insert(key, rowid),
        }
    }

    fn remove(&mut self, key: &Value, rowid: usize) {
        match &mut self.backend {
            IndexBackend::BTree(map) => {
                if let Some(list) = map.get_mut(&OrdKey(key.clone())) {
                    list.retain(|&r| r != rowid);
                    if list.is_empty() {
                        map.remove(&OrdKey(key.clone()));
                    }
                }
            }
            IndexBackend::Interval(ix) => ix.remove(key, rowid),
        }
    }

    /// Row ids whose indexed column equals `key` (B-tree only).
    pub fn lookup_eq(&self, key: &Value) -> Vec<usize> {
        match &self.backend {
            IndexBackend::BTree(map) => map.get(&OrdKey(key.clone())).cloned().unwrap_or_default(),
            IndexBackend::Interval(_) => Vec::new(),
        }
    }

    /// Candidate row ids overlapping `[lo, hi]` (interval only; a
    /// conservative superset).
    pub fn lookup_overlaps(&self, lo: i64, hi: i64) -> Vec<usize> {
        match &self.backend {
            IndexBackend::Interval(ix) => ix.lookup_overlaps(lo, hi),
            IndexBackend::BTree(_) => Vec::new(),
        }
    }

    /// Row ids whose indexed column lies within the given bounds
    /// (B-tree only; `None` means unbounded on that side). `NULL` keys
    /// are never returned: SQL comparisons against NULL are never TRUE.
    pub fn lookup_range(
        &self,
        lo: Option<(&Value, bool)>,
        hi: Option<(&Value, bool)>,
    ) -> Vec<usize> {
        use std::ops::Bound;
        let IndexBackend::BTree(map) = &self.backend else {
            return Vec::new();
        };
        let lo_bound = match lo {
            Some((v, inclusive)) => {
                if inclusive {
                    Bound::Included(OrdKey(v.clone()))
                } else {
                    Bound::Excluded(OrdKey(v.clone()))
                }
            }
            None => Bound::Unbounded,
        };
        let hi_bound = match hi {
            Some((v, inclusive)) => {
                if inclusive {
                    Bound::Included(OrdKey(v.clone()))
                } else {
                    Bound::Excluded(OrdKey(v.clone()))
                }
            }
            None => Bound::Unbounded,
        };
        let mut out = Vec::new();
        for (key, rows) in map.range((lo_bound, hi_bound)) {
            if key.0.is_null() {
                continue;
            }
            out.extend_from_slice(rows);
        }
        out
    }

    /// Candidate row ids whose bounds may overlap the bounds of `v`
    /// (interval only; conservative superset). An unbounded value (no
    /// bounds, e.g. an empty Element) yields no candidates, which is
    /// exact for overlap predicates.
    pub fn lookup_overlaps_value(&self, v: &Value) -> Vec<usize> {
        match &self.backend {
            IndexBackend::Interval(ix) => match ix.value_bounds(v) {
                Some((lo, hi)) => ix.lookup_overlaps(lo, hi),
                None => Vec::new(),
            },
            IndexBackend::BTree(_) => Vec::new(),
        }
    }

    /// Number of distinct keys (B-tree) or occupied buckets (interval).
    pub fn distinct_keys(&self) -> usize {
        match &self.backend {
            IndexBackend::BTree(map) => map.len(),
            IndexBackend::Interval(ix) => ix.buckets.len(),
        }
    }
}

/// One row slot: empty, resident in memory, or spilled to a cold page
/// (faulted back through the table's [`ColdAttach`] on demand).
#[derive(Debug, Clone)]
pub enum Slot {
    Empty,
    Mem(Arc<Row>),
    Cold(ColdRef),
}

/// One table: schema, slotted row storage, and indexes.
///
/// Rows are held behind `Arc` so that cloning a table to publish an
/// MVCC version (see [`TableCell`]) copies only the slot vector and
/// index structures, never the row payloads themselves. Cold slots are
/// `(page, slot)` references into the shared [`PagedStore`]; cloning a
/// table shares those references, and the store's epoch life cycle
/// keeps the pages readable until every retained version is gone.
#[derive(Debug, Clone)]
pub struct Table {
    pub schema: TableSchema,
    slots: Vec<Slot>,
    free: Vec<usize>,
    live: usize,
    indexes: Vec<Index>,
    cold: Option<ColdAttach>,
    cold_count: usize,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: TableSchema) -> Table {
        Table {
            schema,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            indexes: Vec::new(),
            cold: None,
            cold_count: 0,
        }
    }

    /// Attaches the shared page store plus this table's column codecs,
    /// enabling [`Table::spill_cold`] and cold-row faulting.
    pub fn attach_cold(&mut self, att: ColdAttach) {
        self.cold = Some(att);
    }

    /// The cold attachment, if any.
    pub fn cold_attach(&self) -> Option<&ColdAttach> {
        self.cold.as_ref()
    }

    /// Number of slots currently spilled to cold pages.
    pub fn cold_count(&self) -> usize {
        self.cold_count
    }

    /// `true` when at least one slot is cold.
    pub fn has_cold(&self) -> bool {
        self.cold_count > 0
    }

    /// Iterates the cold slots as `(rowid, ref)`.
    pub fn cold_slots(&self) -> impl Iterator<Item = (usize, ColdRef)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Cold(c) => Some((i, *c)),
            _ => None,
        })
    }

    /// Faults one cold record back into a row.
    fn fault(&self, cref: ColdRef) -> DbResult<Arc<Row>> {
        let Some(att) = &self.cold else {
            return Err(DbError::Persist {
                message: "cold row reference without an attached page store".into(),
            });
        };
        let bytes = att.store.read(cref)?;
        Ok(Arc::new(decode_cold_row(&att.codecs, &bytes)?))
    }

    /// Takes the row out of a slot for mutation: a resident row is
    /// cloned out; a cold row is faulted (its index keys are needed) and
    /// its page slot released. Leaves the slot `Empty`.
    fn take_row(&mut self, rowid: usize) -> DbResult<Option<Arc<Row>>> {
        let row = match self.slots.get(rowid) {
            Some(Slot::Mem(r)) => r.clone(),
            Some(Slot::Cold(c)) => {
                let c = *c;
                let row = self.fault(c)?;
                if let Some(att) = &self.cold {
                    att.store.free_slot(c);
                }
                self.cold_count -= 1;
                row
            }
            _ => return Ok(None),
        };
        self.slots[rowid] = Slot::Empty;
        Ok(Some(row))
    }

    /// Moves resident rows whose valid-time period ended before `now`
    /// out to cold pages (stamped with WAL sequence `lsn`). A row is
    /// cold when its first interval-capable column yields bounds with
    /// `hi < now`; open-ended (NOW-relative) and NULL periods stay hot,
    /// as do jumbo rows bigger than a page can hold. Returns the number
    /// of rows spilled.
    pub fn spill_cold(&mut self, now: i64, lsn: u64) -> DbResult<usize> {
        let Some(att) = self.cold.clone() else {
            return Ok(0);
        };
        let Some((col, bounds)) = att.age_key.clone() else {
            return Ok(0);
        };
        let max_len = att.store.max_record_len();
        let mut spilled = 0;
        for i in 0..self.slots.len() {
            let Slot::Mem(row) = &self.slots[i] else {
                continue;
            };
            let is_cold = row[col]
                .as_udt()
                .and_then(|u| bounds(u))
                .is_some_and(|(_, hi)| hi < now);
            if !is_cold {
                continue;
            }
            let bytes = encode_cold_row(&att.codecs, row)?;
            if bytes.len() > max_len {
                continue; // jumbo row: stays resident
            }
            let cref = att.store.alloc_slot(&bytes, lsn)?;
            self.slots[i] = Slot::Cold(cref);
            self.cold_count += 1;
            spilled += 1;
        }
        Ok(spilled)
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no live rows exist.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts a row (arity already validated by the planner) and returns
    /// its row id. New rows are always resident; [`Table::spill_cold`]
    /// pages them out later if they age past NOW.
    pub fn insert(&mut self, row: Row) -> usize {
        debug_assert_eq!(row.len(), self.schema.columns.len());
        let row = Arc::new(row);
        let keys: Vec<Value> = self
            .indexes
            .iter()
            .map(|ix| row[ix.column].clone())
            .collect();
        let rowid = match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Slot::Mem(row);
                slot
            }
            None => {
                self.slots.push(Slot::Mem(row));
                self.slots.len() - 1
            }
        };
        self.live += 1;
        for (ix, key) in self.indexes.iter_mut().zip(keys) {
            ix.insert(&key, rowid);
        }
        rowid
    }

    /// Removes a row by id; returns `true` when it existed. A cold row
    /// is faulted first (its index keys are needed for removal) and its
    /// page slot released.
    pub fn delete(&mut self, rowid: usize) -> DbResult<bool> {
        let Some(row) = self.take_row(rowid)? else {
            return Ok(false);
        };
        for ix in &mut self.indexes {
            ix.remove(&row[ix.column], rowid);
        }
        self.free.push(rowid);
        self.live -= 1;
        Ok(true)
    }

    /// Replaces a row in place. An updated cold row becomes resident
    /// again — it is current by definition.
    pub fn update(&mut self, rowid: usize, new_row: Row) -> DbResult<bool> {
        debug_assert_eq!(new_row.len(), self.schema.columns.len());
        let Some(old) = self.take_row(rowid)? else {
            return Ok(false);
        };
        let new_row = Arc::new(new_row);
        let old_keys: Vec<Value> = self
            .indexes
            .iter()
            .map(|ix| old[ix.column].clone())
            .collect();
        let new_keys: Vec<Value> = self
            .indexes
            .iter()
            .map(|ix| new_row[ix.column].clone())
            .collect();
        self.slots[rowid] = Slot::Mem(new_row);
        for ((ix, old_k), new_k) in self.indexes.iter_mut().zip(old_keys).zip(new_keys) {
            ix.remove(&old_k, rowid);
            ix.insert(&new_k, rowid);
        }
        Ok(true)
    }

    /// Fetches one live row, faulting it from its cold page if needed.
    pub fn get(&self, rowid: usize) -> DbResult<Option<Arc<Row>>> {
        match self.slots.get(rowid) {
            Some(Slot::Mem(r)) => Ok(Some(r.clone())),
            Some(Slot::Cold(c)) => Ok(Some(self.fault(*c)?)),
            _ => Ok(None),
        }
    }

    /// Snapshot of all live `(rowid, row)` pairs, faulting cold pages
    /// as the scan crosses them.
    pub fn scan(&self) -> DbResult<Vec<(usize, Row)>> {
        let mut out = Vec::with_capacity(self.live);
        for (i, s) in self.slots.iter().enumerate() {
            match s {
                Slot::Empty => {}
                Slot::Mem(r) => out.push((i, (**r).clone())),
                Slot::Cold(c) => out.push((i, (*self.fault(*c)?).clone())),
            }
        }
        Ok(out)
    }

    /// Columnar snapshot of the live rows: the row count plus one value
    /// vector per requested column (all columns when `project` is
    /// `None`), in storage order — the same order [`Table::scan`]
    /// returns. This feeds the vectorized scan directly from the version
    /// slots without materializing a per-row `Vec` for every tuple.
    /// Cold rows are faulted (and immediately dropped again) as the
    /// scan crosses their pages, so memory stays bounded by the pool.
    pub fn scan_columns(&self, project: Option<&[usize]>) -> DbResult<(usize, Vec<Vec<Value>>)> {
        let all: Vec<usize>;
        let cols: &[usize] = match project {
            Some(p) => p,
            None => {
                all = (0..self.schema.columns.len()).collect();
                &all
            }
        };
        let mut out: Vec<Vec<Value>> = cols.iter().map(|_| Vec::with_capacity(self.live)).collect();
        let mut count = 0usize;
        for slot in &self.slots {
            let faulted;
            let r: &Row = match slot {
                Slot::Empty => continue,
                Slot::Mem(r) => r,
                Slot::Cold(c) => {
                    faulted = self.fault(*c)?;
                    &faulted
                }
            };
            count += 1;
            for (o, &c) in out.iter_mut().zip(cols) {
                o.push(r[c].clone());
            }
        }
        Ok((count, out))
    }

    /// The rowids the next `n` [`Table::insert`] calls will allocate,
    /// without mutating anything. The free list is LIFO, so the first
    /// inserts pop from its tail; the rest extend the slot vector. Used
    /// to WAL-log an INSERT *before* applying it, so a statement whose
    /// chunk never reaches the log leaves memory untouched.
    pub(crate) fn planned_rowids(&self, n: usize) -> Vec<usize> {
        (0..n)
            .map(|i| {
                if i < self.free.len() {
                    self.free[self.free.len() - 1 - i]
                } else {
                    self.slots.len() + (i - self.free.len())
                }
            })
            .collect()
    }

    /// Creates a secondary B-tree index over a column, backfilling
    /// existing rows.
    pub fn create_index(&mut self, name: String, column: usize) -> DbResult<()> {
        self.install_index(Index::new_btree(name, column))
    }

    /// Creates a bucketed interval index over a column whose type
    /// provides interval-bounds support.
    pub fn create_interval_index(
        &mut self,
        name: String,
        column: usize,
        bounds: UdtIntervalKeyFn,
        stride: i64,
    ) -> DbResult<()> {
        self.install_index(Index::new_interval(name, column, bounds, stride))
    }

    fn install_index(&mut self, mut ix: Index) -> DbResult<()> {
        if self
            .indexes
            .iter()
            .any(|x| x.name.eq_ignore_ascii_case(&ix.name))
        {
            return Err(DbError::AlreadyExists {
                kind: "index",
                name: ix.name,
            });
        }
        let column = ix.column;
        for rowid in 0..self.slots.len() {
            let row = match &self.slots[rowid] {
                Slot::Empty => continue,
                Slot::Mem(r) => r.clone(),
                Slot::Cold(c) => self.fault(*c)?,
            };
            ix.insert(&row[column], rowid);
        }
        self.indexes.push(ix);
        Ok(())
    }

    /// A B-tree (equality) index on the given column, if one exists.
    pub fn index_on(&self, column: usize) -> Option<&Index> {
        self.indexes
            .iter()
            .find(|ix| ix.column == column && !ix.is_interval())
    }

    /// An interval index on the given column, if one exists.
    pub fn interval_index_on(&self, column: usize) -> Option<&Index> {
        self.indexes
            .iter()
            .find(|ix| ix.column == column && ix.is_interval())
    }

    /// All indexes.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Re-inserts a row at an explicit slot — the WAL replay path.
    ///
    /// Replay starts from a snapshot that restores the exact slot layout
    /// and free list, then applies the same operation sequence the
    /// original execution ran, so the logged rowid always matches what
    /// [`Table::insert`] would allocate (the free list is LIFO and
    /// deterministic). The fallbacks below keep the structure consistent
    /// even if a lossy-sync log skips ahead of the snapshot.
    pub(crate) fn restore_insert_at(&mut self, rowid: usize, row: Row) -> DbResult<()> {
        debug_assert_eq!(row.len(), self.schema.columns.len());
        if self
            .slots
            .get(rowid)
            .is_some_and(|s| !matches!(s, Slot::Empty))
        {
            self.delete(rowid)?;
        }
        let row = Arc::new(row);
        let keys: Vec<Value> = self
            .indexes
            .iter()
            .map(|ix| row[ix.column].clone())
            .collect();
        if rowid == self.slots.len() {
            self.slots.push(Slot::Mem(row));
        } else {
            while self.slots.len() <= rowid {
                self.free.push(self.slots.len());
                self.slots.push(Slot::Empty);
            }
            if self.free.last() == Some(&rowid) {
                self.free.pop();
            } else if let Some(pos) = self.free.iter().rposition(|&r| r == rowid) {
                self.free.remove(pos);
            }
            self.slots[rowid] = Slot::Mem(row);
        }
        self.live += 1;
        for (ix, key) in self.indexes.iter_mut().zip(keys) {
            ix.insert(&key, rowid);
        }
        Ok(())
    }
}

/// A stored view definition: the body is kept as SQL text and re-planned
/// (inlined) at every use, so views always see current data.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewDef {
    /// Canonical (as-created) view name.
    pub name: String,
    /// The body `SELECT …` text.
    pub body_sql: String,
}

/// One published version of a table: an immutable snapshot stamped with
/// the global commit sequence and wall-clock instant of the commit that
/// produced it.
#[derive(Debug)]
pub struct TableVersion {
    /// Global commit sequence that published this version.
    pub seq: u64,
    /// Wall-clock unix seconds of the publishing commit (monotone
    /// across commits; `i64::MIN` for the initial "always existed"
    /// version).
    pub instant: i64,
    /// The immutable table snapshot. Cheap: rows are `Arc`-shared with
    /// the live table, so this copies slot/index structure only.
    pub snap: Arc<Table>,
}

/// A table plus its MVCC version chain.
///
/// * `data` is the live, mutable table writers lock (write-write
///   conflicts still serialize on this per-table guard).
/// * `versions` is the append-only chain of committed snapshots.
///   Readers never touch `data`: a SELECT resolves a snapshot from the
///   chain and scans it with **no table lock held at all**.
///
/// Protocol: a writer mutates `data` under its write guard, then — with
/// the guard still held, so no concurrent writer can interleave —
/// clones the table and [`publish`es](TableCell::publish) it at its
/// commit sequence. `publish` takes the pre-cloned snapshot rather than
/// re-locking `data` (the lock is not reentrant). Versions older than
/// the oldest pinned snapshot are garbage-collected by [`TableCell::gc`].
#[derive(Debug)]
pub struct TableCell {
    data: RwLock<Table>,
    versions: RwLock<Vec<TableVersion>>,
}

impl TableCell {
    /// Wraps a fully built table, publishing it as the initial version
    /// (sequence 0, instant `i64::MIN`): standalone and snapshot-loaded
    /// tables are visible at every point in time unless
    /// [`TableCell::rebase_creation`] stamps a real creation point.
    pub fn new(table: Table) -> TableCell {
        let snap = Arc::new(table.clone());
        TableCell {
            data: RwLock::new(table),
            versions: RwLock::new(vec![TableVersion {
                seq: 0,
                instant: i64::MIN,
                snap,
            }]),
        }
    }

    /// Read access to the live table (DDL, recovery, snapshots — not the
    /// SELECT path, which reads a published version instead).
    pub fn read(&self) -> parking_lot::RwLockReadGuard<'_, Table> {
        self.data.read()
    }

    /// Write access to the live table. The caller must publish a new
    /// version before releasing the guard if it mutated anything.
    pub fn write(&self) -> parking_lot::RwLockWriteGuard<'_, Table> {
        self.data.write()
    }

    /// Appends a committed snapshot to the version chain. Call with the
    /// `data` write guard still held so versions append in commit order.
    pub fn publish(&self, seq: u64, instant: i64, snap: Arc<Table>) {
        self.versions
            .write()
            .push(TableVersion { seq, instant, snap });
    }

    /// The newest published version.
    pub fn latest(&self) -> Arc<Table> {
        let v = self.versions.read();
        Arc::clone(&v.last().expect("version chain is never empty").snap)
    }

    /// The newest version with sequence `<= seq`, or `None` if the table
    /// was created after `seq`.
    pub fn snapshot_at(&self, seq: u64) -> Option<Arc<Table>> {
        let v = self.versions.read();
        v.iter()
            .rev()
            .find(|tv| tv.seq <= seq)
            .map(|tv| Arc::clone(&tv.snap))
    }

    /// The newest version committed at or before wall-clock `instant`
    /// (unix seconds), or `None` if the table did not exist yet. Commit
    /// instants are monotone, so this cut is consistent across tables.
    pub fn snapshot_at_instant(&self, instant: i64) -> Option<Arc<Table>> {
        let v = self.versions.read();
        v.iter()
            .rev()
            .find(|tv| tv.instant <= instant)
            .map(|tv| Arc::clone(&tv.snap))
    }

    /// Drops versions no snapshot at or above `floor` can still see,
    /// always keeping the newest. Returns how many were dropped.
    pub fn gc(&self, floor: u64) -> usize {
        let mut v = self.versions.write();
        let keep_from = v
            .iter()
            .position(|tv| tv.seq > floor)
            .unwrap_or(v.len())
            .saturating_sub(1);
        v.drain(..keep_from).count()
    }

    /// The `(sequence, snapshot)` of the newest version with sequence
    /// `<= seq`, or `None` if the table was created after `seq`. The
    /// sequence is what a transaction records as its conflict-check
    /// base.
    pub fn version_at(&self, seq: u64) -> Option<(u64, Arc<Table>)> {
        let v = self.versions.read();
        v.iter()
            .rev()
            .find(|tv| tv.seq <= seq)
            .map(|tv| (tv.seq, Arc::clone(&tv.snap)))
    }

    /// The newest published version's sequence. A committing transaction
    /// compares this against its base: any movement means a concurrent
    /// commit got there first (a write-write conflict).
    pub fn latest_seq(&self) -> u64 {
        self.versions.read().last().map(|tv| tv.seq).unwrap_or(0)
    }

    /// Length of the version chain.
    pub fn version_count(&self) -> usize {
        self.versions.read().len()
    }

    /// Re-stamps the initial version with the table's real creation
    /// point, so `AS OF` a time before creation reports NotFound. Only
    /// meaningful right after [`TableCell::new`], while the chain still
    /// has exactly one version.
    pub fn rebase_creation(&self, seq: u64, instant: i64) {
        let mut v = self.versions.write();
        if v.len() == 1 {
            v[0].seq = seq;
            v[0].instant = instant;
        }
    }
}

/// A table cell shared between the registry and any statements that
/// pinned it. A statement holding the handle keeps the data alive even
/// if the table is concurrently dropped from the registry.
pub type SharedTable = Arc<TableCell>;

/// The table/view registry of one database: names to [`SharedTable`]
/// handles plus view definitions. See the module docs for the locking
/// protocol.
#[derive(Debug, Default)]
pub struct Storage {
    tables: HashMap<String, SharedTable>,
    views: HashMap<String, ViewDef>,
}

impl Storage {
    /// Creates an empty storage.
    pub fn new() -> Storage {
        Storage::default()
    }

    /// Creates a table.
    pub fn create_table(&mut self, schema: TableSchema) -> DbResult<()> {
        self.install_table(Table::new(schema))
    }

    /// Registers a fully built table (snapshot restore path).
    fn install_table(&mut self, table: Table) -> DbResult<()> {
        let key = table.schema.name.to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(DbError::AlreadyExists {
                kind: "table",
                name: table.schema.name,
            });
        }
        self.tables.insert(key, Arc::new(TableCell::new(table)));
        Ok(())
    }

    /// Creates a view over a stored SELECT body.
    pub fn create_view(&mut self, def: ViewDef) -> DbResult<()> {
        let key = def.name.to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(DbError::AlreadyExists {
                kind: "view",
                name: def.name,
            });
        }
        self.views.insert(key, def);
        Ok(())
    }

    /// Drops a view.
    pub fn drop_view(&mut self, name: &str) -> DbResult<()> {
        self.views
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| DbError::NotFound {
                kind: "view",
                name: name.to_owned(),
            })
    }

    /// Looks up a view definition.
    pub fn view(&self, name: &str) -> Option<&ViewDef> {
        self.views.get(&name.to_ascii_lowercase())
    }

    /// Names of all views (canonical case), sorted.
    pub fn view_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.views.values().map(|v| v.name.clone()).collect();
        names.sort();
        names
    }

    /// Drops a table.
    pub fn drop_table(&mut self, name: &str) -> DbResult<()> {
        self.tables
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| DbError::NotFound {
                kind: "table",
                name: name.to_owned(),
            })
    }

    /// Shared handle to a table. Cheap (an `Arc` clone); the caller
    /// locks the table itself, normally via a sorted
    /// [`TableSet`](crate::pin::TableSet) pin.
    pub fn shared_table(&self, name: &str) -> DbResult<SharedTable> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .map(Arc::clone)
            .ok_or_else(|| DbError::NotFound {
                kind: "table",
                name: name.to_owned(),
            })
    }

    /// All `(key, handle)` pairs sorted by lowercase key — the global
    /// lock-acquisition order.
    pub(crate) fn shared_tables_sorted(&self) -> Vec<(String, SharedTable)> {
        let mut out: Vec<(String, SharedTable)> = self
            .tables
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// A copy of every view definition, keyed by lowercase name.
    pub(crate) fn views_cloned(&self) -> HashMap<String, ViewDef> {
        self.views.clone()
    }

    /// `true` when the table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Names of all tables (canonical case), sorted. Takes a brief read
    /// lock on each table to reach its schema.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tables
            .values()
            .map(|t| t.read().schema.name.clone())
            .collect();
        names.sort();
        names
    }
}

// ----- snapshot persistence ------------------------------------------------

/// Legacy snapshot format: live rows only, slot layout discarded.
const SNAPSHOT_MAGIC_V1: &[u8; 8] = b"MINIDB01";
/// Current snapshot format: exact slot layout (presence byte per slot)
/// plus the free list in stack order, so WAL replay on top of a restored
/// snapshot allocates the same rowids the original execution did and the
/// result is byte-identical to a snapshot of the live database.
const SNAPSHOT_MAGIC: &[u8; 8] = b"MINIDB02";
/// Paged snapshot format: identical to v2 except presence byte 2 marks
/// a cold slot, followed by its `(page u32, slot u16)` reference into
/// `pages.db`. Emitted only when at least one cold slot exists, so a
/// fully-resident database still writes byte-identical v2 snapshots.
const SNAPSHOT_MAGIC_V3: &[u8; 8] = b"MINIDB03";

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

pub(crate) fn get_str(buf: &mut &[u8]) -> DbResult<String> {
    if buf.remaining() < 4 {
        return Err(DbError::Persist {
            message: "truncated string length".into(),
        });
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return Err(DbError::Persist {
            message: "truncated string body".into(),
        });
    }
    let s = String::from_utf8(buf[..n].to_vec()).map_err(|e| DbError::Persist {
        message: format!("bad utf8: {e}"),
    })?;
    buf.advance(n);
    Ok(s)
}

pub(crate) fn encode_value(cat: &Catalog, v: &Value, out: &mut Vec<u8>) -> DbResult<()> {
    match v {
        Value::Null => out.put_u8(0),
        Value::Bool(b) => {
            out.put_u8(1);
            out.put_u8(*b as u8);
        }
        Value::Int(i) => {
            out.put_u8(2);
            out.put_i64_le(*i);
        }
        Value::Float(f) => {
            out.put_u8(3);
            out.put_f64_le(*f);
        }
        Value::Str(s) => {
            out.put_u8(4);
            put_str(out, s);
        }
        Value::Udt(u) => {
            out.put_u8(5);
            let def = cat.type_def(u.type_id())?;
            put_str(out, &def.name);
            let mut payload = Vec::new();
            (def.encode)(u, &mut payload);
            out.put_u32_le(payload.len() as u32);
            out.put_slice(&payload);
        }
    }
    Ok(())
}

pub(crate) fn decode_value(cat: &Catalog, buf: &mut &[u8]) -> DbResult<Value> {
    if buf.remaining() < 1 {
        return Err(DbError::Persist {
            message: "truncated value tag".into(),
        });
    }
    match buf.get_u8() {
        0 => Ok(Value::Null),
        1 => {
            if buf.remaining() < 1 {
                return Err(DbError::Persist {
                    message: "truncated bool".into(),
                });
            }
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        2 => {
            if buf.remaining() < 8 {
                return Err(DbError::Persist {
                    message: "truncated int".into(),
                });
            }
            Ok(Value::Int(buf.get_i64_le()))
        }
        3 => {
            if buf.remaining() < 8 {
                return Err(DbError::Persist {
                    message: "truncated float".into(),
                });
            }
            Ok(Value::Float(buf.get_f64_le()))
        }
        4 => Ok(Value::Str(get_str(buf)?)),
        5 => {
            let type_name = get_str(buf)?;
            let ty = cat
                .lookup_type_name(&type_name)
                .map_err(|_| DbError::Persist {
                    message: format!("snapshot references unregistered type {type_name:?}"),
                })?;
            let DataType::Udt(id) = ty else {
                return Err(DbError::Persist {
                    message: format!("{type_name:?} is not a UDT"),
                });
            };
            let def = cat.type_def(id)?;
            if buf.remaining() < 4 {
                return Err(DbError::Persist {
                    message: "truncated udt length".into(),
                });
            }
            let n = buf.get_u32_le() as usize;
            if buf.remaining() < n {
                return Err(DbError::Persist {
                    message: "truncated udt payload".into(),
                });
            }
            let mut payload = &buf[..n];
            let u = (def.decode)(&mut payload).map_err(|e| DbError::Persist {
                message: format!("udt decode: {e}"),
            })?;
            buf.advance(n);
            Ok(Value::Udt(u))
        }
        t => Err(DbError::Persist {
            message: format!("unknown value tag {t}"),
        }),
    }
}

fn type_to_persist_name(cat: &Catalog, ty: DataType) -> String {
    match ty {
        DataType::Udt(_) => cat.type_name(ty),
        DataType::Int => "int".into(),
        DataType::Float => "float".into(),
        DataType::Str => "varchar".into(),
        DataType::Bool => "boolean".into(),
        DataType::Null => "varchar".into(),
    }
}

/// Serializes the whole storage to a snapshot byte vector. UDT values are
/// written through their type's binary `encode` support function and the
/// type *name* (ids are not stable across processes).
///
/// Cross-table consistency: every table's read guard is acquired — in
/// the same sorted-name order statements use, so this cannot deadlock
/// against them — before any byte is written, so the snapshot captures
/// one point-in-time cut across all tables.
pub fn save_snapshot(cat: &Catalog, storage: &Storage) -> DbResult<Vec<u8>> {
    save_snapshot_with(cat, storage, false)
}

/// [`save_snapshot`] with control over cold rows: `inline_cold` faults
/// every cold row and writes it inline (presence 1) — a self-contained
/// v2 snapshot a replica without our page file can load. Otherwise cold
/// slots are written as page references (v3, emitted only when cold
/// slots exist).
pub fn save_snapshot_with(
    cat: &Catalog,
    storage: &Storage,
    inline_cold: bool,
) -> DbResult<Vec<u8>> {
    let shared = storage.shared_tables_sorted();
    let guards: Vec<_> = shared.iter().map(|(_, arc)| arc.read()).collect();
    let mut tables: Vec<&Table> = guards.iter().map(|g| &**g).collect();
    tables.sort_by(|a, b| a.schema.name.cmp(&b.schema.name));

    let paged = !inline_cold && tables.iter().any(|t| t.has_cold());
    let mut out = Vec::new();
    out.put_slice(if paged {
        SNAPSHOT_MAGIC_V3
    } else {
        SNAPSHOT_MAGIC
    });
    out.put_u32_le(tables.len() as u32);
    for t in tables {
        put_str(&mut out, &t.schema.name);
        out.put_u32_le(t.schema.columns.len() as u32);
        for c in &t.schema.columns {
            put_str(&mut out, &c.name);
            put_str(&mut out, &type_to_persist_name(cat, c.ty));
        }
        out.put_u32_le(t.slots.len() as u32);
        for slot in &t.slots {
            match slot {
                Slot::Mem(row) => {
                    out.put_u8(1);
                    for v in row.iter() {
                        encode_value(cat, v, &mut out)?;
                    }
                }
                Slot::Cold(c) if paged => {
                    out.put_u8(2);
                    out.put_u32_le(c.page);
                    out.put_u16_le(c.slot);
                }
                Slot::Cold(c) => {
                    let row = t.fault(*c)?;
                    out.put_u8(1);
                    for v in row.iter() {
                        encode_value(cat, v, &mut out)?;
                    }
                }
                Slot::Empty => out.put_u8(0),
            }
        }
        out.put_u32_le(t.free.len() as u32);
        for &f in &t.free {
            out.put_u32_le(f as u32);
        }
        out.put_u32_le(t.indexes().len() as u32);
        for ix in t.indexes() {
            put_str(&mut out, &ix.name);
            out.put_u32_le(ix.column as u32);
            match &ix.backend {
                IndexBackend::BTree(_) => out.put_u8(0),
                IndexBackend::Interval(iv) => {
                    out.put_u8(1);
                    out.put_i64_le(iv.stride);
                }
            }
        }
    }
    let views = storage.view_names();
    out.put_u32_le(views.len() as u32);
    for name in views {
        let def = storage.view(&name).expect("listed view exists");
        put_str(&mut out, &def.name);
        put_str(&mut out, &def.body_sql);
    }
    Ok(out)
}

/// Restores a snapshot into a fresh `Storage`. The catalog must already
/// contain every UDT the snapshot references (i.e. install the same
/// blades first — just like reconnecting to a blade-enabled Informix).
pub fn load_snapshot(cat: &Catalog, bytes: &[u8]) -> DbResult<Storage> {
    load_snapshot_with(cat, bytes, None)
}

/// [`load_snapshot`] with an optional page store: a v3 snapshot's cold
/// references need `store` to be faultable later (and to spill again);
/// loading a v3 snapshot without one is a typed error. The load itself
/// is pure — callers that own the store adopt its page references
/// explicitly via [`cold_page_refs`] + `PagedStore::adopt_refs`.
pub fn load_snapshot_with(
    cat: &Catalog,
    bytes: &[u8],
    store: Option<&Arc<PagedStore>>,
) -> DbResult<Storage> {
    let mut buf = bytes;
    if buf.remaining() < 8 {
        return Err(DbError::Persist {
            message: "bad snapshot magic".into(),
        });
    }
    let (v2, v3) = match &buf[..8] {
        m if m == SNAPSHOT_MAGIC_V3 => (true, true),
        m if m == SNAPSHOT_MAGIC => (true, false),
        m if m == SNAPSHOT_MAGIC_V1 => (false, false),
        _ => {
            return Err(DbError::Persist {
                message: "bad snapshot magic".into(),
            })
        }
    };
    if v3 && store.is_none() {
        return Err(DbError::Persist {
            message: "paged (v3) snapshot requires the page store".into(),
        });
    }
    buf.advance(8);
    if buf.remaining() < 4 {
        return Err(DbError::Persist {
            message: "truncated table count".into(),
        });
    }
    let ntables = buf.get_u32_le();
    let mut storage = Storage::new();
    for _ in 0..ntables {
        let tname = get_str(&mut buf)?;
        if buf.remaining() < 4 {
            return Err(DbError::Persist {
                message: "truncated column count".into(),
            });
        }
        let ncols = buf.get_u32_le();
        let mut columns = Vec::with_capacity(ncols as usize);
        for _ in 0..ncols {
            let cname = get_str(&mut buf)?;
            let tyname = get_str(&mut buf)?;
            let ty = cat
                .lookup_type_name(&tyname)
                .map_err(|_| DbError::Persist {
                    message: format!("snapshot needs type {tyname:?}; install its blade first"),
                })?;
            columns.push(Column { name: cname, ty });
        }
        // Build the table fully before registering it, so a truncated
        // snapshot never leaves a half-restored table in the registry.
        let mut table = Table::new(TableSchema {
            name: tname,
            columns: columns.clone(),
        });
        if let Some(store) = store {
            table.attach_cold(cold_attach_for(cat, &table.schema, store)?);
        }
        if v2 {
            // Exact slot layout: presence byte per slot, then the free
            // list in stack order.
            if buf.remaining() < 4 {
                return Err(DbError::Persist {
                    message: "truncated slot count".into(),
                });
            }
            let nslots = buf.get_u32_le() as usize;
            let mut slots: Vec<Slot> = Vec::with_capacity(nslots);
            let mut live = 0usize;
            let mut cold_count = 0usize;
            for _ in 0..nslots {
                if buf.remaining() < 1 {
                    return Err(DbError::Persist {
                        message: "truncated slot presence".into(),
                    });
                }
                match buf.get_u8() {
                    0 => slots.push(Slot::Empty),
                    1 => {
                        let mut row = Vec::with_capacity(columns.len());
                        for _ in 0..columns.len() {
                            row.push(decode_value(cat, &mut buf)?);
                        }
                        slots.push(Slot::Mem(Arc::new(row)));
                        live += 1;
                    }
                    2 if v3 => {
                        if buf.remaining() < 6 {
                            return Err(DbError::Persist {
                                message: "truncated cold slot reference".into(),
                            });
                        }
                        let page = buf.get_u32_le();
                        let slot = buf.get_u16_le();
                        slots.push(Slot::Cold(ColdRef { page, slot }));
                        live += 1;
                        cold_count += 1;
                    }
                    p => {
                        return Err(DbError::Persist {
                            message: format!("bad slot presence byte {p}"),
                        })
                    }
                }
            }
            if buf.remaining() < 4 {
                return Err(DbError::Persist {
                    message: "truncated free-list count".into(),
                });
            }
            let nfree = buf.get_u32_le() as usize;
            let mut free = Vec::with_capacity(nfree);
            for _ in 0..nfree {
                if buf.remaining() < 4 {
                    return Err(DbError::Persist {
                        message: "truncated free-list entry".into(),
                    });
                }
                let slot = buf.get_u32_le() as usize;
                if !matches!(slots.get(slot), Some(Slot::Empty)) {
                    return Err(DbError::Persist {
                        message: format!("free-list entry {slot} is not an empty slot"),
                    });
                }
                free.push(slot);
            }
            table.slots = slots;
            table.free = free;
            table.live = live;
            table.cold_count = cold_count;
        } else {
            if buf.remaining() < 4 {
                return Err(DbError::Persist {
                    message: "truncated row count".into(),
                });
            }
            let nrows = buf.get_u32_le();
            for _ in 0..nrows {
                let mut row = Vec::with_capacity(columns.len());
                for _ in 0..columns.len() {
                    row.push(decode_value(cat, &mut buf)?);
                }
                table.insert(row);
            }
        }
        if buf.remaining() < 4 {
            return Err(DbError::Persist {
                message: "truncated index count".into(),
            });
        }
        let nix = buf.get_u32_le();
        for _ in 0..nix {
            let iname = get_str(&mut buf)?;
            if buf.remaining() < 5 {
                return Err(DbError::Persist {
                    message: "truncated index entry".into(),
                });
            }
            let col = buf.get_u32_le() as usize;
            match buf.get_u8() {
                0 => table.create_index(iname, col)?,
                1 => {
                    if buf.remaining() < 8 {
                        return Err(DbError::Persist {
                            message: "truncated interval stride".into(),
                        });
                    }
                    let stride = buf.get_i64_le();
                    let col_ty = table.schema.columns.get(col).map(|c| c.ty).ok_or_else(|| {
                        DbError::Persist {
                            message: format!("index column {col} out of range"),
                        }
                    })?;
                    let DataType::Udt(id) = col_ty else {
                        return Err(DbError::Persist {
                            message: "interval index on a non-UDT column".into(),
                        });
                    };
                    let bounds = cat
                        .type_def(id)
                        .ok()
                        .and_then(|d| d.interval_key.clone())
                        .ok_or_else(|| DbError::Persist {
                            message: "snapshot interval index needs a type with \
                                      interval-bounds support; install its blade first"
                                .into(),
                        })?;
                    table.create_interval_index(iname, col, bounds, stride)?;
                }
                k => {
                    return Err(DbError::Persist {
                        message: format!("unknown index kind {k}"),
                    })
                }
            }
        }
        storage.install_table(table)?;
    }
    // Views (absent in pre-view snapshots, so tolerate EOF here).
    if buf.remaining() >= 4 {
        let nviews = buf.get_u32_le();
        for _ in 0..nviews {
            let name = get_str(&mut buf)?;
            let body_sql = get_str(&mut buf)?;
            storage.create_view(ViewDef { name, body_sql })?;
        }
    }
    Ok(storage)
}

/// The cold pages a storage references, with per-page record counts —
/// what recovery feeds to `PagedStore::adopt_refs`, and what checkpoint
/// publishes as the new epoch's reference set.
/// `true` when `bytes` is a paged (v3) snapshot — one whose cold rows
/// are references into `pages.db` rather than inline bytes.
pub fn snapshot_is_paged(bytes: &[u8]) -> bool {
    bytes.len() >= 8 && &bytes[..8] == SNAPSHOT_MAGIC_V3
}

pub fn cold_page_refs(storage: &Storage) -> HashMap<u32, u32> {
    let mut refs: HashMap<u32, u32> = HashMap::new();
    for (_, arc) in storage.shared_tables_sorted() {
        for (_, cref) in arc.read().cold_slots() {
            *refs.entry(cref.page).or_insert(0) += 1;
        }
    }
    refs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema {
            name: "T".into(),
            columns: vec![
                Column {
                    name: "id".into(),
                    ty: DataType::Int,
                },
                Column {
                    name: "name".into(),
                    ty: DataType::Str,
                },
            ],
        }
    }

    fn row(id: i64, name: &str) -> Row {
        vec![Value::Int(id), Value::Str(name.into())]
    }

    #[test]
    fn insert_scan_delete() {
        let mut t = Table::new(schema());
        let r0 = t.insert(row(1, "a"));
        let r1 = t.insert(row(2, "b"));
        assert_eq!(t.len(), 2);
        assert!(t.delete(r0).unwrap());
        assert!(!t.delete(r0).unwrap());
        assert_eq!(t.len(), 1);
        let rows = t.scan().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, r1);
    }

    #[test]
    fn slot_reuse() {
        let mut t = Table::new(schema());
        let r0 = t.insert(row(1, "a"));
        t.delete(r0).unwrap();
        let r2 = t.insert(row(3, "c"));
        assert_eq!(r0, r2, "freed slot should be reused");
    }

    #[test]
    fn update_in_place() {
        let mut t = Table::new(schema());
        let r0 = t.insert(row(1, "a"));
        assert!(t.update(r0, row(1, "z")).unwrap());
        assert_eq!(t.get(r0).unwrap().unwrap()[1].as_str(), Some("z"));
        assert!(!t.update(999, row(9, "x")).unwrap());
    }

    #[test]
    fn index_maintenance() {
        let mut t = Table::new(schema());
        let r0 = t.insert(row(1, "a"));
        t.create_index("ix".into(), 1).unwrap();
        let r1 = t.insert(row(2, "a"));
        let r2 = t.insert(row(3, "b"));
        let ix = t.index_on(1).unwrap();
        let mut hits = ix.lookup_eq(&Value::Str("a".into()));
        hits.sort_unstable();
        assert_eq!(hits, vec![r0, r1]);
        assert_eq!(ix.lookup_eq(&Value::Str("b".into())), vec![r2]);
        // Delete and update maintain the index.
        t.delete(r0).unwrap();
        t.update(r2, row(3, "a")).unwrap();
        let ix = t.index_on(1).unwrap();
        assert_eq!(ix.lookup_eq(&Value::Str("a".into())), vec![r1, r2]);
        assert!(ix.lookup_eq(&Value::Str("b".into())).is_empty());
        assert_eq!(ix.distinct_keys(), 1);
    }

    #[test]
    fn duplicate_index_rejected() {
        let mut t = Table::new(schema());
        t.create_index("ix".into(), 0).unwrap();
        assert!(t.create_index("IX".into(), 1).is_err());
    }

    #[test]
    fn storage_table_management() {
        let mut s = Storage::new();
        s.create_table(schema()).unwrap();
        assert!(s.has_table("t"));
        assert!(s.has_table("T"));
        assert!(s.create_table(schema()).is_err());
        assert_eq!(s.table_names(), vec!["T"]);
        s.drop_table("t").unwrap();
        assert!(s.drop_table("t").is_err());
    }

    #[test]
    fn snapshot_round_trip_builtin_types() {
        let cat = Catalog::new();
        let mut s = Storage::new();
        s.create_table(schema()).unwrap();
        {
            let shared = s.shared_table("t").unwrap();
            let mut t = shared.write();
            t.insert(vec![Value::Int(1), Value::Str("héllo".into())]);
            t.insert(vec![Value::Null, Value::Str("".into())]);
            t.create_index("ix".into(), 0).unwrap();
        }

        let bytes = save_snapshot(&cat, &s).unwrap();
        let restored = load_snapshot(&cat, &bytes).unwrap();
        let rt = restored.shared_table("T").unwrap();
        let rt = rt.read();
        assert_eq!(rt.len(), 2);
        assert_eq!(rt.indexes().len(), 1);
        assert_eq!(rt.schema, s.shared_table("t").unwrap().read().schema);
    }

    #[test]
    fn snapshot_v2_preserves_slot_layout_and_free_list() {
        let cat = Catalog::new();
        let mut s = Storage::new();
        s.create_table(schema()).unwrap();
        {
            let shared = s.shared_table("t").unwrap();
            let mut t = shared.write();
            t.insert(row(1, "a"));
            let mid = t.insert(row(2, "b"));
            t.insert(row(3, "c"));
            t.delete(mid).unwrap();
        }
        let bytes = save_snapshot(&cat, &s).unwrap();
        let restored = load_snapshot(&cat, &bytes).unwrap();
        let shared = restored.shared_table("t").unwrap();
        let mut t = shared.write();
        assert_eq!(t.len(), 2);
        let rowids: Vec<usize> = t.scan().unwrap().into_iter().map(|(r, _)| r).collect();
        assert_eq!(rowids, vec![0, 2], "live rowids survive the round trip");
        // The freed middle slot is the next allocation, as in the live db.
        assert_eq!(t.insert(row(4, "d")), 1);
        // And a re-snapshot is byte-identical modulo the new row — i.e.
        // the restored structure snapshots identically to the original.
        drop(t);
        let again = save_snapshot(&cat, &restored).unwrap();
        let reload = load_snapshot(&cat, &again).unwrap();
        let bytes2 = save_snapshot(&cat, &reload).unwrap();
        assert_eq!(again, bytes2);
    }

    #[test]
    fn snapshot_v1_still_loads() {
        let cat = Catalog::new();
        // Hand-built MINIDB01 image: one table, two columns, one row,
        // no indexes, no views.
        let mut bytes = Vec::new();
        bytes.put_slice(SNAPSHOT_MAGIC_V1);
        bytes.put_u32_le(1);
        put_str(&mut bytes, "T");
        bytes.put_u32_le(2);
        put_str(&mut bytes, "id");
        put_str(&mut bytes, "int");
        put_str(&mut bytes, "name");
        put_str(&mut bytes, "varchar");
        bytes.put_u32_le(1); // one row
        encode_value(&cat, &Value::Int(7), &mut bytes).unwrap();
        encode_value(&cat, &Value::Str("legacy".into()), &mut bytes).unwrap();
        bytes.put_u32_le(0); // indexes
        bytes.put_u32_le(0); // views
        let restored = load_snapshot(&cat, &bytes).unwrap();
        let shared = restored.shared_table("t").unwrap();
        let t = shared.read();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(0).unwrap().unwrap()[1].as_str(), Some("legacy"));
    }

    #[test]
    fn snapshot_rejects_bad_free_list() {
        let cat = Catalog::new();
        let mut s = Storage::new();
        s.create_table(schema()).unwrap();
        {
            let shared = s.shared_table("t").unwrap();
            let mut t = shared.write();
            let r = t.insert(row(1, "a"));
            t.delete(r).unwrap();
        }
        let bytes = save_snapshot(&cat, &s).unwrap();
        // Point the single free-list entry at a nonexistent slot. The
        // tail is: free entry u32 | index count u32 | view count u32.
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - 12] = 99;
        assert!(load_snapshot(&cat, &bad).is_err());
    }

    #[test]
    fn restore_insert_at_matches_natural_allocation() {
        let mut t = Table::new(schema());
        t.create_index("ix".into(), 0).unwrap();
        t.restore_insert_at(0, row(1, "a")).unwrap();
        t.restore_insert_at(1, row(2, "b")).unwrap();
        t.delete(0).unwrap();
        t.restore_insert_at(0, row(3, "c")).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.free.is_empty());
        assert_eq!(t.index_on(0).unwrap().lookup_eq(&Value::Int(3)), vec![0]);
        // Out-of-order restore (lossy-sync log ahead of snapshot) still
        // leaves a consistent structure.
        t.restore_insert_at(5, row(9, "z")).unwrap();
        assert_eq!(t.free, vec![2, 3, 4]);
        assert_eq!(t.insert(row(10, "y")), 4);
    }

    #[test]
    fn snapshot_rejects_corruption() {
        let cat = Catalog::new();
        let s = Storage::new();
        let bytes = save_snapshot(&cat, &s).unwrap();
        assert!(load_snapshot(&cat, &bytes[..4]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(load_snapshot(&cat, &bad).is_err());
    }

    #[test]
    fn cold_slots_round_trip_through_store_and_snapshot() {
        let dir = {
            use std::sync::atomic::{AtomicU64, Ordering};
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let d = std::env::temp_dir().join(format!(
                "minidb-coldslot-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = std::fs::remove_dir_all(&d);
            std::fs::create_dir_all(&d).unwrap();
            d
        };
        let cat = Catalog::new();
        let mut s = Storage::new();
        s.create_table(schema()).unwrap();
        let store = PagedStore::open(&dir, 512, 8).unwrap();
        let cref;
        {
            let shared = s.shared_table("t").unwrap();
            let mut t = shared.write();
            let att = ColdAttach {
                store: store.clone(),
                codecs: Arc::new(cold_codecs(&cat, &t.schema).unwrap()),
                age_key: None,
            };
            t.attach_cold(att);
            let r0 = t.insert(row(1, "cold"));
            t.insert(row(2, "hot"));
            // Page slot r0 out by hand (the age-key spill path needs a
            // temporal UDT and is driven from the session layer; here we
            // exercise the slot mechanics directly).
            let bytes = encode_cold_row(&t.cold.as_ref().unwrap().codecs, &row(1, "cold")).unwrap();
            cref = store.alloc_slot(&bytes, 7).unwrap();
            t.slots[r0] = Slot::Cold(cref);
            t.cold_count = 1;
            assert!(t.has_cold());
            // Reads fault the cold row back transparently.
            assert_eq!(t.get(r0).unwrap().unwrap()[1].as_str(), Some("cold"));
            assert_eq!(t.scan().unwrap().len(), 2);
            let (n, cols) = t.scan_columns(None).unwrap();
            assert_eq!(n, 2);
            assert_eq!(cols[0][0].as_int(), Some(1));
        }
        // A storage with cold slots snapshots as v3 (page references)…
        let bytes = save_snapshot(&cat, &s).unwrap();
        assert_eq!(&bytes[..8], SNAPSHOT_MAGIC_V3);
        assert!(load_snapshot(&cat, &bytes).is_err(), "v3 needs the store");
        store.flush().unwrap();
        let restored = load_snapshot_with(&cat, &bytes, Some(&store)).unwrap();
        let rt = restored.shared_table("t").unwrap();
        assert_eq!(rt.read().get(0).unwrap().unwrap()[1].as_str(), Some("cold"));
        assert_eq!(cold_page_refs(&restored).get(&cref.page), Some(&1));
        // …while the inline form is a self-contained v2 image.
        let inline = save_snapshot_with(&cat, &s, true).unwrap();
        assert_eq!(&inline[..8], SNAPSHOT_MAGIC);
        let r2 = load_snapshot(&cat, &inline).unwrap();
        let rt2 = r2.shared_table("t").unwrap();
        assert_eq!(
            rt2.read().get(0).unwrap().unwrap()[1].as_str(),
            Some("cold")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ordkey_total_order() {
        let mut keys = [
            OrdKey(Value::Int(3)),
            OrdKey(Value::Null),
            OrdKey(Value::Int(-1)),
        ];
        keys.sort();
        assert!(keys[0].0.is_null());
        assert_eq!(keys[1].0.as_int(), Some(-1));
    }
}
